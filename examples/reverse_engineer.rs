//! Reverse engineering walkthrough (paper §5): probe a black-box simulated
//! GPU with latency measurements only, mark a contiguous region, recover
//! the permutation structure, then train the hash learner and build the
//! lookup table.
//!
//! ```sh
//! cargo run --release --example reverse_engineer
//! ```

use sgdrc_repro::gpu_spec::GpuModel;
use sgdrc_repro::mem_sim::GpuDevice;
use sgdrc_repro::reveng::{
    align_classes, analyze, render_fig8, ChannelMarker, MarkerConfig, MlpConfig, MlpHashLearner,
    Sample,
};

fn main() {
    let model = GpuModel::RtxA2000;
    let mut dev = GpuDevice::new(model, 96 << 20, 7);
    println!(
        "probing a simulated {} through load latencies only...",
        model.name()
    );

    // 1. Calibrate thresholds, build per-channel conflict pools, and mark
    //    a physically contiguous region (Algo 1-3).
    let mut marker = ChannelMarker::new(&mut dev, MarkerConfig::default()).expect("marker");
    let (start, len) = marker.longest_contiguous_run();
    let count = (12 * 12 * 2).min(len);
    let labels = marker.mark_indexed(start, count).expect("marking");
    println!(
        "marked {count} partitions; discovered {} channel classes",
        marker.num_classes()
    );

    // 2. Recover the §5.2 structure: blocks, groups, m-permutations.
    let report = analyze(&labels);
    println!(
        "block = {} KiB, {} groups, window = {} partitions, patterns/group = {:?}",
        report.block_size,
        report.groups.len(),
        report.window,
        report.patterns_per_group
    );
    print!("{}", render_fig8(&report, 0));

    // 3. Train the MLP hash learner on the marked samples (raw labels are
    //    noisy, exactly like the paper's 15K-sample collection).
    let samples: Vec<Sample> = labels
        .iter()
        .map(|&(pa, label)| Sample {
            partition: pa.partition(),
            label,
        })
        .collect();
    let learner = MlpHashLearner::train(&samples, &MlpConfig::default());
    let lut = learner.lookup_table(4096);
    println!("lookup table built for 4096 partitions (4 MiB of VRAM)");

    // 4. Verify against the oracle — allowed here, never in the pipeline.
    let hash = model.channel_hash();
    let (_, acc) = align_classes(&labels, |pa| hash.channel_of(pa), hash.num_channels());
    println!("marking agreement with ground truth: {:.2}%", acc * 100.0);
    let _ = lut;
}
