//! Autonomous-driving serving scenario (the paper's motivating workload):
//! all 8 LS models colocated with a BE training-style task, replaying the
//! bursty Apollo-like trace, comparing SGDRC against Orion.
//!
//! ```sh
//! cargo run --release --example autonomous_driving
//! ```

use sgdrc_repro::gpu_spec::GpuModel;
use sgdrc_repro::workload::runner::{run_system, Deployment, EndToEndConfig, Load, SystemKind};

fn main() {
    let gpu = GpuModel::RtxA2000;
    println!("deploying the Tab. 3 zoo on a simulated {} ...", gpu.name());
    let dep = Deployment::cached(gpu);
    let mut cfg = EndToEndConfig::new(gpu, Load::Heavy);
    cfg.horizon_us = 3e6;

    for system in [SystemKind::Orion, SystemKind::Sgdrc] {
        let r = run_system(&dep, &cfg, system);
        println!("\n--- {} ---", r.system);
        println!(
            "mean SLO attainment: {:.1}% | BE throughput: {:.0} samples/s | overall: {:.0}/s",
            r.mean_slo_attainment() * 100.0,
            r.total_be_throughput(),
            r.overall_throughput_hz
        );
        for m in &r.ls {
            println!(
                "  {:<16} p99 {:>7.0} µs (SLO {:>7.0} µs) attainment {:>5.1}%",
                m.model,
                m.p99_latency_us,
                m.slo_us,
                m.slo_attainment * 100.0
            );
        }
    }
}
