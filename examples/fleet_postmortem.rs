//! Fleet postmortem walkthrough: reconstruct *why* a lane went dark
//! from the flight recorder alone.
//!
//! The scenario: a three-lane elastic fleet under bursty load; lane 0
//! crashes a third of the way in and never recovers; the controller
//! notices, drains the corpse, and provisions the warm spare. The run
//! is executed once with the flight recorder on, then interrogated the
//! way an operator would after a page: headline counters, the event
//! timeline around the crash, the backlog series before/after, the
//! clock's own phase profile — and finally the whole stream is exported
//! as a Chrome/Perfetto trace for visual inspection.
//!
//! ```sh
//! cargo run --release --example fleet_postmortem
//! ```
//!
//! Open the written trace at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): each lane is a named thread track, requests are
//! async slices, faults/requeues are instants, and the sampled series
//! render as counter tracks.

use sgdrc_repro::bench::trace_export::{perfetto_trace, validate_trace};
use sgdrc_repro::bench::{header, json};
use sgdrc_repro::gpu_spec::GpuModel;
use sgdrc_repro::workload::chaos::{FaultEvent, FaultPlan};
use sgdrc_repro::workload::cluster::{ClusterConfig, ControllerConfig, RouterKind};
use sgdrc_repro::workload::elastic::{ElasticConfig, ScalingPolicyKind, WarmPoolConfig};
use sgdrc_repro::workload::trace::TraceConfig;
use sgdrc_repro::workload::{EventKind, SystemKind, TelemetryConfig};

fn main() {
    // -- The incident ---------------------------------------------------
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080, GpuModel::RtxA2000],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = 3e5;
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    cfg.controller = ControllerConfig {
        period_us: 1.5e4,
        breach_ratio: 0.9,
        adaptive_ch_be: true,
        ..Default::default()
    };
    let crash_at = cfg.horizon_us / 3.0;
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0,
        crash_at,
        f64::INFINITY,
    )]));
    let mut e = ElasticConfig::new(
        WarmPoolConfig {
            provision_delay_us: 1e4,
            provision_jitter: 0.2,
            ..WarmPoolConfig::new(vec![GpuModel::RtxA2000])
        },
        ScalingPolicyKind::Hold,
    );
    e.min_replicas = 2;
    e.replace_after_us = 2e4;
    cfg.elastic = Some(e);
    cfg.telemetry = Some(TelemetryConfig::default());

    let mut router = RouterKind::P2cSlo.make(cfg.seed);
    let res = sgdrc_repro::workload::run_cluster(&cfg, router.as_mut());
    let tel = res.telemetry.as_ref().expect("recorder was enabled");

    // -- Headline -------------------------------------------------------
    header("headline");
    println!(
        "completed {} of {} arrivals | SLO attainment {:.1}% | {} timeout drops, {} shed",
        res.requests,
        res.arrivals_injected,
        res.slo_attainment() * 100.0,
        res.timeout_drops,
        res.ls_shed,
    );
    println!(
        "faults {}/{} recovered | {} requeued ({} refused at the door) | {} retries | {} replacement(s)",
        res.faults_recovered,
        res.faults_injected,
        res.requeued,
        res.refused_arrivals,
        res.retries,
        res.replacements,
    );
    println!(
        "recorder: {} events merged, {} overwritten (ring capacity {})",
        tel.events.len(),
        tel.dropped_events,
        tel.ring_capacity,
    );

    // -- The timeline around the crash ---------------------------------
    // Completion events dominate the stream; filter them out and the
    // control-plane story reads like a pager narrative.
    header("control-plane timeline near the crash");
    let window = (crash_at - 1e4, crash_at + 8e4);
    let mut shown = 0;
    for ev in &tel.events {
        if ev.at_us < window.0 || ev.at_us > window.1 || shown >= 24 {
            continue;
        }
        let story = match ev.kind {
            EventKind::Completed { .. } | EventKind::Routed { .. } => continue,
            EventKind::TickVerdict {
                window_p99_ratio,
                backlog,
                ..
            } => {
                // Keep verdicts only for the crashed lane — the others
                // just say "healthy".
                if ev.lane != 0 {
                    continue;
                }
                format!("tick verdict: p99/SLO {window_p99_ratio:.2}, backlog {backlog}")
            }
            kind => format!("{:?}", kind),
        };
        println!(
            "  t={:>9.0}µs lane {:>5} #{:<5} {}",
            ev.at_us,
            if ev.lane == u32::MAX {
                "fleet".to_string()
            } else {
                ev.lane.to_string()
            },
            ev.seq,
            story,
        );
        shown += 1;
    }

    // -- Series: the backlog transferring off the corpse ----------------
    header("backlog series (sampled at controller ticks)");
    let n_lanes = res.replicas.len();
    for lane in 0..n_lanes as u32 {
        if let Some(s) = tel.series("backlog", Some(lane)) {
            let vals: Vec<String> = s.values.iter().map(|v| format!("{v:>4.0}")).collect();
            println!("  lane {lane} backlog: [{}]", vals.join(" "));
        }
    }
    if let Some(s) = tel.series("retry_queue_depth", None) {
        let vals: Vec<String> = s.values.iter().map(|v| format!("{v:>4.0}")).collect();
        println!("  retry queue:    [{}]", vals.join(" "));
    }
    if let Some(s) = tel.series("active_lanes", None) {
        let vals: Vec<String> = s.values.iter().map(|v| format!("{v:>4.0}")).collect();
        println!("  active lanes:   [{}]", vals.join(" "));
    }

    // -- What the clock spent its time on -------------------------------
    header("clock phase profile");
    let p = &tel.profile;
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "  {} epochs, {} lane-advances | collect {:.2}ms advance {:.2}ms route {:.2}ms \
         tick {:.2}ms merge {:.2}ms telemetry {:.2}ms | total {:.2}ms",
        p.epochs,
        p.lanes_advanced,
        ms(p.collect_ns),
        ms(p.advance_ns),
        ms(p.route_ns),
        ms(p.tick_ns),
        ms(p.merge_ns),
        ms(p.telemetry_ns),
        ms(p.total_ns),
    );

    // -- Export for the human ------------------------------------------
    header("perfetto export");
    let doc = perfetto_trace(&res).expect("telemetry was recorded");
    validate_trace(&doc).expect("exporter emitted a well-formed trace");
    let text = doc.pretty();
    json::validate(&text).expect("exporter emitted valid JSON");
    let path = std::env::temp_dir().join("fleet_postmortem_trace.json");
    std::fs::write(&path, &text).expect("write trace");
    println!(
        "  wrote {} ({} bytes) — load it at https://ui.perfetto.dev",
        path.display(),
        text.len(),
    );
}
