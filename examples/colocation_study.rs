//! Colocation micro-study: how VRAM channel isolation and SM masking
//! change a victim kernel's latency (the Fig. 3 / Fig. 15a mechanics),
//! plus the coloring driver in action.
//!
//! ```sh
//! cargo run --release --example colocation_study
//! ```

use sgdrc_repro::coloring::{plan_reuse, split_channels, ColoredPool, GranularityKib, Interval};
use sgdrc_repro::dnn::kernel::{KernelDesc, KernelKind};
use sgdrc_repro::exec_sim::{compute_rates, ChannelSet, RunningCtx, TpcMask};
use sgdrc_repro::gpu_spec::GpuModel;

fn main() {
    let spec = GpuModel::RtxA2000.spec();
    let victim = RunningCtx::new(
        &spec,
        KernelDesc {
            id: 1,
            name: "victim/gemm".into(),
            kind: KernelKind::Gemm,
            flops: 2e9,
            bytes: 4e7,
            thread_blocks: 64,
            persistent_threads: true,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        },
        TpcMask::first(spec.num_tpcs / 2),
        ChannelSet::all(&spec),
        1.0,
    );
    let thrasher = RunningCtx::new(
        &spec,
        KernelDesc {
            id: 2,
            name: "thrasher/stream".into(),
            kind: KernelKind::Elementwise,
            flops: 1e7,
            bytes: 3e8,
            thread_blocks: 512,
            persistent_threads: true,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        },
        TpcMask::range(spec.num_tpcs / 2, spec.num_tpcs - spec.num_tpcs / 2),
        ChannelSet::all(&spec),
        1.0,
    );

    let alone = compute_rates(&spec, std::slice::from_ref(&victim))[0].duration_us;
    let shared = compute_rates(&spec, &[victim.clone(), thrasher.clone()])[0].duration_us;

    let split = split_channels(&spec, 1.0 / 3.0);
    let v_iso = RunningCtx {
        channels: ChannelSet::from_channels(&split.ls_channels),
        ..victim
    };
    let t_iso = RunningCtx {
        channels: ChannelSet::from_channels(&split.be_channels),
        ..thrasher
    };
    let isolated = compute_rates(&spec, &[v_iso, t_iso])[0].duration_us;

    println!("victim GEMM on half the TPCs of a simulated {}:", spec.name);
    println!("  alone:                       {alone:>8.1} µs");
    println!(
        "  + VRAM thrasher (shared ch): {shared:>8.1} µs  ({:+.1}%)",
        (shared / alone - 1.0) * 100.0
    );
    println!(
        "  + VRAM thrasher (isolated):  {isolated:>8.1} µs  ({:+.1}%)",
        (isolated / alone - 1.0) * 100.0
    );

    // The driver side: a colored pool over the learned layout, and the
    // intermediate-tensor reuse that keeps bimodal footprints in check.
    let hash = GpuModel::RtxA2000.channel_hash();
    let mut pool = ColoredPool::new(0, 4096, GranularityKib(2), move |p| {
        hash.channel_of_partition(p) / 2
    });
    let alloc = pool
        .alloc_colored(&[0], 256 * 1024)
        .expect("colored allocation");
    println!(
        "\ncolored allocation: {} KiB logical across {} chunks of color 0 (sector {})",
        alloc.logical_bytes / 1024,
        alloc.chunks.len(),
        alloc.sector
    );

    let intervals: Vec<Interval> = (0..16)
        .map(|i| Interval {
            start: i,
            end: i + 1,
            bytes: 1 << 20,
        })
        .collect();
    let plan = plan_reuse(&intervals);
    println!(
        "tensor reuse: 16 x 1 MiB intermediates fit in {} buffers ({} MiB total)",
        plan.buffer_bytes.len(),
        plan.total_bytes() >> 20
    );
}
