//! Quickstart: deploy one LS model and one BE model on a simulated RTX
//! A2000 and serve a short trace with SGDRC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sgdrc_repro::core::serving::{run, Scenario, Task};
use sgdrc_repro::core::{Sgdrc, SgdrcConfig};
use sgdrc_repro::dnn::zoo::{build, ModelId};
use sgdrc_repro::dnn::CompileOptions;
use sgdrc_repro::gpu_spec::GpuModel;
use sgdrc_repro::workload::metrics::{ls_metrics, slo_for};
use sgdrc_repro::workload::trace::{generate, TraceConfig};

fn main() {
    // 1. Pick a GPU and compile the models through the offline pipeline
    //    (fusion, persistent threads, memory-bound classification, cache
    //    coloring).
    let spec = GpuModel::RtxA2000.spec();
    let ls_model = sgdrc_repro::dnn::compile(
        build(ModelId::MobileNetV3),
        &spec,
        CompileOptions::default(),
    );
    let be_model = sgdrc_repro::dnn::compile(
        build(ModelId::DenseNet161),
        &spec,
        CompileOptions::default(),
    );
    println!(
        "compiled {} ({} kernels) and {} ({} kernels)",
        ls_model.id.name(),
        ls_model.kernels.len(),
        be_model.id.name(),
        be_model.kernels.len()
    );

    // 2. Profile them offline (min-SM binary search + memory-bound probe)
    //    and build the serving scenario.
    let horizon_us = 2e6;
    let trace = TraceConfig::apollo_like();
    let scenario = Scenario::new(
        spec.clone(),
        vec![Task::new(ls_model, &spec)],
        vec![Task::new(be_model, &spec)],
        4,
        vec![generate(&trace, horizon_us, 1)],
        horizon_us,
    );

    // 3. Serve with SGDRC (tidal SM masking + bimodal channel switching).
    let mut policy = Sgdrc::new(&spec, SgdrcConfig::default());
    let stats = run(&mut policy, &scenario);

    // 4. Report.
    let slo = slo_for(scenario.ls[0].profile.isolated_e2e_us, 2);
    let m = ls_metrics("MobileNetV3", &stats.ls_completed[0], slo, horizon_us);
    println!(
        "LS: {} requests, p99 {:.0} µs, SLO attainment {:.1}%",
        m.requests,
        m.p99_latency_us,
        m.slo_attainment * 100.0
    );
    println!(
        "BE: {} DenseNet161 inferences ({:.0} samples/s), {} preemptions",
        stats.be_completed[0],
        stats.be_completed[0] as f64 * 8.0 / (horizon_us / 1e6),
        stats.be_preemptions
    );
}
