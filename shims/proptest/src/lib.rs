//! Offline shim for the subset of `proptest` this workspace uses: the
//! container builds without network access, so the real crate cannot be
//! fetched.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, ...)`
//!   items;
//! * range strategies over primitive ints and floats (`0u64..100`),
//!   tuples of strategies, `prop::collection::vec(strategy, len_range)`
//!   and `prop::sample::select(vec![...])`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministically seeded cases (override with
//! `PROPTEST_CASES`), and a failing case panics with its inputs printed
//! via the assertion message. Every sampled case is reproducible: the
//! seed derives from the test name alone.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Default number of cases per property (matches proptest's 256).
pub const DEFAULT_CASES: u32 = 256;

/// Cases to run: `PROPTEST_CASES` env var or [`DEFAULT_CASES`].
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Deterministic per-test RNG: seeded from the test's name via FNV-1a.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. Mirrors `proptest::strategy::Strategy` in spirit,
/// minus shrinking.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// The `prop::` namespace (`use proptest::prelude::*` exposes it).
pub mod prop {
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `prop::collection::vec(strategy, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.gen_range(self.len.start..self.len.end);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        pub struct Select<T> {
            options: Vec<T>,
        }

        /// `prop::sample::select(vec![...])`: one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of zero options");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Runs each contained `#[test] fn name(arg in strategy, ...)` item over
/// [`cases`] deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::rng_for(stringify!($name));
            for __case in 0..$crate::cases() {
                let ($($arg,)+) = $crate::Strategy::sample(&__strategies, &mut __rng);
                let __case_inputs = format!(
                    concat!("case #{}: ", $(stringify!($arg), " = {:?} "),+),
                    __case $(, $arg)+
                );
                let __guard = $crate::CaseGuard::new(&__case_inputs);
                $body
                __guard.disarm();
            }
        }
    )*};
}

/// Prints the failing case's inputs if the body panics (poor man's
/// counterexample report, since there is no shrinking).
pub struct CaseGuard {
    inputs: String,
    armed: bool,
}

impl CaseGuard {
    pub fn new(inputs: &str) -> Self {
        Self {
            inputs: inputs.to_string(),
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!("proptest failure in {}", self.inputs);
        }
    }
}

/// `prop_assert!` — no early-return plumbing; panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range, tuple, vec and select strategies all sample in-range.
        #[test]
        fn strategies_sample_in_range(
            x in 3u64..17,
            f in -1.0f64..1.0,
            pair in (0u32..4, 10usize..20),
            v in prop::collection::vec(0u8..5, 1..9),
            g in prop::sample::select(vec![1u32, 2, 4]),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 5));
            prop_assert!([1u32, 2, 4].contains(&g));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut a = crate::rng_for("determinism");
        let mut b = crate::rng_for("determinism");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
