//! The persistent work-stealing pool behind every parallel operation in
//! this shim.
//!
//! The first parallel call builds one process-global pool sized by
//! [`crate::current_num_threads`] (so `SGDRC_THREADS` is honored **at
//! pool build**) and keeps its workers parked on a condvar between
//! calls. A parallel operation then costs one batch submission — no
//! thread spawn — which is what makes fine-grained fan-outs like the
//! fleet simulator's per-epoch replica advances affordable.
//!
//! Scheduling is work-stealing over per-worker deques: a batch of `n`
//! indexed tasks is block-partitioned across `min(workers, n)` deques;
//! each participant pops from the front of its own deque and, when that
//! runs dry, steals from the **back** of the others — contiguous blocks
//! stay with their worker while imbalance drains across the fleet. The
//! submitting thread participates (deque 0 is its home), so a batch can
//! never deadlock waiting for busy workers, and nested submissions from
//! inside a pool task are safe for the same reason.
//!
//! Worker panics are caught per task, cancel the batch's unclaimed work,
//! and re-raise on the submitting thread once in-flight tasks finish —
//! the same contract as real rayon (one payload propagates; concurrent
//! panics in the same batch are swallowed after the first).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One batch of `n` indexed tasks. The erased task pointer targets a
/// closure on the submitting thread's stack; [`run_batch`] does not
/// return until `remaining` hits zero — i.e. until no worker can ever
/// dereference it again — which is what makes the erasure sound.
struct Batch {
    task: *const (dyn Fn(usize) + Sync),
    /// Per-participant index deques (block-partitioned at submit).
    queues: Box<[Mutex<VecDeque<usize>>]>,
    /// Indices not yet fully executed (claimed-and-running count too).
    remaining: AtomicUsize,
    /// First panic payload observed in this batch.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    panicked: AtomicBool,
    /// Completion latch for the submitter.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `task` is only dereferenced between a successful `claim` and
// the matching `remaining` decrement, and `run_batch` keeps the pointee
// alive until `remaining == 0`. Everything else in the struct is
// already thread-safe.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims one index for participant `w`: own deque front first, then
    /// steal from the back of the others.
    fn claim(&self, w: usize) -> Option<usize> {
        let q = self.queues.len();
        if let Some(i) = self.queues[w % q].lock().unwrap().pop_front() {
            return Some(i);
        }
        for off in 1..q {
            if let Some(i) = self.queues[(w + off) % q].lock().unwrap().pop_back() {
                return Some(i);
            }
        }
        None
    }

    /// Any queued (unclaimed) work left?
    fn has_queued(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    /// Runs one claimed index; on panic, records the payload and cancels
    /// every unclaimed index so the batch drains promptly.
    fn execute(&self, i: usize) {
        // SAFETY: see the `Send`/`Sync` impl note — the pointee outlives
        // every claimed index.
        let task = unsafe { &*self.task };
        let mut finished = 1usize;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                *self.panic.lock().unwrap() = Some(payload);
            }
            for q in self.queues.iter() {
                let mut q = q.lock().unwrap();
                finished += q.len();
                q.clear();
            }
        }
        if self.remaining.fetch_sub(finished, Ordering::AcqRel) == finished {
            *self.done.lock().unwrap() = true;
            self.done_cv.notify_all();
        }
    }
}

/// State shared between the pool's worker threads and submitters.
struct Shared {
    /// Batches that may still have claimable work; pushed on submit,
    /// retired by the submitter when its batch completes.
    active: Mutex<Vec<Arc<Batch>>>,
    /// Signalled on every submission.
    cv: Condvar,
}

/// The process-global pool: `workers` total participants — `workers - 1`
/// parked background threads plus whichever thread submits a batch.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    pub(crate) workers: usize,
}

/// The background worker loop: sleep until a batch with queued work
/// exists, drain what can be claimed/stolen, repeat.
fn worker_loop(shared: Arc<Shared>, w: usize) {
    loop {
        let batch = {
            let mut active = shared.active.lock().unwrap();
            loop {
                if let Some(b) = active.iter().find(|b| b.has_queued()) {
                    break Arc::clone(b);
                }
                active = shared.cv.wait(active).unwrap();
            }
        };
        while let Some(i) = batch.claim(w) {
            batch.execute(i);
        }
    }
}

/// The lazily-built global pool. `SGDRC_THREADS` (via
/// [`crate::current_num_threads`]) is read once, here; later env changes
/// affect chunk-sizing heuristics but not the pool's worker count.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = crate::current_num_threads().max(1);
        let shared = Arc::new(Shared {
            active: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        });
        for w in 1..workers {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("sgdrc-pool-{w}"))
                .spawn(move || worker_loop(s, w))
                .expect("spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// Runs `task(i)` for every `i in 0..n` across the pool and returns when
/// all have finished. Sequential inline when the batch is trivially
/// small or the pool has a single participant — a parallel call on a
/// 1-CPU box costs no synchronization at all.
pub(crate) fn run_batch(n: usize, task: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let pool = global();
    if n == 1 || pool.workers == 1 {
        for i in 0..n {
            task(i);
        }
        return;
    }
    // Erase the closure's lifetime; `Batch` documents why this is sound.
    let task: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
    let parts = pool.workers.min(n);
    let queues: Box<[Mutex<VecDeque<usize>>]> =
        (0..parts).map(|_| Mutex::new(VecDeque::new())).collect();
    // Block-partition: participant p starts with the contiguous range
    // it would own under a static split; stealing only redistributes
    // the imbalance.
    for i in 0..n {
        queues[i * parts / n].lock().unwrap().push_back(i);
    }
    let batch = Arc::new(Batch {
        task,
        queues,
        remaining: AtomicUsize::new(n),
        panic: Mutex::new(None),
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut active = pool.shared.active.lock().unwrap();
        active.push(Arc::clone(&batch));
        pool.shared.cv.notify_all();
    }
    // The submitter participates as deque-0's home worker …
    while let Some(i) = batch.claim(0) {
        batch.execute(i);
    }
    // … then waits out whatever other workers still have in flight.
    {
        let mut done = batch.done.lock().unwrap();
        while !*done {
            done = batch.done_cv.wait(done).unwrap();
        }
    }
    {
        let mut active = pool.shared.active.lock().unwrap();
        if let Some(pos) = active.iter().position(|b| Arc::ptr_eq(b, &batch)) {
            active.remove(pos);
        }
    }
    if batch.panicked.load(Ordering::Acquire) {
        let payload = batch
            .panic
            .lock()
            .unwrap()
            .take()
            .expect("panicked batch stores its payload");
        resume_unwind(payload);
    }
}
