//! Offline shim for the subset of `rayon` this workspace uses: the
//! container builds without network access, so the real crate cannot be
//! fetched. Call sites stay source-compatible
//! (`collection.into_par_iter().filter(..).map(..).collect()` and
//! `slice.par_iter().map(..).collect()`).
//!
//! Unlike real rayon there is no work-stealing pool: `map` fans the items
//! out over `std::thread::scope` workers pulling indices from a shared
//! queue, which is exactly right for this workspace's coarse-grained
//! experiment sweeps (each item is a multi-millisecond simulation run).
//! Worker panics propagate to the caller, as with rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Environment variable overriding the worker count (like real rayon's
/// `RAYON_NUM_THREADS`): `SGDRC_THREADS=1` forces the sequential
/// fallback, `SGDRC_THREADS=8` fans out over 8 workers regardless of
/// the detected CPU count. Unset/invalid/zero falls back to
/// `std::thread::available_parallelism`.
pub const THREADS_ENV: &str = "SGDRC_THREADS";

/// The worker count parallel maps fan out over: the [`THREADS_ENV`]
/// override when set, otherwise the detected CPU count (mirrors
/// `rayon::current_num_threads`). Benchmarks record this so a reported
/// parallel speedup is attributable to an actual worker count.
pub fn current_num_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => detected_parallelism(),
        },
        Err(_) => detected_parallelism(),
    }
}

fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// An eagerly materialized "parallel" iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into [`ParIter`] — covers `Vec<T>`, arrays and anything else
/// `IntoIterator`, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
{
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` on borrowed collections (`&Vec<T>`, `&[T]`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The combinator subset used by the workspace. Named like rayon's trait
/// but implemented inherently on [`ParIter`]; re-exported through
/// [`prelude`] so `use rayon::prelude::*` keeps compiling.
pub trait ParallelIterator {}

impl<T: Send> ParIter<T> {
    /// Sequential filter — predicates in this workspace are trivial
    /// (capability checks); the expensive stage is `map`.
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> Self {
        ParIter {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    /// Applies `f` to every item across scoped worker threads, preserving
    /// input order in the output.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: par_map_vec(self.items, &f),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Order-preserving parallel map over a `Vec`.
fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        // Sequential fallback (the default on 1-CPU boxes, or forced via
        // SGDRC_THREADS=1): no worker threads, no per-item mutexes.
        return items.into_iter().map(f).collect();
    }
    // Items are handed out through per-slot takeable cells so workers can
    // claim them by index without cloning.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<i64> = (0..100)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_then_map() {
        let out: Vec<i32> = vec![1, 2, 3, 4, 5, 6]
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .map(|x| x + 10)
            .collect();
        assert_eq!(out, vec![12, 14, 16]);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    /// Serializes the tests that touch or read `SGDRC_THREADS`: env
    /// mutation is process-global, and cargo runs tests on parallel
    /// threads in one process.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn threads_env_overrides_worker_count() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = std::env::var(crate::THREADS_ENV).ok();
        std::env::set_var(crate::THREADS_ENV, "3");
        assert_eq!(crate::current_num_threads(), 3);
        std::env::set_var(crate::THREADS_ENV, "not-a-number");
        let detected = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        assert_eq!(crate::current_num_threads(), detected);
        std::env::set_var(crate::THREADS_ENV, "3");
        // The fan-out honours the override (and stays order-preserving).
        let out: Vec<i32> = (0..32)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
        // Restore whatever the environment had before the test.
        match prior {
            Some(v) => std::env::set_var(crate::THREADS_ENV, v),
            None => std::env::remove_var(crate::THREADS_ENV),
        }
    }

    #[test]
    fn map_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Hold the env lock so the override test cannot flip the worker
        // count between the fan-out below and the guard's re-read.
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(2));
            })
            .collect();
        // Guard on the *effective* worker count: with SGDRC_THREADS=1
        // the fan-out legitimately stays sequential on any machine.
        if crate::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
        }
    }
}
