//! Offline shim for the subset of `rayon` this workspace uses — plus
//! `join`/`par_iter_mut`, rounding out the standard structured-parallel
//! surface for callers the fleet layer grows next. The container builds
//! without network access, so the real crate cannot be fetched. Call
//! sites stay source-compatible
//! (`collection.into_par_iter().filter(..).map(..).collect()`,
//! `slice.par_iter().map(..).collect()`, `rayon::join(a, b)`,
//! `slice.par_chunks(n)`).
//!
//! Parallel operations execute on a lazily-built **persistent
//! work-stealing pool** ([`pool`]): per-worker deques with
//! steal-on-empty, built once per process with the worker count
//! [`current_num_threads`] reports at that moment (`SGDRC_THREADS`
//! honored at pool build), workers parked between calls. Dispatching a
//! batch therefore costs no thread spawn — the property fine-grained
//! callers like the fleet simulator's epoch clock depend on. Tiny
//! batches (`len() <= 1`), empty inputs and 1-worker pools run
//! sequentially inline without touching the pool machinery at all.
//! Worker panics propagate to the caller, as with rayon.
//!
//! The per-call `thread::scope` dispatch this pool replaced survives in
//! [`legacy`] as the "before" arm of the pool-dispatch microbenchmark.

mod pool;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice,
    };
}

/// Environment variable overriding the worker count (like real rayon's
/// `RAYON_NUM_THREADS`): `SGDRC_THREADS=1` forces the sequential
/// fallback, `SGDRC_THREADS=8` fans out over 8 workers regardless of
/// the detected CPU count. Unset/invalid/zero falls back to
/// `std::thread::available_parallelism`. The persistent pool reads this
/// once, when the first parallel call builds it.
pub const THREADS_ENV: &str = "SGDRC_THREADS";

/// The worker count parallel maps fan out over: the [`THREADS_ENV`]
/// override when set, otherwise the detected CPU count (mirrors
/// `rayon::current_num_threads`). Benchmarks record this so a reported
/// parallel speedup is attributable to an actual worker count. Note the
/// env var is re-read on every call — chunk-sizing heuristics see env
/// changes live — while the pool itself is sized once at build; use
/// [`current_pool_workers`] for the count that actually executes.
pub fn current_num_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => detected_parallelism(),
        },
        Err(_) => detected_parallelism(),
    }
}

/// The number of participants the persistent pool executes parallel
/// calls with (builds the pool on first use). Fixed for the process
/// lifetime — unlike [`current_num_threads`], later `SGDRC_THREADS`
/// changes do not move it.
pub fn current_pool_workers() -> usize {
    pool::global().workers
}

fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Runs `f(i)` for every `i in 0..n` across the persistent pool and
/// returns when all have finished — the index-batch primitive the fleet
/// clock's epoch dispatch uses directly, bypassing the materializing
/// `ParIter` adapters (no per-epoch `Vec<&mut Lane>` build, no result
/// collection). Sequential inline when `n <= 1` or the pool has a
/// single participant, in which case the call allocates nothing.
/// Closure panics propagate to the caller, as with rayon scopes.
pub fn for_each_index<F: Fn(usize) + Sync>(n: usize, f: F) {
    pool::run_batch(n, &f);
}

/// Runs both closures, potentially in parallel, and returns both
/// results — rayon's structured-parallelism primitive. Either closure
/// may execute on any participant (the calling thread claims whatever
/// a pool worker has not already stolen — do not rely on thread
/// affinity). A panic in either closure propagates once both have
/// stopped running.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_pool_workers() == 1 {
        return (oper_a(), oper_b());
    }
    use std::sync::Mutex;
    let opers = (Mutex::new(Some(oper_a)), Mutex::new(Some(oper_b)));
    let out: (Mutex<Option<RA>>, Mutex<Option<RB>>) = (Mutex::new(None), Mutex::new(None));
    pool::run_batch(2, &|i| {
        if i == 0 {
            let f = opers.0.lock().unwrap().take().expect("claimed once");
            *out.0.lock().unwrap() = Some(f());
        } else {
            let f = opers.1.lock().unwrap().take().expect("claimed once");
            *out.1.lock().unwrap() = Some(f());
        }
    });
    (
        out.0.into_inner().unwrap().expect("oper_a ran"),
        out.1.into_inner().unwrap().expect("oper_b ran"),
    )
}

/// An eagerly materialized "parallel" iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into [`ParIter`] — covers `Vec<T>`, arrays and anything else
/// `IntoIterator`, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
{
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` on borrowed collections (`&Vec<T>`, `&[T]`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` on borrowed collections — parallel mutation of
/// disjoint elements (`&mut [T]`, `&mut Vec<T>`), mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `par_chunks()` on slices, mirroring `rayon::slice::ParallelSlice`:
/// contiguous chunks become the parallel items.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size.max(1)).collect(),
        }
    }
}

/// The combinator subset used by the workspace. Named like rayon's trait
/// but implemented inherently on [`ParIter`]; re-exported through
/// [`prelude`] so `use rayon::prelude::*` keeps compiling.
pub trait ParallelIterator {}

impl<T: Send> ParIter<T> {
    /// Sequential filter — predicates in this workspace are trivial
    /// (capability checks); the expensive stage is `map`.
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> Self {
        ParIter {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    /// Pairs every item with its position, like rayon's
    /// `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item across the persistent pool, preserving
    /// input order in the output.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: par_map_vec(self.items, &f),
        }
    }

    /// Runs `f` on every item across the persistent pool, discarding
    /// results (rayon's `for_each`) — no result slots allocated, unlike
    /// [`map`](Self::map).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let n = self.items.len();
        if n == 0 {
            return;
        }
        if n == 1 || current_pool_workers() == 1 {
            self.items.into_iter().for_each(f);
            return;
        }
        run_batch_owned(self.items, &|_, t| f(t));
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Hands a `Vec`'s items to the pool through per-slot takeable cells so
/// workers can claim them by index without cloning — the one place the
/// claim protocol (lock, take, exactly-once) lives; [`ParIter::map`]
/// and [`ParIter::for_each`] both dispatch through it.
fn run_batch_owned<T: Send>(items: Vec<T>, f: &(dyn Fn(usize, T) + Sync)) {
    use std::sync::Mutex;
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    pool::run_batch(n, &|i| {
        let item = slots[i].lock().unwrap().take().expect("slot claimed once");
        f(i, item);
    });
}

/// Order-preserving parallel map over a `Vec`, dispatched through the
/// persistent pool. Empty inputs return before the pool is even built;
/// single-item inputs and 1-worker pools run sequentially inline.
fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    use std::sync::Mutex;
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || current_pool_workers() == 1 {
        // Sequential fallback (the default on 1-CPU boxes, or forced via
        // SGDRC_THREADS=1 at pool build): no dispatch, no per-item
        // mutexes.
        return items.into_iter().map(f).collect();
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run_batch_owned(items, &|i, t| {
        *results[i].lock().unwrap() = Some(f(t));
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// The pre-pool dispatch, kept as the microbenchmark's "before" arm: a
/// fresh `std::thread::scope` worker set per call pulling indices from
/// one shared queue (no stealing, no persistence). `bench_cluster`'s
/// pool-dispatch probe measures the persistent pool against exactly
/// this.
pub mod legacy {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Order-preserving map over `items` with `workers` scoped threads
    /// spawned for this one call — the shim's dispatch before the
    /// persistent pool existed.
    pub fn scoped_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(
        items: Vec<T>,
        workers: usize,
        f: &F,
    ) -> Vec<R> {
        let n = items.len();
        let workers = workers.min(n);
        if n <= 1 || workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                    let out = f(item);
                    *results[i].lock().unwrap() = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<i64> = (0..100)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_then_map() {
        let out: Vec<i32> = vec![1, 2, 3, 4, 5, 6]
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .map(|x| x + 10)
            .collect();
        assert_eq!(out, vec![12, 14, 16]);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u64> = (0..50).collect();
        v.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(v, (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_the_slice_in_order() {
        let v: Vec<u32> = (0..103).collect();
        let sums: Vec<(usize, u32)> = v
            .par_chunks(10)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum()))
            .collect();
        assert_eq!(sums.len(), 11);
        let expected: Vec<(usize, u32)> = v
            .chunks(10)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum()))
            .collect();
        assert_eq!(sums, expected);
        assert_eq!(sums.iter().map(|&(_, s)| s).sum::<u32>(), (0..103).sum());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 6 * 7, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests_without_deadlock() {
        // Recursive joins submitted from inside pool tasks must complete
        // (the submitter always participates in its own batch).
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 8 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (a, b) = crate::join(|| sum(range.start..mid), || sum(mid..range.end));
            a + b
        }
        assert_eq!(sum(0..1000), 499_500);
    }

    #[test]
    fn nested_parallel_maps_complete() {
        let out: Vec<u64> = (0..8u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| {
                (0..x + 1)
                    .collect::<Vec<u64>>()
                    .into_par_iter()
                    .map(|y| y + 1)
                    .collect::<Vec<u64>>()
                    .into_iter()
                    .sum()
            })
            .collect();
        let expected: Vec<u64> = (0..8u64).map(|x| (1..=x + 1).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<i32> = (0..64)
                .collect::<Vec<i32>>()
                .into_par_iter()
                .map(|x| {
                    if x == 33 {
                        panic!("boom at {x}");
                    }
                    x
                })
                .collect();
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool survives a panicked batch: later calls still work.
        let out: Vec<i32> = (0..16)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn join_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            crate::join(|| 1, || -> i32 { panic!("right side") });
        });
        assert!(result.is_err());
    }

    #[test]
    fn legacy_scoped_map_matches_sequential() {
        let items: Vec<u32> = (0..77).collect();
        let out = crate::legacy::scoped_map_vec(items.clone(), 4, &|x| x * x + 1);
        assert_eq!(out, items.iter().map(|&x| x * x + 1).collect::<Vec<_>>());
    }

    /// Serializes the tests that touch or read `SGDRC_THREADS`: env
    /// mutation is process-global, and cargo runs tests on parallel
    /// threads in one process.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn threads_env_overrides_worker_count() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Force the lazy pool build BEFORE mutating the env: another
        // test's first parallel call (they don't take ENV_LOCK) must
        // never race this test's temporary values into the pool size —
        // the process's pool has to reflect the env it started with.
        let _ = crate::current_pool_workers();
        let prior = std::env::var(crate::THREADS_ENV).ok();
        std::env::set_var(crate::THREADS_ENV, "3");
        assert_eq!(crate::current_num_threads(), 3);
        std::env::set_var(crate::THREADS_ENV, "not-a-number");
        let detected = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        assert_eq!(crate::current_num_threads(), detected);
        std::env::set_var(crate::THREADS_ENV, "3");
        // The fan-out stays order-preserving whatever the pool was built
        // with (the pool honors the env at build time, not per call).
        let out: Vec<i32> = (0..32)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
        // Restore whatever the environment had before the test.
        match prior {
            Some(v) => std::env::set_var(crate::THREADS_ENV, v),
            None => std::env::remove_var(crate::THREADS_ENV),
        }
    }

    #[test]
    fn map_actually_runs_on_the_pool_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Hold the env lock so the override test cannot race the pool
        // build below (the pool reads the env exactly once).
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(2));
            })
            .collect();
        // Guard on the pool's *actual* participant count: with a
        // 1-worker pool the fan-out legitimately stays sequential.
        if crate::current_pool_workers() > 1 {
            assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
        }
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        if crate::current_pool_workers() == 1 {
            return; // nothing to observe on a 1-worker pool
        }
        let ids = |_: ()| -> HashSet<std::thread::ThreadId> {
            let seen = Mutex::new(HashSet::new());
            let _: Vec<()> = (0..64)
                .collect::<Vec<i32>>()
                .into_par_iter()
                .map(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
                .collect();
            seen.into_inner().unwrap()
        };
        let first = ids(());
        let second = ids(());
        // The same persistent workers serve both calls — at minimum the
        // submitting thread repeats, and with >1 participants the worker
        // sets overlap rather than being freshly spawned strangers.
        assert!(
            !first.is_disjoint(&second),
            "persistent pool must reuse worker threads across calls"
        );
    }
}
