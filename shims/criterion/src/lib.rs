//! Offline shim for the subset of `criterion` this workspace uses: the
//! container builds without network access, so the real crate cannot be
//! fetched.
//!
//! `Criterion::bench_function` + `Bencher::iter` with the
//! `criterion_group!`/`criterion_main!` wiring (harness = false). Instead
//! of criterion's statistical machinery, each benchmark is warmed up,
//! then timed over enough batches to fill a ~200 ms measurement window;
//! the per-iteration median batch time is printed as `ns/iter`.

use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);
const BATCHES: u32 = 10;

/// Benchmark driver handle.
#[derive(Default)]
pub struct Criterion {}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters_per_batch: u64,
    batch_ns: Vec<f64>,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: discover iteration cost with a growing budget.
        let mut calib = Bencher {
            iters_per_batch: 1,
            batch_ns: Vec::new(),
        };
        let t0 = Instant::now();
        let mut iters: u64 = 1;
        loop {
            calib.iters_per_batch = iters;
            calib.batch_ns.clear();
            f(&mut calib);
            let spent = t0.elapsed();
            if spent >= WARMUP {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let per_iter_ns = (calib.batch_ns.iter().sum::<f64>() / calib.batch_ns.len().max(1) as f64)
            / calib.iters_per_batch.max(1) as f64;
        // Measurement pass: BATCHES batches covering ~MEASURE total.
        let target_batch_ns = MEASURE.as_nanos() as f64 / BATCHES as f64;
        let iters_per_batch = ((target_batch_ns / per_iter_ns.max(0.5)) as u64).clamp(1, 1 << 28);
        let mut b = Bencher {
            iters_per_batch,
            batch_ns: Vec::new(),
        };
        for _ in 0..BATCHES {
            f(&mut b);
        }
        let mut per_iter: Vec<f64> = b
            .batch_ns
            .iter()
            .map(|ns| ns / b.iters_per_batch as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!("{name:<44} {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1}, {iters_per_batch} iters/batch)");
        self
    }
}

impl Bencher {
    /// Times `iters_per_batch` calls of `f` as one batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(f());
        }
        self.batch_ns.push(start.elapsed().as_nanos() as f64);
    }
}

/// `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group1, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }
}
