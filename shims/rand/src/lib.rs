//! Offline shim for the subset of the `rand` crate API this workspace
//! uses. The container builds without network access, so the real crate
//! cannot be fetched; this vendored stand-in keeps call sites
//! source-compatible.
//!
//! Coverage: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over half-open ranges of the primitive
//! integer types and `f64`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine: every consumer
//! in this workspace treats the stream as an arbitrary deterministic
//! source, never as a specific sequence.

use std::ops::Range;

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Object-safe raw-bits source, so `SampleUniform` stays dyn-friendly.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing RNG trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics on an empty range,
    /// matching upstream.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `u64` bits → uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        let v = range.start + (range.end - range.start) * unit_f64(rng.next_u64()) as f32;
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        let v = range.start + (range.end - range.start) * unit_f64(rng.next_u64());
        // Guard against `start + span * 1.0-ε` rounding up to `end`.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(3u64..17);
            assert_eq!(x, b.gen_range(3u64..17));
            assert!((3..17).contains(&x));
            let f = a.gen_range(-2.0..3.0);
            assert_eq!(f, b.gen_range(-2.0..3.0));
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
