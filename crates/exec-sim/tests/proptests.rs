//! Property-based tests for the execution engine.
use dnn::kernel::{KernelDesc, KernelKind};
use exec_sim::{
    compute_rates, max_relative_divergence, ChannelSet, Engine, LaunchConfig, RateState,
    RunningCtx, TpcMask, RATE_EQUIVALENCE_TOL,
};
use gpu_spec::GpuModel;
use proptest::prelude::*;

fn kernel(flops: f64, bytes: f64, blocks: u32) -> KernelDesc {
    KernelDesc {
        id: 1,
        name: "p".into(),
        kind: KernelKind::Gemm,
        flops,
        bytes,
        thread_blocks: blocks,
        persistent_threads: true,
        colored: false,
        extra_registers: 0,
        tensor_refs: vec![],
    }
}

proptest! {
    /// Rates are always positive and never exceed the exclusive rate.
    #[test]
    fn rates_bounded(
        n in 1usize..4,
        flops in 1e6f64..1e10,
        bytes in 1e4f64..1e8,
        blocks in 1u32..512,
    ) {
        let spec = GpuModel::RtxA2000.spec();
        let running: Vec<RunningCtx> = (0..n)
            .map(|_| RunningCtx::new(&spec, kernel(flops, bytes, blocks), TpcMask::all(&spec), ChannelSet::all(&spec), 1.0))
            .collect();
        for r in compute_rates(&spec, &running) {
            prop_assert!(r.relative_speed > 0.0);
            prop_assert!(r.relative_speed <= 1.0 + 1e-9, "speed {} > exclusive", r.relative_speed);
            prop_assert!(r.duration_us.is_finite());
        }
    }

    /// Time is monotone and no kernel is lost: every launch eventually
    /// produces exactly one Finished event.
    #[test]
    fn work_conservation(launches in prop::collection::vec((1e6f64..5e8, 1u32..256), 1..6)) {
        let spec = GpuModel::RtxA2000.spec();
        let mut e = Engine::new(spec.clone());
        let mut ids = std::collections::BTreeSet::new();
        for &(flops, blocks) in &launches {
            ids.insert(e.launch(&kernel(flops, 1e6, blocks), &LaunchConfig::exclusive(&spec)));
        }
        let mut last = 0.0f64;
        while let Some(ev) = e.step() {
            match ev {
                exec_sim::EngineEvent::Finished { id, at_us } => {
                    prop_assert!(at_us >= last - 1e-9, "time went backwards");
                    last = at_us;
                    prop_assert!(ids.remove(&id), "unknown or duplicate completion");
                }
                other => prop_assert!(false, "unexpected event {other:?}"),
            }
        }
        prop_assert!(ids.is_empty(), "lost kernels: {ids:?}");
    }

    /// The incremental re-mask path ([`RateState::update_one`]) matches a
    /// from-scratch `compute_rates` within 1e-9 relative, for arbitrary
    /// running sets and arbitrary single-kernel mask/channel changes.
    #[test]
    fn incremental_update_matches_full_recompute(
        shapes in prop::collection::vec(
            // (flops, bytes, blocks, mask_start, mask_len, channel_bits)
            (1e6f64..1e10, 1e4f64..3e8, 1u32..512, 0u32..10, 1u32..13, 1u16..64),
            1..5,
        ),
        changed in 0usize..5,
        new_mask_start in 0u32..10,
        new_mask_len in 1u32..13,
        new_channel_bits in 1u16..64,
    ) {
        let spec = GpuModel::RtxA2000.spec();
        let clamp_mask = |start: u32, len: u32| {
            let m = TpcMask::range(start, len).intersect(TpcMask::all(&spec));
            if m.is_empty() { TpcMask::first(1) } else { m }
        };
        let clamp_channels = |bits: u16| {
            let c = ChannelSet(bits & ChannelSet::all(&spec).0);
            if c.is_empty() { ChannelSet::from_channels(&[0]) } else { c }
        };
        let mut running: Vec<RunningCtx> = shapes
            .iter()
            .map(|&(flops, bytes, blocks, start, len, chans)| {
                RunningCtx::new(
                    &spec,
                    kernel(flops, bytes, blocks),
                    clamp_mask(start, len),
                    clamp_channels(chans),
                    1.0,
                )
            })
            .collect();
        let i = changed % running.len();
        let mut state = RateState::default();
        let mut rates = Vec::new();
        state.recompute_full(&spec, &running, &mut rates);
        let old_mask = running[i].mask;
        let old_channels = running[i].channels;
        running[i].mask = clamp_mask(new_mask_start, new_mask_len);
        running[i].channels = clamp_channels(new_channel_bits);
        let mut incremental = Vec::new();
        state.update_one(&spec, &running, i, old_mask, old_channels, &mut incremental);
        let full = compute_rates(&spec, &running);
        let div = max_relative_divergence(&incremental, &full);
        prop_assert!(div < RATE_EQUIVALENCE_TOL, "divergence {div}");
    }

    /// The optimized fast path agrees with the preserved seed model
    /// (`contention::reference`) on arbitrary running sets.
    #[test]
    fn fast_path_matches_reference_model(
        shapes in prop::collection::vec(
            (1e6f64..1e10, 1e4f64..3e8, 1u32..512, 0u32..13, 1u32..13, 1u16..64),
            1..5,
        ),
    ) {
        use exec_sim::contention::reference;
        let spec = GpuModel::RtxA2000.spec();
        let running: Vec<RunningCtx> = shapes
            .iter()
            .map(|&(flops, bytes, blocks, start, len, chans)| {
                let mask = TpcMask::range(start, len).intersect(TpcMask::all(&spec));
                let mask = if mask.is_empty() { TpcMask::first(1) } else { mask };
                let channels = ChannelSet(chans & ChannelSet::all(&spec).0);
                let channels = if channels.is_empty() {
                    ChannelSet::from_channels(&[0])
                } else {
                    channels
                };
                RunningCtx::new(&spec, kernel(flops, bytes, blocks), mask, channels, 1.0)
            })
            .collect();
        let fast = compute_rates(&spec, &running);
        let seed: Vec<reference::Ctx> = running.iter().map(reference::Ctx::from_running).collect();
        let slow = reference::compute_rates(&spec, &seed);
        let div = max_relative_divergence(&fast, &slow);
        prop_assert!(div < RATE_EQUIVALENCE_TOL, "divergence {div}");
    }
}
