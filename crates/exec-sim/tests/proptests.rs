//! Property-based tests for the execution engine.
use dnn::kernel::{KernelDesc, KernelKind};
use exec_sim::{compute_rates, ChannelSet, Engine, LaunchConfig, RunningCtx, TpcMask};
use gpu_spec::GpuModel;
use proptest::prelude::*;

fn kernel(flops: f64, bytes: f64, blocks: u32) -> KernelDesc {
    KernelDesc {
        id: 1,
        name: "p".into(),
        kind: KernelKind::Gemm,
        flops,
        bytes,
        thread_blocks: blocks,
        persistent_threads: true,
        colored: false,
        extra_registers: 0,
        tensor_refs: vec![],
    }
}

proptest! {
    /// Rates are always positive and never exceed the exclusive rate.
    #[test]
    fn rates_bounded(
        n in 1usize..4,
        flops in 1e6f64..1e10,
        bytes in 1e4f64..1e8,
        blocks in 1u32..512,
    ) {
        let spec = GpuModel::RtxA2000.spec();
        let running: Vec<RunningCtx> = (0..n)
            .map(|_| RunningCtx {
                kernel: kernel(flops, bytes, blocks),
                mask: TpcMask::all(&spec),
                channels: ChannelSet::all(&spec),
                thread_fraction: 1.0,
            })
            .collect();
        for r in compute_rates(&spec, &running) {
            prop_assert!(r.relative_speed > 0.0);
            prop_assert!(r.relative_speed <= 1.0 + 1e-9, "speed {} > exclusive", r.relative_speed);
            prop_assert!(r.duration_us.is_finite());
        }
    }

    /// Time is monotone and no kernel is lost: every launch eventually
    /// produces exactly one Finished event.
    #[test]
    fn work_conservation(launches in prop::collection::vec((1e6f64..5e8, 1u32..256), 1..6)) {
        let spec = GpuModel::RtxA2000.spec();
        let mut e = Engine::new(spec.clone());
        let mut ids = std::collections::BTreeSet::new();
        for &(flops, blocks) in &launches {
            ids.insert(e.launch(&kernel(flops, 1e6, blocks), &LaunchConfig::exclusive(&spec)));
        }
        let mut last = 0.0f64;
        while let Some(ev) = e.step() {
            match ev {
                exec_sim::EngineEvent::Finished { id, at_us } => {
                    prop_assert!(at_us >= last - 1e-9, "time went backwards");
                    last = at_us;
                    prop_assert!(ids.remove(&id), "unknown or duplicate completion");
                }
                other => prop_assert!(false, "unexpected event {other:?}"),
            }
        }
        prop_assert!(ids.is_empty(), "lost kernels: {ids:?}");
    }
}
