//! Core types of the kernel-grain GPU engine.

use gpu_spec::GpuSpec;

/// A TPC bitmask — the TMD/libsmctrl SM-masking interface (§7.1). Bit `i`
/// set means the kernel's blocks may be scheduled on TPC `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TpcMask(pub u32);

impl TpcMask {
    /// All TPCs of a GPU.
    pub fn all(spec: &GpuSpec) -> Self {
        TpcMask(if spec.num_tpcs >= 32 {
            u32::MAX
        } else {
            (1u32 << spec.num_tpcs) - 1
        })
    }

    /// The first `n` TPCs.
    pub fn first(n: u32) -> Self {
        TpcMask(if n >= 32 { u32::MAX } else { (1u32 << n) - 1 })
    }

    /// `n` TPCs starting at `start`.
    pub fn range(start: u32, n: u32) -> Self {
        TpcMask(Self::first(n).0 << start)
    }

    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    pub fn intersect(self, other: TpcMask) -> TpcMask {
        TpcMask(self.0 & other.0)
    }

    pub fn union(self, other: TpcMask) -> TpcMask {
        TpcMask(self.0 | other.0)
    }

    pub fn minus(self, other: TpcMask) -> TpcMask {
        TpcMask(self.0 & !other.0)
    }

    pub fn overlaps(self, other: TpcMask) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the indices of set bits, lowest first.
    pub fn iter_ones(self) -> BitIter {
        BitIter(self.0)
    }
}

/// Iterator over set-bit indices of a mask (lowest first), driven by
/// `trailing_zeros` — the hot path never walks cleared bits.
#[derive(Debug, Clone, Copy)]
pub struct BitIter(u32);

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BitIter {}

/// A VRAM channel bitmask (≤16 channels on the modelled GPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelSet(pub u16);

impl ChannelSet {
    pub fn all(spec: &GpuSpec) -> Self {
        ChannelSet((1u16 << spec.num_channels) - 1)
    }

    pub fn from_channels(channels: &[u16]) -> Self {
        ChannelSet(channels.iter().fold(0, |m, &c| m | (1 << c)))
    }

    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    pub fn overlap(self, other: ChannelSet) -> u32 {
        (self.0 & other.0).count_ones()
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the indices of set bits, lowest first.
    pub fn iter_ones(self) -> BitIter {
        BitIter(self.0 as u32)
    }
}

/// Handle of a launched kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaunchId(pub u64);

/// Scheduler-visible engine events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// A kernel ran to completion.
    Finished { id: LaunchId, at_us: f64 },
    /// A kernel observed the eviction flag and terminated (its progress is
    /// discarded — REEF-style reset preemption, §7.1).
    Preempted { id: LaunchId, at_us: f64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::GpuModel;

    #[test]
    fn masks_cover_gpu() {
        let spec = GpuModel::RtxA2000.spec();
        assert_eq!(TpcMask::all(&spec).count(), 13);
        assert_eq!(TpcMask::first(4).count(), 4);
        assert_eq!(TpcMask::range(4, 3).0, 0b111_0000);
    }

    #[test]
    fn mask_algebra() {
        let a = TpcMask(0b1111);
        let b = TpcMask(0b1100);
        assert_eq!(a.minus(b).0, 0b0011);
        assert_eq!(a.intersect(b).0, 0b1100);
        assert!(a.overlaps(b));
        assert!(!TpcMask(0b0011).overlaps(b));
    }

    #[test]
    fn channel_sets() {
        let spec = GpuModel::RtxA2000.spec();
        let all = ChannelSet::all(&spec);
        assert_eq!(all.count(), 6);
        let be = ChannelSet::from_channels(&[0, 1]);
        let ls = ChannelSet::from_channels(&[2, 3, 4, 5]);
        assert_eq!(be.overlap(ls), 0);
        assert_eq!(be.overlap(all), 2);
    }
}
