//! # exec-sim — kernel-grain discrete-event GPU execution engine
//!
//! Executes kernel streams on a simulated GPU with the mechanisms SGDRC
//! and its baselines manipulate:
//!
//! * **TPC masking** ([`TpcMask`]) — the TMD/libsmctrl interface (§7.1);
//! * **VRAM channel sets** ([`ChannelSet`]) — which channels a kernel's
//!   tensors map to (§6);
//! * **eviction-flag preemption** — REEF-style reset preemption of BE
//!   kernels with µs-scale polling latency (§7.1);
//! * **MPS thread fractions** — thread-level partitioning that leaves
//!   intra-SM and channel conflicts in place;
//! * a **contention model** ([`contention`]) reproducing Fig. 3a/3b.
//!
//! Progress integrates piecewise-constant rates: whenever the running set
//! changes, every kernel's instantaneous duration is re-evaluated.

pub mod contention;
pub mod engine;
pub mod types;

pub use contention::{
    compute_rates, max_relative_divergence, KernelRate, PreparedKernel, RateState, RunningCtx,
    RATE_EQUIVALENCE_TOL,
};
pub use engine::{Engine, LaunchConfig, RateMode};
pub use types::{BitIter, ChannelSet, EngineEvent, LaunchId, TpcMask};
