//! The discrete-event execution engine.
//!
//! Schedulers (SGDRC and the baselines) drive the engine: they launch
//! kernels with TPC masks / channel sets, advance virtual time, and react
//! to completion or preemption events. Progress is integrated with
//! piecewise-constant rates — exact for the roofline contention model,
//! independent of wall-clock.
//!
//! ## Hot-path design
//!
//! The engine processes millions of events per experiment sweep, so the
//! per-event path allocates nothing and recomputes nothing it can keep:
//!
//! * running kernels are stored struct-of-arrays ([`RunningCtx`] contexts
//!   parallel to integration bookkeeping), each context sharing its
//!   descriptor via `Arc` with per-kernel invariants precomputed at
//!   launch;
//! * rates live in a persistent [`RateState`] — running-set changes only
//!   mark them stale and the recompute happens at the next read, so a
//!   completion immediately followed by a relaunch (the serving loop's
//!   steady state) pays one evaluation, not two; [`Engine::remask`] takes
//!   an incremental O(n) update (checked against the full recompute in
//!   debug builds);
//! * [`Engine::next_event_at`] is memoized; integration keeps it valid
//!   (absolute finish times are invariant under `advance_to`), so the
//!   serving loop's repeated queries cost a `Cell` read.
//!
//! [`RateMode::Reference`] switches the engine back to the seed rate
//! path (deep-cloned descriptors, allocating evaluation) — the "before"
//! arm for `BENCH_exec_sim.json` and the oracle for equivalence tests.

use crate::contention::{reference, KernelRate, PreparedKernel, RateState, RunningCtx};
use crate::types::{ChannelSet, EngineEvent, LaunchId, TpcMask};
use dnn::kernel::KernelDesc;
use gpu_spec::GpuSpec;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Launch-time configuration of a kernel instance.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    pub mask: TpcMask,
    pub channels: ChannelSet,
    /// MPS active-thread fraction (1.0 unless emulating MPS).
    pub thread_fraction: f64,
    /// BE kernels poll the eviction flag every this many µs (§7.1). `None`
    /// makes the kernel non-preemptible (LS kernels).
    pub preempt_poll_us: Option<f64>,
}

impl LaunchConfig {
    /// Full GPU, not preemptible.
    pub fn exclusive(spec: &GpuSpec) -> Self {
        Self {
            mask: TpcMask::all(spec),
            channels: ChannelSet::all(spec),
            thread_fraction: 1.0,
            preempt_poll_us: None,
        }
    }
}

/// Which contention-model implementation the engine evaluates rates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateMode {
    /// Allocation-free incremental path (the default).
    #[default]
    Fast,
    /// The preserved seed path: deep-clones every descriptor and
    /// re-derives all invariants on every event. Exists for before/after
    /// benchmarking and as the equivalence oracle.
    Reference,
}

/// Per-kernel integration bookkeeping (parallel to the context array).
#[derive(Debug, Clone, Copy)]
struct RunningMeta {
    id: LaunchId,
    /// Remaining work in "exclusive-runtime µs".
    remaining: f64,
    /// Total work (for restart bookkeeping).
    total: f64,
    poll_us: Option<f64>,
    /// Eviction flag raised; kernel will terminate at its next poll.
    evicting: Option<f64 /* absolute deadline */>,
}

/// The engine.
pub struct Engine {
    spec: GpuSpec,
    now: f64,
    next_id: u64,
    /// Contention-model view of the running kernels.
    ctxs: Vec<RunningCtx>,
    /// Integration bookkeeping, parallel to `ctxs`.
    meta: Vec<RunningMeta>,
    /// Rates valid for the current running set (parallel to `ctxs`).
    /// Interior-mutable so the lazy refresh can run behind `&self`
    /// accessors like [`Engine::next_event_at`].
    rates: RefCell<Vec<KernelRate>>,
    /// Persistent aggregates backing the fast rate path.
    state: RefCell<RateState>,
    /// Set when the running set changed and `rates` no longer describes
    /// it. In `Fast` mode launches and completions only mark this flag;
    /// the recompute happens at the next read. A completion immediately
    /// followed by a relaunch at the same timestamp — the serving loop's
    /// steady state — then pays one rate evaluation instead of two.
    /// (`Reference` mode refreshes eagerly on every change, as the seed
    /// engine did.)
    rates_stale: Cell<bool>,
    /// Replay the pre-refactor maintenance discipline: a full recompute
    /// and emit on every running-set change instead of the incremental
    /// deferred path. The serving benchmark's "before" arm sets this so
    /// the measurement captures the whole hot-path overhaul; results are
    /// identical either way.
    eager_rates: bool,
    mode: RateMode,
    /// Memoized next-event time (`None` = stale, recompute on demand).
    next_event: Cell<Option<Option<f64>>>,
    /// Completion/preemption events delivered so far.
    events: u64,
    /// Global clock multiplier (1.0 = nominal). Models thermal throttling
    /// and transient stalls: every running kernel's progress integrates at
    /// `rate × clock_scale`, so a scale of 0.5 makes everything take twice
    /// as long until the scale is restored. Eviction-poll deadlines are
    /// wall-clock and stay unscaled.
    clock_scale: f64,
}

impl Engine {
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            now: 0.0,
            next_id: 1,
            ctxs: Vec::new(),
            meta: Vec::new(),
            rates: RefCell::new(Vec::new()),
            state: RefCell::new(RateState::default()),
            rates_stale: Cell::new(false),
            eager_rates: false,
            mode: RateMode::Fast,
            next_event: Cell::new(Some(None)),
            events: 0,
            clock_scale: 1.0,
        }
    }

    /// Returns the engine to the state [`Engine::new`] would produce for
    /// `spec`, retaining every internal buffer's capacity. Launch ids,
    /// the clock and the event counter restart, so a run driven through
    /// a reset engine is bit-identical to one driven through a freshly
    /// allocated engine — the invariant the reusable-`SimContext` sweep
    /// path relies on (enforced by `workload/tests/serving_equiv.rs`).
    pub fn reset(&mut self, spec: &GpuSpec) {
        self.spec = spec.clone();
        self.now = 0.0;
        self.next_id = 1;
        self.ctxs.clear();
        self.meta.clear();
        self.rates.get_mut().clear();
        self.state.get_mut().reset();
        self.rates_stale.set(false);
        self.eager_rates = false;
        self.mode = RateMode::Fast;
        self.next_event.set(Some(None));
        self.events = 0;
        self.clock_scale = 1.0;
    }

    /// Selects the rate-evaluation implementation (see [`RateMode`]).
    pub fn set_rate_mode(&mut self, mode: RateMode) {
        self.mode = mode;
        self.refresh_rates_full();
    }

    /// Replays the pre-refactor rate-maintenance discipline (full
    /// recompute and emit on every launch/finish) — the serving
    /// benchmark's "before" arm. Results are identical; only the
    /// per-event cost differs.
    pub fn set_eager_rates(&mut self, eager: bool) {
        self.eager_rates = eager;
    }

    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Current virtual time in µs.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Kernels currently resident on the GPU.
    pub fn running_count(&self) -> usize {
        self.ctxs.len()
    }

    /// Completion + preemption events delivered since construction.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Union of all running kernels' TPC masks.
    pub fn busy_tpcs(&self) -> TpcMask {
        self.ctxs.iter().fold(TpcMask(0), |m, r| m.union(r.mask))
    }

    /// IDs of the currently running kernels.
    pub fn running_ids(&self) -> Vec<LaunchId> {
        self.meta.iter().map(|r| r.id).collect()
    }

    /// Current per-kernel rates, parallel to [`Engine::running_ids`].
    /// Exposed for equivalence tests and diagnostics.
    pub fn current_rates(&self) -> Vec<KernelRate> {
        self.ensure_rates();
        self.rates.borrow().clone()
    }

    fn index_of(&self, id: LaunchId) -> Option<usize> {
        self.meta.iter().position(|r| r.id == id)
    }

    /// Makes `rates` describe the current running set (no-op when
    /// fresh). The aggregates/pairwise sums are maintained incrementally
    /// at every launch/finish/remask; only the rate emission is deferred
    /// to here.
    fn ensure_rates(&self) {
        if self.rates_stale.get() {
            self.state
                .borrow()
                .emit_rates(&self.spec, &self.ctxs, &mut self.rates.borrow_mut());
            self.rates_stale.set(false);
            #[cfg(debug_assertions)]
            {
                let full = crate::contention::compute_rates(&self.spec, &self.ctxs);
                let div = crate::contention::max_relative_divergence(&self.rates.borrow(), &full);
                debug_assert!(
                    div < crate::contention::RATE_EQUIVALENCE_TOL,
                    "incrementally maintained rates diverged from full recompute: {div}"
                );
            }
        }
    }

    /// Full rate recomputation (mode switches and eager callers).
    fn refresh_rates_full(&mut self) {
        match self.mode {
            RateMode::Fast => {
                self.state.borrow_mut().recompute_full(
                    &self.spec,
                    &self.ctxs,
                    &mut self.rates.borrow_mut(),
                );
                self.rates_stale.set(false);
            }
            RateMode::Reference => self.refresh_rates_reference(),
        }
        self.invalidate_next_event();
    }

    /// The seed refresh: deep-clone every running kernel's descriptor and
    /// evaluate the allocating reference model.
    fn refresh_rates_reference(&mut self) {
        let ctxs: Vec<reference::Ctx> =
            self.ctxs.iter().map(reference::Ctx::from_running).collect();
        *self.rates.borrow_mut() = reference::compute_rates(&self.spec, &ctxs);
        self.rates_stale.set(false);
    }

    /// Launches a kernel; work equals its exclusive-resource runtime.
    /// Deep-copies the descriptor — prefer [`Engine::launch_shared`] when
    /// an `Arc` is already at hand (the serving layer's steady state).
    pub fn launch(&mut self, kernel: &KernelDesc, cfg: &LaunchConfig) -> LaunchId {
        self.launch_shared(&Arc::new(kernel.clone()), cfg)
    }

    /// Launches a kernel from a shared descriptor without copying it
    /// (derives the invariant block; prefer [`Engine::launch_prepared`]
    /// for descriptors launched repeatedly).
    pub fn launch_shared(&mut self, kernel: &Arc<KernelDesc>, cfg: &LaunchConfig) -> LaunchId {
        self.launch_prepared(&PreparedKernel::new(&self.spec, Arc::clone(kernel)), cfg)
    }

    /// Launches a prepared kernel: no descriptor copy, no invariant
    /// derivation — the serving loop's steady-state path.
    pub fn launch_prepared(&mut self, kernel: &PreparedKernel, cfg: &LaunchConfig) -> LaunchId {
        assert!(!cfg.mask.is_empty(), "kernel launched with empty TPC mask");
        let id = LaunchId(self.next_id);
        self.next_id += 1;
        let ctx = RunningCtx::from_prepared(kernel, cfg.mask, cfg.channels, cfg.thread_fraction);
        let total = ctx.perf.isolated_us;
        self.ctxs.push(ctx);
        self.meta.push(RunningMeta {
            id,
            remaining: total,
            total,
            poll_us: cfg.preempt_poll_us,
            evicting: None,
        });
        match self.mode {
            RateMode::Fast if self.eager_rates => self.refresh_rates_full(),
            RateMode::Fast => {
                self.state.get_mut().add_last(&self.spec, &self.ctxs);
                self.rates_stale.set(true);
            }
            RateMode::Reference => self.refresh_rates_reference(),
        }
        self.invalidate_next_event();
        id
    }

    /// Writes the eviction flag for a running preemptible kernel (§7.1).
    /// The kernel observes it at its next poll and terminates; progress is
    /// discarded (reset-based preemption). Returns `false` if the kernel is
    /// not running or not preemptible.
    pub fn raise_eviction_flag(&mut self, id: LaunchId) -> bool {
        let Some(i) = self.index_of(id) else {
            return false;
        };
        let r = &mut self.meta[i];
        match r.poll_us {
            Some(poll) => {
                if r.evicting.is_none() {
                    r.evicting = Some(self.now + poll);
                    self.invalidate_next_event();
                }
                true
            }
            None => false,
        }
    }

    /// Removes a running kernel without delivering an event — the crash
    /// path: a replica that dies mid-kernel never observes a completion
    /// or a preemption, its work simply vanishes. Progress up to the
    /// current clock has already been integrated; the remaining work is
    /// discarded and the event counter is untouched. Returns `false` if
    /// the kernel is not running.
    pub fn cancel(&mut self, id: LaunchId) -> bool {
        let Some(idx) = self.index_of(id) else {
            return false;
        };
        self.meta.remove(idx);
        let removed = self.ctxs.remove(idx);
        match self.mode {
            RateMode::Fast if self.eager_rates => self.refresh_rates_full(),
            RateMode::Fast => {
                self.state
                    .get_mut()
                    .remove_at(&self.spec, &self.ctxs, idx, &removed);
                self.rates_stale.set(true);
            }
            RateMode::Reference => self.refresh_rates_reference(),
        }
        self.invalidate_next_event();
        true
    }

    /// Current global clock multiplier (1.0 = nominal).
    pub fn clock_scale(&self) -> f64 {
        self.clock_scale
    }

    /// Sets the global clock multiplier (thermal throttling / transient
    /// stalls). Callers must have integrated progress up to the instant
    /// the scale changes (the fleet clock quiesces replicas to the fault
    /// time first, then [`advance_idle`](Engine::advance_idle)s); from
    /// then on every kernel's progress accrues at `rate × scale`.
    pub fn set_clock_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "clock scale must be positive and finite"
        );
        if self.clock_scale != scale {
            self.clock_scale = scale;
            self.invalidate_next_event();
        }
    }

    /// Re-masks a running kernel (the engine models SGDRC's relaunch-with-
    /// new-mask as an in-place update; the relaunch latency is folded into
    /// the preemption poll delay). Rates refresh through the incremental
    /// path — only the interference terms involving this kernel are
    /// recomputed.
    pub fn remask(&mut self, id: LaunchId, mask: TpcMask, channels: ChannelSet) -> bool {
        let Some(i) = self.index_of(id) else {
            return false;
        };
        let old_mask = self.ctxs[i].mask;
        let old_channels = self.ctxs[i].channels;
        if old_mask == mask && old_channels == channels {
            return true;
        }
        // The pairwise sums always describe the current running set
        // (launch/finish adjust them incrementally), so the remask delta
        // applies directly; `update_one` re-emits fresh rates.
        self.ctxs[i].mask = mask;
        self.ctxs[i].channels = channels;
        match self.mode {
            RateMode::Fast => {
                self.state.get_mut().update_one(
                    &self.spec,
                    &self.ctxs,
                    i,
                    old_mask,
                    old_channels,
                    self.rates.get_mut(),
                );
                self.rates_stale.set(false);
                #[cfg(debug_assertions)]
                {
                    let full = crate::contention::compute_rates(&self.spec, &self.ctxs);
                    let div =
                        crate::contention::max_relative_divergence(&self.rates.borrow(), &full);
                    debug_assert!(
                        div < crate::contention::RATE_EQUIVALENCE_TOL,
                        "incremental remask diverged from full recompute: {div}"
                    );
                }
            }
            RateMode::Reference => self.refresh_rates_reference(),
        }
        self.invalidate_next_event();
        true
    }

    fn invalidate_next_event(&self) {
        self.next_event.set(None);
    }

    /// Time of the next event, if any kernel is resident. Memoized: the
    /// event loop queries this several times between events, and absolute
    /// finish times do not change under [`Engine::advance_idle`].
    /// (`Reference` mode recomputes every call, as the seed engine did.)
    pub fn next_event_at(&self) -> Option<f64> {
        if self.mode == RateMode::Fast {
            if let Some(cached) = self.next_event.get() {
                return cached;
            }
        }
        self.ensure_rates();
        let rates = self.rates.borrow();
        let computed = self
            .meta
            .iter()
            .zip(rates.iter())
            .map(|(r, rate)| {
                let finish =
                    self.now + r.remaining / (rate.relative_speed * self.clock_scale).max(1e-9);
                match r.evicting {
                    Some(evict) => finish.min(evict),
                    None => finish,
                }
            })
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            });
        self.next_event.set(Some(computed));
        computed
    }

    /// Advances virtual time to the next completion/preemption and returns
    /// it; `None` when the GPU is idle.
    pub fn step(&mut self) -> Option<EngineEvent> {
        let target = self.next_event_at()?;
        self.advance_to(target);
        // Find the kernel that finished or got evicted (remaining ≤ ε or
        // eviction deadline reached).
        let mut fired: Option<(usize, bool)> = None;
        for (i, r) in self.meta.iter().enumerate() {
            if let Some(evict) = r.evicting {
                if evict <= self.now + 1e-9 {
                    fired = Some((i, true));
                    break;
                }
            }
            if r.remaining <= 1e-6 {
                fired = Some((i, false));
                break;
            }
        }
        let (idx, preempted) = fired.expect("an event was due");
        let r = self.meta.remove(idx);
        let removed = self.ctxs.remove(idx);
        match self.mode {
            RateMode::Fast if self.eager_rates => self.refresh_rates_full(),
            RateMode::Fast => {
                self.state
                    .get_mut()
                    .remove_at(&self.spec, &self.ctxs, idx, &removed);
                self.rates_stale.set(true);
            }
            RateMode::Reference => self.refresh_rates_reference(),
        }
        self.invalidate_next_event();
        self.events += 1;
        Some(if preempted {
            EngineEvent::Preempted {
                id: r.id,
                at_us: self.now,
            }
        } else {
            EngineEvent::Finished {
                id: r.id,
                at_us: self.now,
            }
        })
    }

    /// Advances time to `t` (≤ next event), integrating progress. Keeps
    /// the memoized next-event time valid: integration shifts `now` and
    /// `remaining` together, leaving absolute finish times unchanged.
    fn advance_to(&mut self, t: f64) {
        let dt = t - self.now;
        debug_assert!(dt >= -1e-9, "time went backwards");
        if dt > 0.0 {
            self.ensure_rates();
            let rates = self.rates.borrow();
            for (r, rate) in self.meta.iter_mut().zip(rates.iter()) {
                r.remaining -= dt * rate.relative_speed * self.clock_scale;
                if r.remaining < 0.0 {
                    r.remaining = 0.0;
                }
            }
            drop(rates);
            self.now = t;
        }
    }

    /// Advances to `t` without expecting events (panics if one was due
    /// strictly before `t`). Used to model request arrivals while idle.
    pub fn advance_idle(&mut self, t: f64) {
        let next = self.next_event_at();
        debug_assert!(
            next.is_none_or(|e| e >= t - 1e-9),
            "advance_idle skipped an engine event"
        );
        if t > self.now {
            self.advance_to(t.min(next.unwrap_or(t)));
            self.now = t;
        }
    }

    /// Progress fraction of a running kernel (1.0 = done), if running.
    pub fn progress(&self, id: LaunchId) -> Option<f64> {
        self.index_of(id)
            .map(|i| 1.0 - self.meta[i].remaining / self.meta[i].total)
    }

    /// Prefetches the per-event working set — integration bookkeeping,
    /// contention contexts, current rates — toward L1. The fleet clock
    /// issues this one lane ahead of its epoch batch so the first event
    /// of the next lane does not stall on a cold miss chain. Purely a
    /// cache hint; never observable.
    #[inline]
    pub fn prefetch_hot(&self) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.meta.as_ptr() as *const i8, _MM_HINT_T0);
            _mm_prefetch(self.ctxs.as_ptr() as *const i8, _MM_HINT_T0);
            // Reading the buffer pointer out of the RefCell is a plain
            // header load (the header lives inline in this struct);
            // no borrow flag is taken or checked.
            _mm_prefetch((*self.rates.as_ptr()).as_ptr() as *const i8, _MM_HINT_T0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::kernel::{KernelDesc, KernelKind};
    use gpu_spec::GpuModel;

    fn kernel(flops: f64, bytes: f64) -> KernelDesc {
        KernelDesc {
            id: 1,
            name: "k".into(),
            kind: KernelKind::Gemm,
            flops,
            bytes,
            thread_blocks: 512,
            persistent_threads: true,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        }
    }

    fn engine() -> Engine {
        Engine::new(GpuModel::RtxA2000.spec())
    }

    #[test]
    fn single_kernel_runs_for_its_isolated_time() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        match e.step() {
            Some(EngineEvent::Finished { id: fid, at_us }) => {
                assert_eq!(fid, id);
                assert!((at_us - expect).abs() / expect < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.step().is_none());
        assert_eq!(e.events_processed(), 1);
    }

    #[test]
    fn two_disjoint_kernels_do_not_interfere() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        let spec = e.spec().clone();
        let a = LaunchConfig {
            mask: TpcMask::first(6),
            channels: ChannelSet::from_channels(&[0, 1, 2]),
            thread_fraction: 1.0,
            preempt_poll_us: None,
        };
        let b = LaunchConfig {
            mask: TpcMask::range(6, 6),
            channels: ChannelSet::from_channels(&[3, 4, 5]),
            thread_fraction: 1.0,
            preempt_poll_us: None,
        };
        e.launch(&k, &a);
        e.launch(&k, &b);
        let _ = spec;
        let t1 = match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => at_us,
            other => panic!("{other:?}"),
        };
        let t2 = match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => at_us,
            other => panic!("{other:?}"),
        };
        // Both limited by block parallelism (512 blocks saturate >6 TPCs),
        // so each takes longer than exclusive, but they finish together.
        assert!(t1 >= expect);
        assert!((t2 - t1) / t1 < 0.05, "symmetric kernels finish together");
    }

    #[test]
    fn sharing_slows_both_down() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        let cfg = LaunchConfig::exclusive(e.spec());
        e.launch(&k, &cfg);
        e.launch(&k, &cfg);
        let t = match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => at_us,
            other => panic!("{other:?}"),
        };
        // Two identical kernels on shared SMs: > 2× exclusive (compute
        // split + intra-SM interference).
        assert!(t > expect * 2.0, "{t} vs {expect}");
    }

    #[test]
    fn eviction_flag_preempts_at_poll_boundary() {
        let mut e = engine();
        let k = kernel(5e9, 1e7); // long kernel
        let cfg = LaunchConfig {
            preempt_poll_us: Some(3.0),
            ..LaunchConfig::exclusive(e.spec())
        };
        let id = e.launch(&k, &cfg);
        // Let it run a little, then evict.
        let evict_time = 50.0;
        // No event before 50µs (kernel runs for hundreds of µs).
        e.advance_idle(evict_time);
        assert!(e.raise_eviction_flag(id));
        match e.step().unwrap() {
            EngineEvent::Preempted { id: pid, at_us } => {
                assert_eq!(pid, id);
                assert!((at_us - (evict_time + 3.0)).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(e.running_count(), 0);
    }

    #[test]
    fn ls_kernels_are_not_preemptible() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        assert!(!e.raise_eviction_flag(id));
    }

    #[test]
    fn remask_changes_rates() {
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        let full_finish = e.next_event_at().unwrap();
        e.remask(id, TpcMask::first(2), ChannelSet::all(e.spec()));
        let masked_finish = e.next_event_at().unwrap();
        assert!(masked_finish > full_finish * 2.0);
    }

    #[test]
    fn progress_is_monotonic() {
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        let finish = e.next_event_at().unwrap();
        e.advance_idle(finish * 0.25);
        let p1 = e.progress(id).unwrap();
        e.advance_idle(finish * 0.5);
        let p2 = e.progress(id).unwrap();
        assert!(p1 > 0.2 && p1 < 0.3, "{p1}");
        assert!(p2 > p1);
    }

    #[test]
    fn work_conservation_under_preemption_and_relaunch() {
        // Preempting and relaunching a BE kernel discards progress: the
        // total occupied time exceeds one exclusive run.
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let exclusive = dnn::perf::isolated_runtime_us(&k, e.spec());
        let cfg = LaunchConfig {
            preempt_poll_us: Some(2.0),
            ..LaunchConfig::exclusive(e.spec())
        };
        let id = e.launch(&k, &cfg);
        e.advance_idle(exclusive * 0.6);
        e.raise_eviction_flag(id);
        match e.step().unwrap() {
            EngineEvent::Preempted { .. } => {}
            other => panic!("{other:?}"),
        }
        // Relaunch from scratch.
        let t_relaunch = e.now();
        e.launch(&k, &cfg);
        match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => {
                assert!((at_us - t_relaunch - exclusive).abs() / exclusive < 1e-6);
                assert!(at_us > exclusive * 1.5, "progress was discarded");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cancel_removes_a_kernel_without_an_event() {
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let a = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        let b = e.launch(
            &k,
            &LaunchConfig {
                preempt_poll_us: Some(2.0),
                ..LaunchConfig::exclusive(e.spec())
            },
        );
        e.advance_idle(e.next_event_at().unwrap() * 0.25);
        // Cancel both — even one with a raised eviction flag: the pending
        // preemption must die with the launch, not fire later.
        e.raise_eviction_flag(b);
        assert!(e.cancel(a));
        assert!(e.cancel(b));
        assert!(!e.cancel(a), "double-cancel reports not running");
        assert_eq!(e.running_count(), 0);
        assert!(e.next_event_at().is_none());
        assert!(e.step().is_none());
        assert_eq!(e.events_processed(), 0, "cancel is not an event");
        // The engine keeps serving fresh launches afterwards.
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        let t0 = e.now();
        e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => {
                assert!((at_us - t0 - expect).abs() / expect < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clock_scale_slows_and_restores_progress() {
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        let nominal_finish = e.next_event_at().unwrap();
        assert!((nominal_finish - expect).abs() / expect < 1e-6);
        // Run the first half at nominal speed, then throttle to 0.5×:
        // the remaining half takes twice as long.
        e.advance_idle(expect * 0.5);
        e.set_clock_scale(0.5);
        assert_eq!(e.clock_scale(), 0.5);
        let throttled_finish = e.next_event_at().unwrap();
        assert!(
            (throttled_finish - expect * 1.5).abs() / expect < 1e-6,
            "throttled finish {throttled_finish} vs {}",
            expect * 1.5
        );
        // Restore at 75% wall-time (= 62.5% progress): the rest finishes
        // at nominal rate again.
        e.advance_idle(expect * 0.75);
        e.set_clock_scale(1.0);
        let restored_finish = e.next_event_at().unwrap();
        assert!(
            (restored_finish - expect * 1.125).abs() / expect < 1e-6,
            "restored finish {restored_finish} vs {}",
            expect * 1.125
        );
        match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => {
                assert!((at_us - restored_finish).abs() / expect < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reference_mode_reproduces_fast_mode_events() {
        // The same launch/remask/evict script under both rate modes must
        // deliver the same events at the same (±1e-9-relative) times.
        let script = |mode: RateMode| {
            let mut e = engine();
            e.set_rate_mode(mode);
            let spec = e.spec().clone();
            let a = e.launch(
                &kernel(3e9, 2e7),
                &LaunchConfig {
                    mask: TpcMask::first(8),
                    channels: ChannelSet::all(&spec),
                    thread_fraction: 1.0,
                    preempt_poll_us: None,
                },
            );
            let b = e.launch(
                &kernel(8e9, 3e8),
                &LaunchConfig {
                    mask: TpcMask::range(4, 9),
                    channels: ChannelSet::from_channels(&[0, 1, 2]),
                    thread_fraction: 1.0,
                    preempt_poll_us: Some(2.0),
                },
            );
            e.remask(b, TpcMask::range(8, 5), ChannelSet::from_channels(&[0, 1]));
            let _ = a;
            let mut events = Vec::new();
            while let Some(ev) = e.step() {
                events.push(ev);
            }
            events
        };
        let fast = script(RateMode::Fast);
        let slow = script(RateMode::Reference);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            match (f, s) {
                (
                    EngineEvent::Finished { id: fi, at_us: ft },
                    EngineEvent::Finished { id: si, at_us: st },
                )
                | (
                    EngineEvent::Preempted { id: fi, at_us: ft },
                    EngineEvent::Preempted { id: si, at_us: st },
                ) => {
                    assert_eq!(fi, si);
                    assert!((ft - st).abs() / st.max(1e-9) < 1e-9, "{ft} vs {st}");
                }
                other => panic!("event kind mismatch {other:?}"),
            }
        }
    }
}
