//! The discrete-event execution engine.
//!
//! Schedulers (SGDRC and the baselines) drive the engine: they launch
//! kernels with TPC masks / channel sets, advance virtual time, and react
//! to completion or preemption events. Progress is integrated with
//! piecewise-constant rates — exact for the roofline contention model,
//! independent of wall-clock.

use crate::contention::{compute_rates, RunningCtx};
use crate::types::{ChannelSet, EngineEvent, LaunchId, TpcMask};
use dnn::kernel::KernelDesc;
use gpu_spec::GpuSpec;

/// Launch-time configuration of a kernel instance.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    pub mask: TpcMask,
    pub channels: ChannelSet,
    /// MPS active-thread fraction (1.0 unless emulating MPS).
    pub thread_fraction: f64,
    /// BE kernels poll the eviction flag every this many µs (§7.1). `None`
    /// makes the kernel non-preemptible (LS kernels).
    pub preempt_poll_us: Option<f64>,
}

impl LaunchConfig {
    /// Full GPU, not preemptible.
    pub fn exclusive(spec: &GpuSpec) -> Self {
        Self {
            mask: TpcMask::all(spec),
            channels: ChannelSet::all(spec),
            thread_fraction: 1.0,
            preempt_poll_us: None,
        }
    }
}

struct Running {
    id: LaunchId,
    ctx: RunningCtx,
    /// Remaining work in "exclusive-runtime µs".
    remaining: f64,
    /// Total work (for restart bookkeeping).
    total: f64,
    poll_us: Option<f64>,
    /// Eviction flag raised; kernel will terminate at its next poll.
    evicting: Option<f64 /* absolute deadline */>,
}

/// The engine.
pub struct Engine {
    spec: GpuSpec,
    now: f64,
    next_id: u64,
    running: Vec<Running>,
    /// Rates valid for the current running set (parallel to `running`).
    speeds: Vec<f64>,
}

impl Engine {
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            now: 0.0,
            next_id: 1,
            running: Vec::new(),
            speeds: Vec::new(),
        }
    }

    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Current virtual time in µs.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Kernels currently resident on the GPU.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Union of all running kernels' TPC masks.
    pub fn busy_tpcs(&self) -> TpcMask {
        self.running
            .iter()
            .fold(TpcMask(0), |m, r| m.union(r.ctx.mask))
    }

    /// IDs of the currently running kernels.
    pub fn running_ids(&self) -> Vec<LaunchId> {
        self.running.iter().map(|r| r.id).collect()
    }

    fn refresh_rates(&mut self) {
        let ctxs: Vec<RunningCtx> = self.running.iter().map(|r| r.ctx.clone()).collect();
        let rates = compute_rates(&self.spec, &ctxs);
        self.speeds = rates.iter().map(|r| r.relative_speed).collect();
    }

    /// Launches a kernel; work equals its exclusive-resource runtime.
    pub fn launch(&mut self, kernel: &KernelDesc, cfg: &LaunchConfig) -> LaunchId {
        assert!(!cfg.mask.is_empty(), "kernel launched with empty TPC mask");
        let id = LaunchId(self.next_id);
        self.next_id += 1;
        let total = dnn::perf::isolated_runtime_us(kernel, &self.spec);
        self.running.push(Running {
            id,
            ctx: RunningCtx {
                kernel: kernel.clone(),
                mask: cfg.mask,
                channels: cfg.channels,
                thread_fraction: cfg.thread_fraction,
            },
            remaining: total,
            total,
            poll_us: cfg.preempt_poll_us,
            evicting: None,
        });
        self.refresh_rates();
        id
    }

    /// Writes the eviction flag for a running preemptible kernel (§7.1).
    /// The kernel observes it at its next poll and terminates; progress is
    /// discarded (reset-based preemption). Returns `false` if the kernel is
    /// not running or not preemptible.
    pub fn raise_eviction_flag(&mut self, id: LaunchId) -> bool {
        for r in &mut self.running {
            if r.id == id {
                match r.poll_us {
                    Some(poll) => {
                        if r.evicting.is_none() {
                            r.evicting = Some(self.now + poll);
                        }
                        return true;
                    }
                    None => return false,
                }
            }
        }
        false
    }

    /// Re-masks a running kernel (the engine models SGDRC's relaunch-with-
    /// new-mask as an in-place update; the relaunch latency is folded into
    /// the preemption poll delay).
    pub fn remask(&mut self, id: LaunchId, mask: TpcMask, channels: ChannelSet) -> bool {
        let mut found = false;
        for r in &mut self.running {
            if r.id == id {
                r.ctx.mask = mask;
                r.ctx.channels = channels;
                found = true;
            }
        }
        if found {
            self.refresh_rates();
        }
        found
    }

    /// Time of the next event, if any kernel is resident.
    pub fn next_event_at(&self) -> Option<f64> {
        self.running
            .iter()
            .zip(&self.speeds)
            .map(|(r, &s)| {
                let finish = self.now + r.remaining / s.max(1e-9);
                match r.evicting {
                    Some(evict) => finish.min(evict),
                    None => finish,
                }
            })
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }

    /// Advances virtual time to the next completion/preemption and returns
    /// it; `None` when the GPU is idle.
    pub fn step(&mut self) -> Option<EngineEvent> {
        let target = self.next_event_at()?;
        self.advance_to(target);
        // Find the kernel that finished or got evicted (remaining ≤ ε or
        // eviction deadline reached).
        let mut fired: Option<(usize, bool)> = None;
        for (i, r) in self.running.iter().enumerate() {
            if let Some(evict) = r.evicting {
                if evict <= self.now + 1e-9 {
                    fired = Some((i, true));
                    break;
                }
            }
            if r.remaining <= 1e-6 {
                fired = Some((i, false));
                break;
            }
        }
        let (idx, preempted) = fired.expect("an event was due");
        let r = self.running.remove(idx);
        self.refresh_rates();
        Some(if preempted {
            EngineEvent::Preempted {
                id: r.id,
                at_us: self.now,
            }
        } else {
            EngineEvent::Finished {
                id: r.id,
                at_us: self.now,
            }
        })
    }

    /// Advances time to `t` (≤ next event), integrating progress.
    fn advance_to(&mut self, t: f64) {
        let dt = t - self.now;
        debug_assert!(dt >= -1e-9, "time went backwards");
        if dt > 0.0 {
            for (r, &s) in self.running.iter_mut().zip(&self.speeds) {
                r.remaining -= dt * s;
                if r.remaining < 0.0 {
                    r.remaining = 0.0;
                }
            }
            self.now = t;
        }
    }

    /// Advances to `t` without expecting events (panics if one was due
    /// strictly before `t`). Used to model request arrivals while idle.
    pub fn advance_idle(&mut self, t: f64) {
        debug_assert!(
            self.next_event_at().is_none_or(|e| e >= t - 1e-9),
            "advance_idle skipped an engine event"
        );
        if t > self.now {
            self.advance_to(t.min(self.next_event_at().unwrap_or(t)));
            self.now = t;
        }
    }

    /// Progress fraction of a running kernel (1.0 = done), if running.
    pub fn progress(&self, id: LaunchId) -> Option<f64> {
        self.running
            .iter()
            .find(|r| r.id == id)
            .map(|r| 1.0 - r.remaining / r.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::kernel::{KernelDesc, KernelKind};
    use gpu_spec::GpuModel;

    fn kernel(flops: f64, bytes: f64) -> KernelDesc {
        KernelDesc {
            id: 1,
            name: "k".into(),
            kind: KernelKind::Gemm,
            flops,
            bytes,
            thread_blocks: 512,
            persistent_threads: true,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        }
    }

    fn engine() -> Engine {
        Engine::new(GpuModel::RtxA2000.spec())
    }

    #[test]
    fn single_kernel_runs_for_its_isolated_time() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        match e.step() {
            Some(EngineEvent::Finished { id: fid, at_us }) => {
                assert_eq!(fid, id);
                assert!((at_us - expect).abs() / expect < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.step().is_none());
    }

    #[test]
    fn two_disjoint_kernels_do_not_interfere() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        let spec = e.spec().clone();
        let a = LaunchConfig {
            mask: TpcMask::first(6),
            channels: ChannelSet::from_channels(&[0, 1, 2]),
            thread_fraction: 1.0,
            preempt_poll_us: None,
        };
        let b = LaunchConfig {
            mask: TpcMask::range(6, 6),
            channels: ChannelSet::from_channels(&[3, 4, 5]),
            thread_fraction: 1.0,
            preempt_poll_us: None,
        };
        e.launch(&k, &a);
        e.launch(&k, &b);
        let _ = spec;
        let t1 = match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => at_us,
            other => panic!("{other:?}"),
        };
        let t2 = match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => at_us,
            other => panic!("{other:?}"),
        };
        // Both limited by block parallelism (512 blocks saturate >6 TPCs),
        // so each takes longer than exclusive, but they finish together.
        assert!(t1 >= expect);
        assert!((t2 - t1) / t1 < 0.05, "symmetric kernels finish together");
    }

    #[test]
    fn sharing_slows_both_down() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let expect = dnn::perf::isolated_runtime_us(&k, e.spec());
        let cfg = LaunchConfig::exclusive(e.spec());
        e.launch(&k, &cfg);
        e.launch(&k, &cfg);
        let t = match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => at_us,
            other => panic!("{other:?}"),
        };
        // Two identical kernels on shared SMs: > 2× exclusive (compute
        // split + intra-SM interference).
        assert!(t > expect * 2.0, "{t} vs {expect}");
    }

    #[test]
    fn eviction_flag_preempts_at_poll_boundary() {
        let mut e = engine();
        let k = kernel(5e9, 1e7); // long kernel
        let cfg = LaunchConfig {
            preempt_poll_us: Some(3.0),
            ..LaunchConfig::exclusive(e.spec())
        };
        let id = e.launch(&k, &cfg);
        // Let it run a little, then evict.
        let evict_time = 50.0;
        // No event before 50µs (kernel runs for hundreds of µs).
        e.advance_idle(evict_time);
        assert!(e.raise_eviction_flag(id));
        match e.step().unwrap() {
            EngineEvent::Preempted { id: pid, at_us } => {
                assert_eq!(pid, id);
                assert!((at_us - (evict_time + 3.0)).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(e.running_count(), 0);
    }

    #[test]
    fn ls_kernels_are_not_preemptible() {
        let mut e = engine();
        let k = kernel(2e9, 1e7);
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        assert!(!e.raise_eviction_flag(id));
    }

    #[test]
    fn remask_changes_rates() {
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        let full_finish = e.next_event_at().unwrap();
        e.remask(id, TpcMask::first(2), ChannelSet::all(e.spec()));
        let masked_finish = e.next_event_at().unwrap();
        assert!(masked_finish > full_finish * 2.0);
    }

    #[test]
    fn progress_is_monotonic() {
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let id = e.launch(&k, &LaunchConfig::exclusive(e.spec()));
        let finish = e.next_event_at().unwrap();
        e.advance_idle(finish * 0.25);
        let p1 = e.progress(id).unwrap();
        e.advance_idle(finish * 0.5);
        let p2 = e.progress(id).unwrap();
        assert!(p1 > 0.2 && p1 < 0.3, "{p1}");
        assert!(p2 > p1);
    }

    #[test]
    fn work_conservation_under_preemption_and_relaunch() {
        // Preempting and relaunching a BE kernel discards progress: the
        // total occupied time exceeds one exclusive run.
        let mut e = engine();
        let k = kernel(5e9, 1e7);
        let exclusive = dnn::perf::isolated_runtime_us(&k, e.spec());
        let cfg = LaunchConfig {
            preempt_poll_us: Some(2.0),
            ..LaunchConfig::exclusive(e.spec())
        };
        let id = e.launch(&k, &cfg);
        e.advance_idle(exclusive * 0.6);
        e.raise_eviction_flag(id);
        match e.step().unwrap() {
            EngineEvent::Preempted { .. } => {}
            other => panic!("{other:?}"),
        }
        // Relaunch from scratch.
        let t_relaunch = e.now();
        e.launch(&k, &cfg);
        match e.step().unwrap() {
            EngineEvent::Finished { at_us, .. } => {
                assert!((at_us - t_relaunch - exclusive).abs() / exclusive < 1e-6);
                assert!(at_us > exclusive * 1.5, "progress was discarded");
            }
            other => panic!("{other:?}"),
        }
    }
}
