//! The contention model: execution rates of concurrently running kernels.
//!
//! Reproduces the resource-conflict behaviour the paper characterizes:
//!
//! * **Intra-SM conflicts** (Fig. 3a): kernels whose TPC masks overlap slow
//!   each other down; L1-thrashing co-runners hurt more than compute
//!   co-runners.
//! * **Inter-SM / VRAM channel conflicts** (Fig. 3b): kernels whose channel
//!   sets overlap contend for per-channel bandwidth, L2 slices, MSHRs and
//!   DRAM banks; an overlapping thrasher inflates a victim's memory time
//!   even when bandwidth is nominally sufficient.
//! * **MPS thread-level partitioning**: thread fractions scale compute
//!   throughput but do *not* remove intra-SM or channel conflicts (§2.2,
//!   §9.3).
//!
//! The engine integrates kernel progress with piecewise-constant rates:
//! whenever the running set changes, [`compute_rates`] re-evaluates every
//! kernel's instantaneous duration and thus its rate.

use crate::types::{ChannelSet, TpcMask};
use dnn::kernel::KernelDesc;
use dnn::perf::{self, ResourceCtx};
use gpu_spec::GpuSpec;

/// A kernel as the contention model sees it.
#[derive(Debug, Clone)]
pub struct RunningCtx {
    pub kernel: KernelDesc,
    pub mask: TpcMask,
    pub channels: ChannelSet,
    /// MPS active-thread fraction (1.0 = full SMs).
    pub thread_fraction: f64,
}

impl RunningCtx {
    /// DRAM bandwidth demand at full resources, GB/s.
    fn bw_demand_gbps(&self, spec: &GpuSpec) -> f64 {
        let body = perf::memory_time_us(&self.kernel, spec)
            .max(perf::compute_time_us(&self.kernel, spec))
            .max(1e-9);
        self.kernel.bytes / (body * 1e-6) / 1e9
    }

    /// How aggressively this kernel thrashes shared L2/MSHR resources
    /// (0..1): its bandwidth demand relative to the whole GPU.
    fn thrash_intensity(&self, spec: &GpuSpec) -> f64 {
        (self.bw_demand_gbps(spec) / spec.mem_bandwidth_gbps).min(1.0)
    }
}

/// Per-kernel instantaneous execution state.
#[derive(Debug, Clone, Copy)]
pub struct KernelRate {
    /// Wall-clock duration the kernel would need under current conditions
    /// (µs, including launch overhead).
    pub duration_us: f64,
    /// Progress per wall-µs, in units of "intrinsic work" where the
    /// kernel's total work is its current-conditions duration at rate 1.
    /// Defined as `exclusive_duration / current_duration`.
    pub relative_speed: f64,
}

/// Computes each running kernel's instantaneous duration and speed.
pub fn compute_rates(spec: &GpuSpec, running: &[RunningCtx]) -> Vec<KernelRate> {
    let cp = &spec.contention;
    let mut out = Vec::with_capacity(running.len());

    // Per-channel aggregate bandwidth demand (GB/s).
    let mut channel_demand = vec![0.0f64; spec.num_channels as usize];
    for r in running {
        let per_channel = r.bw_demand_gbps(spec) / r.channels.count().max(1) as f64;
        for c in 0..spec.num_channels {
            if r.channels.0 & (1 << c) != 0 {
                channel_demand[c as usize] += per_channel;
            }
        }
    }
    let channel_cap = spec.channel_bandwidth_gbps();

    // Per-TPC occupancy: the sum of thread fractions resident on each TPC.
    // Overlapping kernels split a TPC's compute throughput fairly; a lone
    // MPS client is still capped by its thread fraction.
    let mut tpc_occupancy = vec![0.0f64; spec.num_tpcs as usize];
    for r in running {
        for t in 0..spec.num_tpcs {
            if r.mask.0 & (1 << t) != 0 {
                tpc_occupancy[t as usize] += r.thread_fraction;
            }
        }
    }

    for (i, r) in running.iter().enumerate() {
        // ---- intra-SM interference (Fig. 3a) --------------------------
        let mut intra = 1.0;
        for (j, o) in running.iter().enumerate() {
            if i == j || !r.mask.overlaps(o.mask) {
                continue;
            }
            let overlap_frac =
                r.mask.intersect(o.mask).count() as f64 / r.mask.count().max(1) as f64;
            // L1-heavy co-runners interfere more than compute co-runners.
            let l1ness = o.kernel.memory_instr_share();
            let per_kernel = cp.intra_sm_compute + (cp.intra_sm_l1 - cp.intra_sm_compute) * l1ness;
            intra += per_kernel * overlap_frac * o.thread_fraction;
        }

        // ---- VRAM bandwidth share + inter-SM conflicts (Fig. 3b) ------
        let demand = r.bw_demand_gbps(spec);
        let per_channel_demand = demand / r.channels.count().max(1) as f64;
        let mut granted = 0.0;
        for c in 0..spec.num_channels as usize {
            if r.channels.0 & (1 << c) == 0 {
                continue;
            }
            let d = channel_demand[c];
            granted += if d <= channel_cap {
                per_channel_demand
            } else {
                per_channel_demand * channel_cap / d
            };
        }
        // Fraction of the kernel's demand it actually receives. A
        // restricted channel set is captured naturally: the demand
        // concentrates on fewer channels, whose caps bind sooner.
        let bw_share = if demand > 0.0 {
            (granted / demand).clamp(1e-6, 1.0)
        } else {
            1.0
        };

        // L2/MSHR/bank conflict penalty from overlapping channel sets.
        let mut l2_penalty = 1.0;
        for (j, o) in running.iter().enumerate() {
            if i == j {
                continue;
            }
            let shared = r.channels.overlap(o.channels) as f64;
            if shared == 0.0 {
                continue;
            }
            let frac = shared / r.channels.count().max(1) as f64;
            l2_penalty +=
                (cp.l2_overlap_penalty + cp.bank_serialization) * frac * o.thrash_intensity(spec);
        }

        // ---- roofline under current conditions ------------------------
        // Effective TPCs: fair share of every TPC in the mask.
        let mut eff_tpcs = 0.0;
        for t in 0..spec.num_tpcs as usize {
            if r.mask.0 & (1 << t) != 0 {
                eff_tpcs += r.thread_fraction / tpc_occupancy[t].max(1.0);
            }
        }
        let eff_bw_share = bw_share / l2_penalty;
        let ctx = ResourceCtx {
            tpcs: eff_tpcs.max(0.05),
            bw_share: eff_bw_share.clamp(1e-6, 1.0),
            intra_sm_factor: intra,
        };
        let duration = perf::runtime_us(&r.kernel, spec, ctx);
        let exclusive = perf::isolated_runtime_us(&r.kernel, spec);
        out.push(KernelRate {
            duration_us: duration,
            relative_speed: exclusive / duration.max(1e-9),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::kernel::{KernelDesc, KernelKind};
    use gpu_spec::GpuModel;

    fn kernel(kind: KernelKind, flops: f64, bytes: f64) -> KernelDesc {
        KernelDesc {
            id: 7,
            name: "k".into(),
            kind,
            flops,
            bytes,
            thread_blocks: 256,
            persistent_threads: true,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        }
    }

    fn victim(spec: &GpuSpec) -> RunningCtx {
        RunningCtx {
            kernel: kernel(KernelKind::Gemm, 2e9, 1e7),
            mask: TpcMask::first(spec.num_tpcs / 2),
            channels: ChannelSet::all(spec),
            thread_fraction: 1.0,
        }
    }

    fn thrasher(spec: &GpuSpec, mask: TpcMask, channels: ChannelSet) -> RunningCtx {
        RunningCtx {
            kernel: kernel(KernelKind::Elementwise, 1e7, 3e8),
            mask,
            channels,
            thread_fraction: 1.0,
        }
    }

    #[test]
    fn alone_matches_isolated_runtime() {
        let spec = GpuModel::RtxA2000.spec();
        let v = RunningCtx {
            kernel: kernel(KernelKind::Gemm, 2e9, 1e7),
            mask: TpcMask::all(&spec),
            channels: ChannelSet::all(&spec),
            thread_fraction: 1.0,
        };
        let rates = compute_rates(&spec, &[v.clone()]);
        let isolated = perf::isolated_runtime_us(&v.kernel, &spec);
        assert!((rates[0].duration_us - isolated).abs() / isolated < 1e-6);
        assert!((rates[0].relative_speed - 1.0).abs() < 1e-6);
    }

    #[test]
    fn intra_sm_interference_grows_with_co_runners() {
        // Fig. 3a: victim latency grows with the number of interferers on
        // shared SMs, and L1 thrashers hurt more than compute kernels.
        let spec = GpuModel::RtxA2000.spec();
        let mask = TpcMask::first(spec.num_tpcs);
        let v = RunningCtx { mask, ..victim(&spec) };
        let comp = RunningCtx {
            kernel: kernel(KernelKind::Gemm, 2e9, 1e6),
            mask,
            channels: ChannelSet::all(&spec),
            thread_fraction: 1.0,
        };
        let l1 = RunningCtx {
            kernel: kernel(KernelKind::Elementwise, 1e8, 2e7),
            mask,
            channels: ChannelSet::all(&spec),
            thread_fraction: 1.0,
        };
        let alone = compute_rates(&spec, &[v.clone()])[0].duration_us;
        let with1 = compute_rates(&spec, &[v.clone(), comp.clone()])[0].duration_us;
        let with2 = compute_rates(&spec, &[v.clone(), comp.clone(), comp.clone()])[0].duration_us;
        let with_l1 = compute_rates(&spec, &[v.clone(), l1])[0].duration_us;
        assert!(with1 > alone * 1.15, "{with1} vs {alone}");
        assert!(with2 > with1 * 1.1);
        assert!(with_l1 > with1, "L1 interference must exceed compute");
    }

    #[test]
    fn disjoint_masks_remove_intra_sm_interference() {
        let spec = GpuModel::RtxA2000.spec();
        let v = RunningCtx {
            mask: TpcMask::first(6),
            channels: ChannelSet::from_channels(&[2, 3, 4, 5]),
            ..victim(&spec)
        };
        let other = RunningCtx {
            kernel: kernel(KernelKind::Gemm, 2e9, 1e6),
            mask: TpcMask::range(6, 7),
            channels: ChannelSet::from_channels(&[0, 1]),
            thread_fraction: 1.0,
        };
        let alone = compute_rates(&spec, &[v.clone()])[0].duration_us;
        let together = compute_rates(&spec, &[v, other])[0].duration_us;
        assert!(
            (together - alone).abs() / alone < 0.02,
            "full partitioning ⇒ no interference ({together} vs {alone})"
        );
    }

    #[test]
    fn channel_overlap_slows_memory_bound_victims() {
        // Fig. 3b: with disjoint SMs (MPS-style), a VRAM thrasher still
        // hurts a victim whose channels overlap.
        let spec = GpuModel::RtxA2000.spec();
        let v = RunningCtx {
            kernel: kernel(KernelKind::Elementwise, 1e7, 1e8),
            mask: TpcMask::first(6),
            channels: ChannelSet::all(&spec),
            thread_fraction: 1.0,
        };
        let t = thrasher(&spec, TpcMask::range(6, 7), ChannelSet::all(&spec));
        let alone = compute_rates(&spec, &[v.clone()])[0].duration_us;
        let together = compute_rates(&spec, &[v.clone(), t.clone()])[0].duration_us;
        assert!(together > alone * 1.3, "{together} vs {alone}");

        // Channel isolation removes most of the slowdown (Fig. 15a).
        let v_iso = RunningCtx {
            channels: ChannelSet::from_channels(&[2, 3, 4, 5]),
            ..v
        };
        let t_iso = thrasher(&spec, TpcMask::range(6, 7), ChannelSet::from_channels(&[0, 1]));
        let isolated_together = compute_rates(&spec, &[v_iso.clone(), t_iso])[0].duration_us;
        let isolated_alone = compute_rates(&spec, &[v_iso])[0].duration_us;
        let interference = together / alone;
        let iso_interference = isolated_together / isolated_alone;
        assert!(
            iso_interference < 1.0 + (interference - 1.0) * 0.35,
            "isolation must remove most interference: {iso_interference} vs {interference}"
        );
    }

    #[test]
    fn restricted_channel_set_caps_bandwidth() {
        let spec = GpuModel::RtxA2000.spec();
        let v = RunningCtx {
            kernel: kernel(KernelKind::Elementwise, 1e7, 2e8),
            mask: TpcMask::all(&spec),
            channels: ChannelSet::from_channels(&[0, 1]),
            thread_fraction: 1.0,
        };
        let full = RunningCtx {
            channels: ChannelSet::all(&spec),
            ..v.clone()
        };
        let restricted = compute_rates(&spec, &[v])[0].duration_us;
        let unrestricted = compute_rates(&spec, &[full])[0].duration_us;
        let ratio = restricted / unrestricted;
        assert!(
            (2.2..4.0).contains(&ratio),
            "1/3 of channels ⇒ ~3× memory time ({ratio})"
        );
    }

    #[test]
    fn mps_thread_fraction_scales_compute() {
        let spec = GpuModel::RtxA2000.spec();
        let mut v = victim(&spec);
        v.mask = TpcMask::all(&spec);
        let full = compute_rates(&spec, &[v.clone()])[0].duration_us;
        v.thread_fraction = 0.5;
        let half = compute_rates(&spec, &[v])[0].duration_us;
        assert!(half > full * 1.6, "{half} vs {full}");
    }
}
