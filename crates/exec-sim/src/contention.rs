//! The contention model: execution rates of concurrently running kernels.
//!
//! Reproduces the resource-conflict behaviour the paper characterizes:
//!
//! * **Intra-SM conflicts** (Fig. 3a): kernels whose TPC masks overlap slow
//!   each other down; L1-thrashing co-runners hurt more than compute
//!   co-runners.
//! * **Inter-SM / VRAM channel conflicts** (Fig. 3b): kernels whose channel
//!   sets overlap contend for per-channel bandwidth, L2 slices, MSHRs and
//!   DRAM banks; an overlapping thrasher inflates a victim's memory time
//!   even when bandwidth is nominally sufficient.
//! * **MPS thread-level partitioning**: thread fractions scale compute
//!   throughput but do *not* remove intra-SM or channel conflicts (§2.2,
//!   §9.3).
//!
//! The engine integrates kernel progress with piecewise-constant rates:
//! whenever the running set changes, every kernel's instantaneous duration
//! is re-evaluated.
//!
//! ## Hot-path design
//!
//! Rate evaluation runs on every launch/finish/remask event, so the
//! implementation is allocation-free and re-derives nothing:
//!
//! * each [`RunningCtx`] carries an `Arc`'d descriptor plus a
//!   [`KernelPerfInvariants`] block precomputed at construction — the
//!   model never touches `perf::` derivations or clones a descriptor;
//! * aggregates (per-channel demand, per-TPC occupancy) live in
//!   fixed-size arrays inside a caller-owned [`RateState`], and mask
//!   walks iterate set bits only (`trailing_zeros`), never all slots;
//! * when a single kernel is re-masked, [`RateState::update_one`]
//!   adjusts the aggregates and pairwise sums incrementally instead of
//!   recomputing the O(n²) interference terms from scratch.
//!
//! The original straight-line evaluation survives in [`reference`]: it is
//! the oracle for equivalence tests/assertions and the "before" arm of
//! the `BENCH_exec_sim` harness.

use crate::types::{ChannelSet, TpcMask};
use dnn::kernel::KernelDesc;
use dnn::perf::{KernelPerfInvariants, ResourceCtx};
use gpu_spec::GpuSpec;
use std::sync::Arc;

/// Upper bound on `GpuSpec::num_tpcs` ([`TpcMask`] is a `u32`).
pub const MAX_TPCS: usize = 32;
/// Upper bound on `GpuSpec::num_channels` ([`ChannelSet`] is a `u16`).
pub const MAX_CHANNELS: usize = 16;

/// A kernel as the contention model sees it.
#[derive(Debug, Clone)]
pub struct RunningCtx {
    pub kernel: Arc<KernelDesc>,
    pub mask: TpcMask,
    pub channels: ChannelSet,
    /// MPS active-thread fraction (1.0 = full SMs).
    pub thread_fraction: f64,
    /// Per-kernel invariants precomputed at construction.
    pub perf: KernelPerfInvariants,
}

impl RunningCtx {
    /// Builds a running-kernel context, precomputing the per-kernel
    /// invariant block once. Accepts an owned descriptor or an existing
    /// `Arc` (no deep copy in the latter case).
    pub fn new(
        spec: &GpuSpec,
        kernel: impl Into<Arc<KernelDesc>>,
        mask: TpcMask,
        channels: ChannelSet,
        thread_fraction: f64,
    ) -> Self {
        let kernel = kernel.into();
        let perf = KernelPerfInvariants::new(&kernel, spec);
        Self {
            kernel,
            mask,
            channels,
            thread_fraction,
            perf,
        }
    }

    /// Builds the context from an already-prepared kernel: no descriptor
    /// copy, no invariant derivation — the per-launch cost is two `Arc`
    /// bumps. This is the serving loop's steady-state path.
    pub fn from_prepared(
        prepared: &PreparedKernel,
        mask: TpcMask,
        channels: ChannelSet,
        thread_fraction: f64,
    ) -> Self {
        Self {
            kernel: Arc::clone(&prepared.desc),
            mask,
            channels,
            thread_fraction,
            perf: prepared.perf,
        }
    }

    /// DRAM bandwidth demand at full resources, GB/s.
    pub fn bw_demand_gbps(&self) -> f64 {
        self.perf.bw_demand_gbps
    }

    /// How aggressively this kernel thrashes shared L2/MSHR resources
    /// (0..1): its bandwidth demand relative to the whole GPU.
    pub fn thrash_intensity(&self) -> f64 {
        self.perf.thrash_intensity
    }
}

/// A kernel descriptor bundled with its precomputed performance
/// invariants for one GPU — ready to launch over and over with zero
/// per-launch derivation. Deployments prepare every model kernel once.
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    pub desc: Arc<KernelDesc>,
    pub perf: KernelPerfInvariants,
}

impl PreparedKernel {
    pub fn new(spec: &GpuSpec, kernel: impl Into<Arc<KernelDesc>>) -> Self {
        let desc = kernel.into();
        let perf = KernelPerfInvariants::new(&desc, spec);
        Self { desc, perf }
    }
}

/// Per-kernel instantaneous execution state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRate {
    /// Wall-clock duration the kernel would need under current conditions
    /// (µs, including launch overhead).
    pub duration_us: f64,
    /// Progress per wall-µs, in units of "intrinsic work" where the
    /// kernel's total work is its current-conditions duration at rate 1.
    /// Defined as `exclusive_duration / current_duration`.
    pub relative_speed: f64,
}

/// Caller-owned rate-computation state: fixed-size resource aggregates
/// plus per-kernel pairwise interference sums. Reusing one `RateState`
/// across events makes rate evaluation allocation-free (the `Vec`s reach
/// steady-state capacity after the first few events) and enables the
/// incremental [`update_one`](RateState::update_one) path.
#[derive(Debug, Clone, Default)]
pub struct RateState {
    /// Aggregate bandwidth demand per VRAM channel, GB/s.
    channel_demand: [f64; MAX_CHANNELS],
    /// Sum of resident thread fractions per TPC.
    tpc_occupancy: [f64; MAX_TPCS],
    /// Σ of intra-SM interference terms against each kernel
    /// (`intra_sm_factor = 1 + intra_sum`).
    intra_sum: Vec<f64>,
    /// Σ of L2/MSHR/bank conflict terms against each kernel
    /// (`l2_penalty = 1 + l2_sum`).
    l2_sum: Vec<f64>,
    /// Number of co-runners whose TPC mask *partially* overlaps each
    /// kernel's (neither disjoint nor a superset). While zero, the
    /// kernel's occupancy is uniform across its mask and
    /// [`emit_rates`](RateState::emit_rates) replaces the per-TPC loop
    /// with a popcount — the steady state for tidal partitioning
    /// (disjoint masks) and full-GPU sharing (mutual supersets) alike.
    tpc_partial: Vec<u32>,
    /// Summed thread fraction of co-runners whose mask covers this
    /// kernel's entirely (valid while `tpc_partial` is 0).
    tpc_cover_fraction: Vec<f64>,
    /// As `tpc_partial`, for VRAM channel sets.
    chan_partial: Vec<u32>,
    /// Summed per-channel bandwidth demand of co-runners whose channel
    /// set covers this kernel's entirely (valid while `chan_partial`
    /// is 0).
    chan_cover_demand: Vec<f64>,
}

/// Bandwidth demand a kernel places on each channel of its set, GB/s.
#[inline]
fn per_channel_demand(r: &RunningCtx) -> f64 {
    r.perf.bw_demand_gbps / r.channels.count().max(1) as f64
}

/// Intra-SM interference inflicted *on* `victim` *by* `other` (Fig. 3a).
#[inline]
fn intra_term(spec: &GpuSpec, victim: &RunningCtx, other: &RunningCtx) -> f64 {
    if !victim.mask.overlaps(other.mask) {
        return 0.0;
    }
    let cp = &spec.contention;
    let overlap_frac =
        victim.mask.intersect(other.mask).count() as f64 / victim.mask.count().max(1) as f64;
    // L1-heavy co-runners interfere more than compute co-runners.
    let l1ness = other.perf.memory_instr_share;
    let per_kernel = cp.intra_sm_compute + (cp.intra_sm_l1 - cp.intra_sm_compute) * l1ness;
    per_kernel * overlap_frac * other.thread_fraction
}

/// L2/MSHR/bank conflict penalty inflicted *on* `victim` *by* `other`
/// through overlapping channel sets (Fig. 3b).
#[inline]
fn l2_term(spec: &GpuSpec, victim: &RunningCtx, other: &RunningCtx) -> f64 {
    let shared = victim.channels.overlap(other.channels) as f64;
    if shared == 0.0 {
        return 0.0;
    }
    let cp = &spec.contention;
    let frac = shared / victim.channels.count().max(1) as f64;
    (cp.l2_overlap_penalty + cp.bank_serialization) * frac * other.perf.thrash_intensity
}

impl RateState {
    /// Returns the state to its post-construction condition while
    /// retaining every buffer's capacity — the reusable-`SimContext`
    /// path resets one `RateState` per sweep cell instead of allocating
    /// six fresh vectors.
    pub fn reset(&mut self) {
        self.channel_demand = [0.0; MAX_CHANNELS];
        self.tpc_occupancy = [0.0; MAX_TPCS];
        self.intra_sum.clear();
        self.l2_sum.clear();
        self.tpc_partial.clear();
        self.tpc_cover_fraction.clear();
        self.chan_partial.clear();
        self.chan_cover_demand.clear();
    }

    /// Full recomputation of aggregates, pairwise sums and rates.
    /// Appends one [`KernelRate`] per running kernel to `out` (cleared
    /// first); no allocation once `out` and the sums reach capacity.
    pub fn recompute_full(
        &mut self,
        spec: &GpuSpec,
        running: &[RunningCtx],
        out: &mut Vec<KernelRate>,
    ) {
        self.channel_demand = [0.0; MAX_CHANNELS];
        self.tpc_occupancy = [0.0; MAX_TPCS];
        for r in running {
            self.add_aggregates(r);
        }
        self.intra_sum.clear();
        self.intra_sum.resize(running.len(), 0.0);
        self.l2_sum.clear();
        self.l2_sum.resize(running.len(), 0.0);
        self.tpc_partial.clear();
        self.tpc_partial.resize(running.len(), 0);
        self.tpc_cover_fraction.clear();
        self.tpc_cover_fraction.resize(running.len(), 0.0);
        self.chan_partial.clear();
        self.chan_partial.resize(running.len(), 0);
        self.chan_cover_demand.clear();
        self.chan_cover_demand.resize(running.len(), 0.0);
        for (i, r) in running.iter().enumerate() {
            let mut intra = 0.0;
            let mut l2 = 0.0;
            for (j, o) in running.iter().enumerate() {
                if i != j {
                    intra += intra_term(spec, r, o);
                    l2 += l2_term(spec, r, o);
                    self.classify_pair(i, r, o, 1.0);
                }
            }
            self.intra_sum[i] = intra;
            self.l2_sum[i] = l2;
        }
        self.emit_rates(spec, running, out);
    }

    /// Adds (`sign = 1.0`) or retracts (`sign = -1.0`) the uniformity
    /// classification of co-runner `other` from victim `i`'s entries.
    #[inline]
    fn classify_pair(&mut self, i: usize, victim: &RunningCtx, other: &RunningCtx, sign: f64) {
        let inter = victim.mask.0 & other.mask.0;
        if inter != 0 {
            if inter == victim.mask.0 {
                self.tpc_cover_fraction[i] += sign * other.thread_fraction;
            } else if sign > 0.0 {
                self.tpc_partial[i] += 1;
            } else {
                self.tpc_partial[i] -= 1;
            }
        }
        let cinter = victim.channels.0 & other.channels.0;
        if cinter != 0 {
            if cinter == victim.channels.0 {
                self.chan_cover_demand[i] += sign * per_channel_demand(other);
            } else if sign > 0.0 {
                self.chan_partial[i] += 1;
            } else {
                self.chan_partial[i] -= 1;
            }
        }
    }

    /// Incremental update after kernel `i` changed its TPC mask and/or
    /// channel set in place (everything else — the running set, every
    /// descriptor, every thread fraction — unchanged). Adjusts the
    /// aggregates and the pairwise sums by delta instead of re-walking
    /// all O(n²) kernel pairs, then re-emits the rates.
    ///
    /// `running[i]` must already hold the *new* mask/channels;
    /// `old_mask`/`old_channels` are the values being replaced.
    pub fn update_one(
        &mut self,
        spec: &GpuSpec,
        running: &[RunningCtx],
        i: usize,
        old_mask: TpcMask,
        old_channels: ChannelSet,
        out: &mut Vec<KernelRate>,
    ) {
        debug_assert_eq!(
            self.intra_sum.len(),
            running.len(),
            "state tracks this running set"
        );
        let changed = &running[i];
        // Resource aggregates: retract the old contribution, add the new.
        let old = RunningCtx {
            mask: old_mask,
            channels: old_channels,
            ..changed.clone()
        };
        self.remove_aggregates(&old);
        self.add_aggregates(changed);
        // Pairwise sums: only terms involving kernel `i` change. Kernel
        // `i`'s own classification is rebuilt from scratch (its mask /
        // channel set — the victim side of every comparison — changed).
        self.tpc_partial[i] = 0;
        self.tpc_cover_fraction[i] = 0.0;
        self.chan_partial[i] = 0;
        self.chan_cover_demand[i] = 0.0;
        let mut intra_i = 0.0;
        let mut l2_i = 0.0;
        for (j, o) in running.iter().enumerate() {
            if j == i {
                continue;
            }
            self.intra_sum[j] += intra_term(spec, o, changed) - intra_term(spec, o, &old);
            self.l2_sum[j] += l2_term(spec, o, changed) - l2_term(spec, o, &old);
            intra_i += intra_term(spec, changed, o);
            l2_i += l2_term(spec, changed, o);
            self.classify_pair(j, o, &old, -1.0);
            self.classify_pair(j, o, changed, 1.0);
            self.classify_pair(i, changed, o, 1.0);
        }
        self.intra_sum[i] = intra_i;
        self.l2_sum[i] = l2_i;
        self.emit_rates(spec, running, out);
    }

    /// Incremental update after a kernel was appended to the running set
    /// (`running` already ends with it): adds its aggregates and the
    /// pairwise terms it exchanges with every incumbent — O(n) instead
    /// of the full O(n²) rebuild. Rates are *not* re-emitted; call
    /// [`RateState::emit_rates`] when they're next read.
    pub fn add_last(&mut self, spec: &GpuSpec, running: &[RunningCtx]) {
        debug_assert_eq!(
            self.intra_sum.len() + 1,
            running.len(),
            "state tracks the pre-launch running set"
        );
        let i = running.len() - 1;
        let new = &running[i];
        self.add_aggregates(new);
        self.tpc_partial.push(0);
        self.tpc_cover_fraction.push(0.0);
        self.chan_partial.push(0);
        self.chan_cover_demand.push(0.0);
        let mut intra_i = 0.0;
        let mut l2_i = 0.0;
        for (j, o) in running[..i].iter().enumerate() {
            self.intra_sum[j] += intra_term(spec, o, new);
            self.l2_sum[j] += l2_term(spec, o, new);
            intra_i += intra_term(spec, new, o);
            l2_i += l2_term(spec, new, o);
            self.classify_pair(j, o, new, 1.0);
            self.classify_pair(i, new, o, 1.0);
        }
        self.intra_sum.push(intra_i);
        self.l2_sum.push(l2_i);
    }

    /// Incremental update after the kernel previously at `idx` left the
    /// running set (`running` no longer contains it; order of the rest
    /// preserved): retracts its aggregates and pairwise terms. Rates are
    /// *not* re-emitted; call [`RateState::emit_rates`] when read.
    pub fn remove_at(
        &mut self,
        spec: &GpuSpec,
        running: &[RunningCtx],
        idx: usize,
        removed: &RunningCtx,
    ) {
        debug_assert_eq!(
            self.intra_sum.len(),
            running.len() + 1,
            "state tracks the pre-removal running set"
        );
        self.remove_aggregates(removed);
        self.intra_sum.remove(idx);
        self.l2_sum.remove(idx);
        self.tpc_partial.remove(idx);
        self.tpc_cover_fraction.remove(idx);
        self.chan_partial.remove(idx);
        self.chan_cover_demand.remove(idx);
        for (j, o) in running.iter().enumerate() {
            self.intra_sum[j] -= intra_term(spec, o, removed);
            self.l2_sum[j] -= l2_term(spec, o, removed);
            self.classify_pair(j, o, removed, -1.0);
        }
    }

    #[inline]
    fn add_aggregates(&mut self, r: &RunningCtx) {
        // Shares the exact expression with `classify_pair`'s cover
        // bookkeeping: the incremental retraction must cancel what the
        // aggregates accumulated, bit for bit.
        let per_channel = per_channel_demand(r);
        for c in r.channels.iter_ones() {
            self.channel_demand[c as usize] += per_channel;
        }
        for t in r.mask.iter_ones() {
            self.tpc_occupancy[t as usize] += r.thread_fraction;
        }
    }

    #[inline]
    fn remove_aggregates(&mut self, r: &RunningCtx) {
        let per_channel = per_channel_demand(r);
        for c in r.channels.iter_ones() {
            self.channel_demand[c as usize] -= per_channel;
        }
        for t in r.mask.iter_ones() {
            self.tpc_occupancy[t as usize] -= r.thread_fraction;
        }
    }

    /// Evaluates every kernel's rate from the current aggregates/sums.
    pub fn emit_rates(&self, spec: &GpuSpec, running: &[RunningCtx], out: &mut Vec<KernelRate>) {
        out.clear();
        let channel_cap = spec.channel_bandwidth_gbps();
        for (i, r) in running.iter().enumerate() {
            // ---- VRAM bandwidth share (Fig. 3b) -----------------------
            // Fraction of the kernel's demand it actually receives. A
            // restricted channel set is captured naturally: the demand
            // concentrates on fewer channels, whose caps bind sooner.
            // When no co-runner's channel set partially overlaps, every
            // channel of the set carries the same aggregate demand and
            // the per-channel walk collapses to one comparison.
            let demand = r.perf.bw_demand_gbps;
            let pcd = per_channel_demand(r);
            let bw_share = if demand <= 0.0 {
                1.0
            } else if r.channels.is_empty() {
                // No channels granted at all: the per-channel walk sums
                // zero, so the demand-starved floor applies (kept out of
                // the uniform fast path, which would otherwise see "no
                // partial overlap" and report full bandwidth).
                1e-6
            } else if self.chan_partial[i] == 0 {
                let d = pcd + self.chan_cover_demand[i];
                if d <= channel_cap {
                    1.0
                } else {
                    (channel_cap / d).clamp(1e-6, 1.0)
                }
            } else {
                let mut granted = 0.0;
                for c in r.channels.iter_ones() {
                    let d = self.channel_demand[c as usize];
                    granted += if d <= channel_cap {
                        pcd
                    } else {
                        pcd * channel_cap / d
                    };
                }
                (granted * r.perf.inv_bw_demand_gbps).clamp(1e-6, 1.0)
            };
            let l2_penalty = 1.0 + self.l2_sum[i];
            let intra = 1.0 + self.intra_sum[i];

            // ---- roofline under current conditions --------------------
            // Effective TPCs: fair share of every TPC in the mask. With
            // no partial mask overlap the occupancy is uniform (own
            // fraction + covering co-runners) and the per-TPC walk is a
            // popcount; inside the walk an uncontended TPC (occupancy
            // ≤ 1) contributes the thread fraction directly.
            let eff_tpcs = if self.tpc_partial[i] == 0 {
                let occupancy = r.thread_fraction + self.tpc_cover_fraction[i];
                let share = if occupancy <= 1.0 {
                    r.thread_fraction
                } else {
                    r.thread_fraction / occupancy
                };
                share * r.mask.count() as f64
            } else {
                let mut eff = 0.0;
                for t in r.mask.iter_ones() {
                    let occupancy = self.tpc_occupancy[t as usize];
                    eff += if occupancy <= 1.0 {
                        r.thread_fraction
                    } else {
                        r.thread_fraction / occupancy
                    };
                }
                eff
            };
            let eff_bw_share = bw_share / l2_penalty;
            let ctx = ResourceCtx {
                tpcs: eff_tpcs.max(0.05),
                bw_share: eff_bw_share.clamp(1e-6, 1.0),
                intra_sm_factor: intra,
            };
            let duration = r.perf.runtime_us(ctx);
            out.push(KernelRate {
                duration_us: duration,
                relative_speed: r.perf.isolated_us / duration.max(1e-9),
            });
        }
    }
}

/// Computes each running kernel's instantaneous duration and speed.
///
/// Convenience wrapper that allocates a fresh [`RateState`] and output
/// vector; event loops should own both and call
/// [`RateState::recompute_full`] / [`RateState::update_one`] directly.
pub fn compute_rates(spec: &GpuSpec, running: &[RunningCtx]) -> Vec<KernelRate> {
    let mut state = RateState::default();
    let mut out = Vec::with_capacity(running.len());
    state.recompute_full(spec, running, &mut out);
    out
}

pub mod reference {
    //! The pre-optimization contention model, preserved verbatim.
    //!
    //! This is the seed implementation: per-call `Vec` aggregates,
    //! per-bit loops over every TPC/channel slot, and full `perf::`
    //! re-derivation from the (deep-cloned) kernel descriptor. It serves
    //! two purposes: the *oracle* that the optimized [`RateState`] paths
    //! are asserted against (debug assertions + property tests), and the
    //! honest "before" arm of the `BENCH_exec_sim` speedup measurement.

    use super::KernelRate;
    use crate::types::{ChannelSet, TpcMask};
    use dnn::kernel::KernelDesc;
    use dnn::perf::{self, ResourceCtx};
    use gpu_spec::GpuSpec;

    /// A running kernel with an owned (deep-cloned) descriptor, exactly
    /// as the seed engine carried it.
    #[derive(Debug, Clone)]
    pub struct Ctx {
        pub kernel: KernelDesc,
        pub mask: TpcMask,
        pub channels: ChannelSet,
        pub thread_fraction: f64,
    }

    impl Ctx {
        /// Deep-copies the shared context into the seed representation.
        pub fn from_running(r: &super::RunningCtx) -> Self {
            Self {
                kernel: (*r.kernel).clone(),
                mask: r.mask,
                channels: r.channels,
                thread_fraction: r.thread_fraction,
            }
        }

        fn bw_demand_gbps(&self, spec: &GpuSpec) -> f64 {
            let body = perf::memory_time_us(&self.kernel, spec)
                .max(perf::compute_time_us(&self.kernel, spec))
                .max(1e-9);
            self.kernel.bytes / (body * 1e-6) / 1e9
        }

        fn thrash_intensity(&self, spec: &GpuSpec) -> f64 {
            (self.bw_demand_gbps(spec) / spec.mem_bandwidth_gbps).min(1.0)
        }
    }

    /// The seed `compute_rates`, operation for operation.
    #[allow(clippy::needless_range_loop)] // seed-verbatim on purpose
    pub fn compute_rates(spec: &GpuSpec, running: &[Ctx]) -> Vec<KernelRate> {
        let cp = &spec.contention;
        let mut out = Vec::with_capacity(running.len());

        let mut channel_demand = vec![0.0f64; spec.num_channels as usize];
        for r in running {
            let per_channel = r.bw_demand_gbps(spec) / r.channels.count().max(1) as f64;
            for c in 0..spec.num_channels {
                if r.channels.0 & (1 << c) != 0 {
                    channel_demand[c as usize] += per_channel;
                }
            }
        }
        let channel_cap = spec.channel_bandwidth_gbps();

        let mut tpc_occupancy = vec![0.0f64; spec.num_tpcs as usize];
        for r in running {
            for t in 0..spec.num_tpcs {
                if r.mask.0 & (1 << t) != 0 {
                    tpc_occupancy[t as usize] += r.thread_fraction;
                }
            }
        }

        for (i, r) in running.iter().enumerate() {
            let mut intra = 1.0;
            for (j, o) in running.iter().enumerate() {
                if i == j || !r.mask.overlaps(o.mask) {
                    continue;
                }
                let overlap_frac =
                    r.mask.intersect(o.mask).count() as f64 / r.mask.count().max(1) as f64;
                let l1ness = o.kernel.memory_instr_share();
                let per_kernel =
                    cp.intra_sm_compute + (cp.intra_sm_l1 - cp.intra_sm_compute) * l1ness;
                intra += per_kernel * overlap_frac * o.thread_fraction;
            }

            let demand = r.bw_demand_gbps(spec);
            let per_channel_demand = demand / r.channels.count().max(1) as f64;
            let mut granted = 0.0;
            for c in 0..spec.num_channels as usize {
                if r.channels.0 & (1 << c) == 0 {
                    continue;
                }
                let d = channel_demand[c];
                granted += if d <= channel_cap {
                    per_channel_demand
                } else {
                    per_channel_demand * channel_cap / d
                };
            }
            let bw_share = if demand > 0.0 {
                (granted / demand).clamp(1e-6, 1.0)
            } else {
                1.0
            };

            let mut l2_penalty = 1.0;
            for (j, o) in running.iter().enumerate() {
                if i == j {
                    continue;
                }
                let shared = r.channels.overlap(o.channels) as f64;
                if shared == 0.0 {
                    continue;
                }
                let frac = shared / r.channels.count().max(1) as f64;
                l2_penalty += (cp.l2_overlap_penalty + cp.bank_serialization)
                    * frac
                    * o.thrash_intensity(spec);
            }

            let mut eff_tpcs = 0.0;
            for t in 0..spec.num_tpcs as usize {
                if r.mask.0 & (1 << t) != 0 {
                    eff_tpcs += r.thread_fraction / tpc_occupancy[t].max(1.0);
                }
            }
            let eff_bw_share = bw_share / l2_penalty;
            let ctx = ResourceCtx {
                tpcs: eff_tpcs.max(0.05),
                bw_share: eff_bw_share.clamp(1e-6, 1.0),
                intra_sm_factor: intra,
            };
            let duration = perf::runtime_us(&r.kernel, spec, ctx);
            let exclusive = perf::isolated_runtime_us(&r.kernel, spec);
            out.push(KernelRate {
                duration_us: duration,
                relative_speed: exclusive / duration.max(1e-9),
            });
        }
        out
    }
}

/// Maximum relative divergence tolerated between the optimized rate
/// paths and the [`reference`] oracle (float-associativity headroom).
pub const RATE_EQUIVALENCE_TOL: f64 = 1e-9;

/// Relative divergence between two rate vectors (∞ on length mismatch).
pub fn max_relative_divergence(a: &[KernelRate], b: &[KernelRate]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (x.duration_us - y.duration_us).abs() / x.duration_us.abs().max(1e-12);
            let s = (x.relative_speed - y.relative_speed).abs() / x.relative_speed.abs().max(1e-12);
            d.max(s)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::kernel::{KernelDesc, KernelKind};
    use gpu_spec::GpuModel;

    fn kernel(kind: KernelKind, flops: f64, bytes: f64) -> KernelDesc {
        KernelDesc {
            id: 7,
            name: "k".into(),
            kind,
            flops,
            bytes,
            thread_blocks: 256,
            persistent_threads: true,
            colored: false,
            extra_registers: 0,
            tensor_refs: vec![],
        }
    }

    fn ctx(spec: &GpuSpec, k: KernelDesc, mask: TpcMask, channels: ChannelSet) -> RunningCtx {
        RunningCtx::new(spec, k, mask, channels, 1.0)
    }

    fn victim(spec: &GpuSpec) -> RunningCtx {
        ctx(
            spec,
            kernel(KernelKind::Gemm, 2e9, 1e7),
            TpcMask::first(spec.num_tpcs / 2),
            ChannelSet::all(spec),
        )
    }

    fn thrasher(spec: &GpuSpec, mask: TpcMask, channels: ChannelSet) -> RunningCtx {
        ctx(
            spec,
            kernel(KernelKind::Elementwise, 1e7, 3e8),
            mask,
            channels,
        )
    }

    #[test]
    fn alone_matches_isolated_runtime() {
        let spec = GpuModel::RtxA2000.spec();
        let v = ctx(
            &spec,
            kernel(KernelKind::Gemm, 2e9, 1e7),
            TpcMask::all(&spec),
            ChannelSet::all(&spec),
        );
        let rates = compute_rates(&spec, std::slice::from_ref(&v));
        let isolated = dnn::perf::isolated_runtime_us(&v.kernel, &spec);
        assert!((rates[0].duration_us - isolated).abs() / isolated < 1e-6);
        assert!((rates[0].relative_speed - 1.0).abs() < 1e-6);
    }

    #[test]
    fn intra_sm_interference_grows_with_co_runners() {
        // Fig. 3a: victim latency grows with the number of interferers on
        // shared SMs, and L1 thrashers hurt more than compute kernels.
        let spec = GpuModel::RtxA2000.spec();
        let mask = TpcMask::first(spec.num_tpcs);
        let v = ctx(
            &spec,
            kernel(KernelKind::Gemm, 2e9, 1e7),
            mask,
            ChannelSet::all(&spec),
        );
        let comp = ctx(
            &spec,
            kernel(KernelKind::Gemm, 2e9, 1e6),
            mask,
            ChannelSet::all(&spec),
        );
        let l1 = ctx(
            &spec,
            kernel(KernelKind::Elementwise, 1e8, 2e7),
            mask,
            ChannelSet::all(&spec),
        );
        let alone = compute_rates(&spec, std::slice::from_ref(&v))[0].duration_us;
        let with1 = compute_rates(&spec, &[v.clone(), comp.clone()])[0].duration_us;
        let with2 = compute_rates(&spec, &[v.clone(), comp.clone(), comp.clone()])[0].duration_us;
        let with_l1 = compute_rates(&spec, &[v.clone(), l1])[0].duration_us;
        assert!(with1 > alone * 1.15, "{with1} vs {alone}");
        assert!(with2 > with1 * 1.1);
        assert!(with_l1 > with1, "L1 interference must exceed compute");
    }

    #[test]
    fn disjoint_masks_remove_intra_sm_interference() {
        let spec = GpuModel::RtxA2000.spec();
        let v = ctx(
            &spec,
            kernel(KernelKind::Gemm, 2e9, 1e7),
            TpcMask::first(6),
            ChannelSet::from_channels(&[2, 3, 4, 5]),
        );
        let other = ctx(
            &spec,
            kernel(KernelKind::Gemm, 2e9, 1e6),
            TpcMask::range(6, 7),
            ChannelSet::from_channels(&[0, 1]),
        );
        let alone = compute_rates(&spec, std::slice::from_ref(&v))[0].duration_us;
        let together = compute_rates(&spec, &[v, other])[0].duration_us;
        assert!(
            (together - alone).abs() / alone < 0.02,
            "full partitioning ⇒ no interference ({together} vs {alone})"
        );
    }

    #[test]
    fn channel_overlap_slows_memory_bound_victims() {
        // Fig. 3b: with disjoint SMs (MPS-style), a VRAM thrasher still
        // hurts a victim whose channels overlap.
        let spec = GpuModel::RtxA2000.spec();
        let v = ctx(
            &spec,
            kernel(KernelKind::Elementwise, 1e7, 1e8),
            TpcMask::first(6),
            ChannelSet::all(&spec),
        );
        let t = thrasher(&spec, TpcMask::range(6, 7), ChannelSet::all(&spec));
        let alone = compute_rates(&spec, std::slice::from_ref(&v))[0].duration_us;
        let together = compute_rates(&spec, &[v.clone(), t.clone()])[0].duration_us;
        assert!(together > alone * 1.3, "{together} vs {alone}");

        // Channel isolation removes most of the slowdown (Fig. 15a).
        let v_iso = RunningCtx {
            channels: ChannelSet::from_channels(&[2, 3, 4, 5]),
            ..v
        };
        let t_iso = thrasher(
            &spec,
            TpcMask::range(6, 7),
            ChannelSet::from_channels(&[0, 1]),
        );
        let isolated_together = compute_rates(&spec, &[v_iso.clone(), t_iso])[0].duration_us;
        let isolated_alone = compute_rates(&spec, &[v_iso])[0].duration_us;
        let interference = together / alone;
        let iso_interference = isolated_together / isolated_alone;
        assert!(
            iso_interference < 1.0 + (interference - 1.0) * 0.35,
            "isolation must remove most interference: {iso_interference} vs {interference}"
        );
    }

    #[test]
    fn restricted_channel_set_caps_bandwidth() {
        let spec = GpuModel::RtxA2000.spec();
        let v = ctx(
            &spec,
            kernel(KernelKind::Elementwise, 1e7, 2e8),
            TpcMask::all(&spec),
            ChannelSet::from_channels(&[0, 1]),
        );
        let full = RunningCtx {
            channels: ChannelSet::all(&spec),
            ..v.clone()
        };
        let restricted = compute_rates(&spec, &[v])[0].duration_us;
        let unrestricted = compute_rates(&spec, &[full])[0].duration_us;
        let ratio = restricted / unrestricted;
        assert!(
            (2.2..4.0).contains(&ratio),
            "1/3 of channels ⇒ ~3× memory time ({ratio})"
        );
    }

    #[test]
    fn mps_thread_fraction_scales_compute() {
        let spec = GpuModel::RtxA2000.spec();
        let mut v = victim(&spec);
        v.mask = TpcMask::all(&spec);
        let full = compute_rates(&spec, std::slice::from_ref(&v))[0].duration_us;
        v.thread_fraction = 0.5;
        let half = compute_rates(&spec, &[v])[0].duration_us;
        assert!(half > full * 1.6, "{half} vs {full}");
    }

    #[test]
    fn optimized_matches_reference_model() {
        // The allocation-free fast path and the preserved seed
        // implementation are the same model.
        let spec = GpuModel::RtxA2000.spec();
        let configs = [
            vec![victim(&spec)],
            vec![
                victim(&spec),
                thrasher(&spec, TpcMask::range(6, 7), ChannelSet::all(&spec)),
            ],
            vec![
                ctx(
                    &spec,
                    kernel(KernelKind::Gemm, 2e9, 1e7),
                    TpcMask::first(4),
                    ChannelSet::from_channels(&[0, 1]),
                ),
                ctx(
                    &spec,
                    kernel(KernelKind::DwConv, 4e8, 6e7),
                    TpcMask::range(2, 8),
                    ChannelSet::all(&spec),
                ),
                thrasher(
                    &spec,
                    TpcMask::all(&spec),
                    ChannelSet::from_channels(&[1, 2, 3]),
                ),
            ],
        ];
        for running in &configs {
            let fast = compute_rates(&spec, running);
            let seed: Vec<reference::Ctx> =
                running.iter().map(reference::Ctx::from_running).collect();
            let slow = reference::compute_rates(&spec, &seed);
            let div = max_relative_divergence(&fast, &slow);
            assert!(div < RATE_EQUIVALENCE_TOL, "divergence {div}");
        }
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        let spec = GpuModel::RtxA2000.spec();
        let mut running = vec![
            victim(&spec),
            thrasher(&spec, TpcMask::range(6, 7), ChannelSet::all(&spec)),
            ctx(
                &spec,
                kernel(KernelKind::Attention, 1e9, 4e7),
                TpcMask::first(3),
                ChannelSet::from_channels(&[4, 5]),
            ),
        ];
        let mut state = RateState::default();
        let mut out = Vec::new();
        state.recompute_full(&spec, &running, &mut out);
        // Re-mask the thrasher onto fewer TPCs and the BE channels.
        let old_mask = running[1].mask;
        let old_channels = running[1].channels;
        running[1].mask = TpcMask::range(8, 5);
        running[1].channels = ChannelSet::from_channels(&[0, 1]);
        let mut incremental = Vec::new();
        state.update_one(&spec, &running, 1, old_mask, old_channels, &mut incremental);
        let full = compute_rates(&spec, &running);
        let div = max_relative_divergence(&incremental, &full);
        assert!(div < RATE_EQUIVALENCE_TOL, "divergence {div}");
    }
}
