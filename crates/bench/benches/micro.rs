//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! channel-hash evaluation, the coloring index transform, the colored
//! allocator, MLP hash-learner inference, the contention model and a full
//! serving-scenario step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_spec::{GpuModel, PhysAddr};

fn bench_channel_hash(c: &mut Criterion) {
    let hash = GpuModel::RtxA2000.channel_hash();
    c.bench_function("channel_hash/a2000_1k_lookups", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in 0..1024u64 {
                acc += hash.channel_of(black_box(PhysAddr(p * 1024))) as u32;
            }
            acc
        })
    });
}

fn bench_translate(c: &mut Criterion) {
    let g = coloring::GranularityKib(2);
    c.bench_function("coloring/translate_1k_offsets", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for o in 0..1024u64 {
                acc += coloring::translate_offset(black_box(o * 512), g, 1);
            }
            acc
        })
    });
}

fn bench_colored_alloc(c: &mut Criterion) {
    c.bench_function("coloring/alloc_free_64k", |b| {
        let hash = GpuModel::RtxA2000.channel_hash();
        let mut pool = coloring::ColoredPool::new(0, 4096, coloring::GranularityKib(2), move |p| {
            hash.channel_of_partition(p) / 2
        });
        b.iter(|| {
            let a = pool.alloc_colored(&[0], 64 * 1024).expect("alloc");
            pool.free_colored(a.va).expect("free");
        })
    });
}

fn bench_mlp_predict(c: &mut Criterion) {
    let oracle = GpuModel::RtxA2000.channel_hash();
    let train = reveng::synthetic_samples(oracle.as_ref(), 1 << 18, 4000, 0.02, 1);
    let model = reveng::MlpHashLearner::train(
        &train,
        &reveng::MlpConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    c.bench_function("reveng/mlp_predict_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in 0..1024u64 {
                acc += model.predict(black_box(p)) as u32;
            }
            acc
        })
    });
}

fn bench_contention_model(c: &mut Criterion) {
    use dnn::kernel::{KernelDesc, KernelKind};
    use exec_sim::{compute_rates, ChannelSet, RateState, RunningCtx, TpcMask};
    let spec = GpuModel::RtxA2000.spec();
    let k = KernelDesc {
        id: 1,
        name: "bench".into(),
        kind: KernelKind::Gemm,
        flops: 2e9,
        bytes: 2e7,
        thread_blocks: 128,
        persistent_threads: true,
        colored: false,
        extra_registers: 0,
        tensor_refs: vec![],
    };
    let running = vec![
        RunningCtx::new(
            &spec,
            k.clone(),
            TpcMask::first(6),
            ChannelSet::from_channels(&[2, 3, 4, 5]),
            1.0,
        ),
        RunningCtx::new(
            &spec,
            k.clone(),
            TpcMask::range(6, 7),
            ChannelSet::from_channels(&[0, 1]),
            1.0,
        ),
    ];
    c.bench_function("exec_sim/compute_rates_pair", |b| {
        b.iter(|| compute_rates(black_box(&spec), black_box(&running)))
    });

    // The engine-style path (persistent state, caller-owned output) at
    // 1/2/4 resident kernels — the per-event cost the serving loop pays.
    for n in [1usize, 2, 4] {
        let running: Vec<RunningCtx> = (0..n)
            .map(|i| {
                RunningCtx::new(
                    &spec,
                    KernelDesc {
                        kind: if i % 2 == 0 {
                            KernelKind::Gemm
                        } else {
                            KernelKind::Elementwise
                        },
                        bytes: 2e7 * (i + 1) as f64,
                        ..k.clone()
                    },
                    TpcMask::range((3 * i) as u32 % 8, 6),
                    ChannelSet::all(&spec),
                    1.0,
                )
            })
            .collect();
        let mut state = RateState::default();
        let mut out = Vec::new();
        c.bench_function(&format!("exec_sim/compute_rates_into_{n}_kernels"), |b| {
            b.iter(|| {
                state.recompute_full(black_box(&spec), black_box(&running), &mut out);
                out.len()
            })
        });
    }
}

fn bench_serving_slice(c: &mut Criterion) {
    use dnn::zoo::{build, ModelId};
    use dnn::CompileOptions;
    use sgdrc_core::serving::{run, Scenario, Task};
    use sgdrc_core::{Sgdrc, SgdrcConfig};
    let spec = GpuModel::RtxA2000.spec();
    let ls = Task::new(
        dnn::compile(
            build(ModelId::MobileNetV3),
            &spec,
            CompileOptions::default(),
        ),
        &spec,
    );
    let be = Task::new(
        dnn::compile(
            build(ModelId::DenseNet161),
            &spec,
            CompileOptions::default(),
        ),
        &spec,
    );
    let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 4000.0).collect();
    let sc = Scenario::new(
        spec.clone(),
        vec![ls],
        vec![be],
        4,
        vec![arrivals],
        100_000.0,
    );
    c.bench_function("serving/sgdrc_100ms_scenario", |b| {
        b.iter(|| {
            let mut policy = Sgdrc::new(&sc.spec, SgdrcConfig::default());
            run(&mut policy, black_box(&sc))
        })
    });
}

fn bench_latency_histogram(c: &mut Criterion) {
    use workload::metrics::LatencyHistogram;
    // A representative short-cell latency population: 1k samples over
    // ~2 decades.
    let samples: Vec<f64> = (0..1024)
        .map(|i| 200.0 + ((i * 2654435761u64 as usize) % 100_000) as f64)
        .collect();
    c.bench_function("metrics/histogram_record_1k", |b| {
        let mut h = LatencyHistogram::new();
        b.iter(|| {
            h.reset();
            for &v in &samples {
                h.record(black_box(v));
            }
            h.count()
        })
    });
    let mut a = LatencyHistogram::new();
    let mut other = LatencyHistogram::new();
    for &v in &samples {
        other.record(v);
    }
    c.bench_function("metrics/histogram_merge", |b| {
        b.iter(|| {
            a.reset();
            a.merge(black_box(&other));
            a.count()
        })
    });
    c.bench_function("metrics/histogram_p99", |b| {
        b.iter(|| black_box(&other).percentile(black_box(99.0)))
    });
}

criterion_group!(
    benches,
    bench_channel_hash,
    bench_translate,
    bench_colored_alloc,
    bench_mlp_predict,
    bench_contention_model,
    bench_serving_slice,
    bench_latency_histogram
);
criterion_main!(benches);
