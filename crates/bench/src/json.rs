//! A minimal JSON value builder + pretty-printer, replacing `serde_json`
//! for the workspace's machine-readable outputs.
//!
//! Only what the bench binaries need: objects with insertion-ordered
//! keys, arrays, strings, numbers and booleans, printed with two-space
//! indentation. Non-finite floats serialize as `null` (matching what
//! `serde_json` does for `f64::NAN` under its default configuration).

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/overwrites a field on an object (panics on non-objects).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", x);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Int(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(x as i64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(x as i64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Serializes one end-to-end [`SystemResult`] (the `fig17_results.json`
/// schema previously produced via serde).
pub fn system_result_json(r: &workload::SystemResult) -> Json {
    let ls: Vec<Json> =
        r.ls.iter()
            .map(|m| {
                Json::obj()
                    .set("model", m.model.as_str())
                    .set("requests", m.requests)
                    .set("p99_latency_us", m.p99_latency_us)
                    .set("mean_latency_us", m.mean_latency_us)
                    .set("slo_us", m.slo_us)
                    .set("slo_attainment", m.slo_attainment)
                    .set("goodput_hz", m.goodput_hz)
            })
            .collect();
    let be: Vec<Json> = r
        .be_throughput_hz
        .iter()
        .map(|(name, hz)| {
            Json::obj()
                .set("model", name.as_str())
                .set("samples_per_s", *hz)
        })
        .collect();
    Json::obj()
        .set("system", r.system.as_str())
        .set("gpu", r.gpu.as_str())
        .set("load", r.load.as_str())
        .set("ls", Json::Arr(ls))
        .set("be_throughput_hz", Json::Arr(be))
        .set("overall_throughput_hz", r.overall_throughput_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .set("name", "fig17 \"sweep\"")
            .set("count", 3u64)
            .set("ratio", 2.5)
            .set("whole", 4.0)
            .set("items", Json::Arr(vec![Json::Int(1), Json::Null]));
        let s = doc.pretty();
        assert!(s.contains("\"name\": \"fig17 \\\"sweep\\\"\""), "{s}");
        assert!(s.contains("\"count\": 3"), "{s}");
        assert!(s.contains("\"ratio\": 2.5"), "{s}");
        assert!(s.contains("\"whole\": 4.0"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn set_overwrites() {
        let doc = Json::obj().set("a", 1u64).set("a", 2u64);
        assert!(doc.pretty().contains("\"a\": 2"));
    }
}
