//! A minimal JSON value builder + pretty-printer, replacing `serde_json`
//! for the workspace's machine-readable outputs.
//!
//! Only what the bench binaries need: objects with insertion-ordered
//! keys, arrays, strings, numbers and booleans, printed with two-space
//! indentation. Non-finite floats serialize as `null` (matching what
//! `serde_json` does for `f64::NAN` under its default configuration).

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/overwrites a field on an object (panics on non-objects).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", x);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Int(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(x as i64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(x as i64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Checks that `text` is exactly one syntactically well-formed JSON
/// document (trailing whitespace allowed). A minimal recursive-descent
/// scanner — no values are built — used by the trace-export CI check to
/// prove the hand-rolled writer emitted parseable output.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    scan_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

/// Nesting depth bound for the scanner — far above anything the bench
/// writers produce, low enough to never blow the stack on crafted input.
const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn scan_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    let Some(&c) = b.get(*pos) else {
        return Err(format!("unexpected end of input at byte {pos}"));
    };
    match c {
        b'{' => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                scan_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                scan_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                scan_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => scan_string(b, pos),
        b't' => scan_lit(b, pos, "true"),
        b'f' => scan_lit(b, pos, "false"),
        b'n' => scan_lit(b, pos, "null"),
        b'-' | b'0'..=b'9' => scan_number(b, pos),
        other => Err(format!("unexpected byte {:?} at byte {pos}", other as char)),
    }
}

fn scan_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn scan_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "raw control byte 0x{c:02x} in string at byte {pos}"
                ));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn scan_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let from = *pos;
        while matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
        *pos > from
    };
    // Integer part: `0` alone or a non-zero digit run (no leading zeros).
    match b.get(*pos) {
        Some(b'0') => {
            *pos += 1;
            if matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
                return Err(format!("leading zero at byte {start}"));
            }
        }
        Some(d) if d.is_ascii_digit() => {
            digits(b, pos);
        }
        _ => return Err(format!("malformed number at byte {start}")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    Ok(())
}

/// Serializes one end-to-end [`SystemResult`] (the `fig17_results.json`
/// schema previously produced via serde).
pub fn system_result_json(r: &workload::SystemResult) -> Json {
    let ls: Vec<Json> =
        r.ls.iter()
            .map(|m| {
                Json::obj()
                    .set("model", m.model.as_str())
                    .set("requests", m.requests)
                    .set("p99_latency_us", m.p99_latency_us)
                    .set("mean_latency_us", m.mean_latency_us)
                    .set("slo_us", m.slo_us)
                    .set("slo_attainment", m.slo_attainment)
                    .set("goodput_hz", m.goodput_hz)
            })
            .collect();
    let be: Vec<Json> = r
        .be_throughput_hz
        .iter()
        .map(|(name, hz)| {
            Json::obj()
                .set("model", name.as_str())
                .set("samples_per_s", *hz)
        })
        .collect();
    Json::obj()
        .set("system", r.system.as_str())
        .set("gpu", r.gpu.as_str())
        .set("load", r.load.as_str())
        .set("ls", Json::Arr(ls))
        .set("be_throughput_hz", Json::Arr(be))
        .set("overall_throughput_hz", r.overall_throughput_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .set("name", "fig17 \"sweep\"")
            .set("count", 3u64)
            .set("ratio", 2.5)
            .set("whole", 4.0)
            .set("items", Json::Arr(vec![Json::Int(1), Json::Null]));
        let s = doc.pretty();
        assert!(s.contains("\"name\": \"fig17 \\\"sweep\\\"\""), "{s}");
        assert!(s.contains("\"count\": 3"), "{s}");
        assert!(s.contains("\"ratio\": 2.5"), "{s}");
        assert!(s.contains("\"whole\": 4.0"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn set_overwrites() {
        let doc = Json::obj().set("a", 1u64).set("a", 2u64);
        assert!(doc.pretty().contains("\"a\": 2"));
    }

    #[test]
    fn escapes_every_special_string() {
        // Quotes, backslashes, the named control escapes and the \uXXXX
        // fallback — round-tripped through the validator so the escaped
        // form is provably parseable.
        let nasty = "q\"q b\\b n\nn t\tt r\rr nul\u{0}bel\u{7}esc\u{1b}hi\u{1f}é✓";
        let mut out = String::new();
        write_escaped(&mut out, nasty);
        assert_eq!(
            out,
            "\"q\\\"q b\\\\b n\\nn t\\tt r\\rr nul\\u0000bel\\u0007esc\\u001bhi\\u001fé✓\""
        );
        validate(&out).expect("escaped string parses");
        let doc = Json::obj().set(nasty, nasty).pretty();
        validate(&doc).expect("escaped keys and values parse");
        assert!(!doc.contains('\u{0}'), "raw control byte leaked");
    }

    #[test]
    fn validator_accepts_writer_output() {
        let doc = Json::obj()
            .set("s", "a\"b\\c\nd")
            .set("nan", f64::NAN)
            .set("neg", -2.5)
            .set("exp", 1.5e300)
            .set(
                "arr",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::obj()]),
            );
        validate(&doc.pretty()).expect("writer output is well-formed");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"raw \u{1} ctrl\"",
            "01",
            "1.",
            "--1",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}
