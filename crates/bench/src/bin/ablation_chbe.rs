//! Ablation: the Ch_BE channel split (§6 fixes it at 1/3).
use gpu_spec::GpuModel;
use sgdrc_core::SgdrcConfig;
use workload::runner::{run_system, Deployment, EndToEndConfig, Load, SystemKind};

fn main() {
    sgdrc_bench::header("ablation — Ch_BE channel fraction (A2000, heavy)");
    let dep = Deployment::cached(GpuModel::RtxA2000);
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "Ch_BE", "SLO att.", "BE (s/s)", "overall"
    );
    for ch_be in [1.0 / 6.0, 1.0 / 3.0, 2.0 / 3.0] {
        let mut cfg = EndToEndConfig::new(GpuModel::RtxA2000, Load::Heavy);
        cfg.horizon_us = 3e6;
        cfg.sgdrc = SgdrcConfig {
            ch_be,
            ..Default::default()
        };
        let r = run_system(&dep, &cfg, SystemKind::Sgdrc);
        println!(
            "{ch_be:>8.2} {:>10.3} {:>12.1} {:>10.1}",
            r.mean_slo_attainment(),
            r.total_be_throughput(),
            r.overall_throughput_hz
        );
    }
}
