//! Tab. 1: VRAM size, bus width and channel counts of the three GPUs.
use gpu_spec::GpuModel;

fn main() {
    sgdrc_bench::header("Tab. 1 — GPU specifications");
    for m in GpuModel::all() {
        println!("{}", m.spec().tab1_row());
    }
    println!("\nCross-validation: channels = bus width / per-GDDR width");
    for m in GpuModel::all() {
        let s = m.spec();
        println!(
            "{:<10}: {} / {} = {} (spec lists {})",
            s.name,
            s.vram_bus_width_bits,
            s.bus_width_per_gddr_bits,
            s.channels_from_bus_width(),
            s.num_channels
        );
    }
}
