//! Tab. 3: the testing DNN models with derived statistics.
use dnn::zoo::full_zoo;
use gpu_spec::GpuModel;

fn main() {
    sgdrc_bench::header("Tab. 3 — testing DNN models");
    let spec = GpuModel::RtxA2000.spec();
    println!(
        "{:<3} {:<16} {:<5} {:>5} {:>8} {:>9} {:>10} {:>12}",
        "ID", "Model", "Class", "Batch", "Kernels", "Params(M)", "GFLOPs", "e2e A2000(µs)"
    );
    for m in full_zoo() {
        let e2e: f64 = m
            .kernels
            .iter()
            .map(|k| dnn::isolated_runtime_us(k, &spec))
            .sum();
        println!(
            "{:<3} {:<16} {:<5} {:>5} {:>8} {:>9.1} {:>10.2} {:>12.0}",
            m.id.letter(),
            m.id.name(),
            match m.class() {
                coloring::TaskClass::Ls => "LS",
                coloring::TaskClass::Be => "BE",
            },
            m.batch,
            m.kernels.len(),
            m.weight_bytes() as f64 / 4e6,
            m.total_flops() / 1e9,
            e2e
        );
    }
}
