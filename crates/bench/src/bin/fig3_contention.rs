//! Fig. 3: resource contention micro-benchmarks on the RTX A2000.
//! (a) intra-SM conflicts: victim + k interferers sharing SMs;
//! (b) inter-SM conflicts: MPS-split SMs, VRAM-thrashing interferers.
use dnn::kernel::{KernelDesc, KernelKind};
use exec_sim::{compute_rates, ChannelSet, RunningCtx, TpcMask};
use gpu_spec::GpuModel;

fn kernel(kind: KernelKind, flops: f64, bytes: f64) -> KernelDesc {
    KernelDesc {
        id: 1,
        name: "microbench".into(),
        kind,
        flops,
        bytes,
        thread_blocks: 256,
        persistent_threads: true,
        colored: false,
        extra_registers: 0,
        tensor_refs: vec![],
    }
}

fn main() {
    let spec = GpuModel::RtxA2000.spec();
    let all = TpcMask::all(&spec);
    let chans = ChannelSet::all(&spec);
    // Matrix-multiply victim.
    let victim = RunningCtx::new(&spec, kernel(KernelKind::Gemm, 2e9, 1e7), all, chans, 1.0);
    let alone = compute_rates(&spec, std::slice::from_ref(&victim))[0].duration_us;

    sgdrc_bench::header("Fig. 3a — intra-SM conflicts (victim p99 slowdown)");
    println!(
        "{:<24} {:>12} {:>10}",
        "interference", "p99 (µs)", "slowdown"
    );
    println!("{:<24} {:>12.1} {:>10.2}", "none", alone, 1.0);
    for n in 1..=3 {
        // Compute-unit interferers (matrix multiplication).
        let mut set = vec![victim.clone()];
        for _ in 0..n {
            set.push(RunningCtx::new(
                &spec,
                kernel(KernelKind::Gemm, 2e9, 1e6),
                all,
                chans,
                1.0,
            ));
        }
        let t = compute_rates(&spec, &set)[0].duration_us;
        println!(
            "{:<24} {:>12.1} {:>10.2}",
            format!("{n}x Comp."),
            t,
            t / alone
        );
        // L1-thrashing interferers.
        let mut set = vec![victim.clone()];
        for _ in 0..n {
            set.push(RunningCtx::new(
                &spec,
                kernel(KernelKind::Elementwise, 1e8, 2e7),
                all,
                chans,
                1.0,
            ));
        }
        let t = compute_rates(&spec, &set)[0].duration_us;
        println!(
            "{:<24} {:>12.1} {:>10.2}",
            format!("{n}x L1C"),
            t,
            t / alone
        );
    }

    sgdrc_bench::header("Fig. 3b — inter-SM conflicts (disjoint SMs, shared channels)");
    let half = spec.num_tpcs / 2;
    let victim = RunningCtx::new(
        &spec,
        kernel(KernelKind::Gemm, 2e9, 4e7),
        TpcMask::first(half),
        chans,
        1.0,
    );
    let alone = compute_rates(&spec, std::slice::from_ref(&victim))[0].duration_us;
    println!(
        "{:<24} {:>12} {:>10}",
        "VRAM thrashers", "p99 (µs)", "slowdown"
    );
    println!("{:<24} {:>12.1} {:>10.2}", "none", alone, 1.0);
    for n in 1..=3 {
        let mut set = vec![victim.clone()];
        for i in 0..n {
            set.push(RunningCtx::new(
                &spec,
                kernel(KernelKind::Elementwise, 1e7, 3e8),
                TpcMask::range(half + i, 1),
                chans,
                1.0,
            ));
        }
        let t = compute_rates(&spec, &set)[0].duration_us;
        println!(
            "{:<24} {:>12.1} {:>10.2}",
            format!("{n} thrashers"),
            t,
            t / alone
        );
    }
}
