//! The paper's headline numbers, derived from the Fig. 17 experiment:
//! highest SLO attainment (paper: 99.0% average), overall throughput up to
//! 1.47× Orion's and BE throughput up to 2.36× Orion's.
use gpu_spec::GpuModel;
use workload::runner::{run_cell, Deployment, EndToEndConfig, Load};

fn main() {
    let mut sgdrc_att = Vec::new();
    let mut overall_gain = Vec::new();
    let mut be_gain = Vec::new();
    for gpu in GpuModel::testbeds() {
        let dep = Deployment::cached(gpu);
        for load in [Load::Heavy, Load::Light] {
            let mut cfg = EndToEndConfig::new(gpu, load);
            cfg.horizon_us = 4e6;
            let results = run_cell(&dep, &cfg);
            let sgdrc = results
                .iter()
                .find(|r| r.system == "SGDRC")
                .expect("SGDRC ran");
            let orion = results
                .iter()
                .find(|r| r.system == "Orion")
                .expect("Orion ran");
            sgdrc_att.push(sgdrc.mean_slo_attainment());
            overall_gain.push(sgdrc.overall_throughput_hz / orion.overall_throughput_hz);
            // Per-BE-model gain (the paper's "up to" is over models).
            for ((name, s), (_, o)) in sgdrc.be_throughput_hz.iter().zip(&orion.be_throughput_hz) {
                if *o > 0.0 {
                    be_gain.push((format!("{}/{}/{name}", dep.spec.name, load.name()), s / o));
                }
            }
            // Best system by attainment in this cell:
            let best = results
                .iter()
                .max_by(|a, b| a.mean_slo_attainment().total_cmp(&b.mean_slo_attainment()))
                .expect("results");
            println!(
                "{} / {:<5}: best attainment = {} ({:.3}); SGDRC overall/Orion = {:.2}x",
                dep.spec.name,
                load.name(),
                best.system,
                best.mean_slo_attainment(),
                sgdrc.overall_throughput_hz / orion.overall_throughput_hz
            );
        }
    }
    sgdrc_bench::header("headline numbers (paper values in parentheses)");
    let mean_att = sgdrc_att.iter().sum::<f64>() / sgdrc_att.len() as f64;
    println!(
        "SGDRC mean SLO attainment: {:.1}% (paper: 99.0%)",
        mean_att * 100.0
    );
    let max_overall = overall_gain.iter().cloned().fold(0.0f64, f64::max);
    println!("overall throughput vs Orion: up to {max_overall:.2}x (paper: up to 1.47x)");
    let (at, max_be) = be_gain
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("gains");
    println!("BE throughput vs Orion: up to {max_be:.2}x at {at} (paper: up to 2.36x)");
}
