//! End-to-end hot-path benchmark: events/sec on a fig17-style sweep,
//! before (seed `RateMode::Reference` engine path) vs. after (the
//! allocation-free `RateMode::Fast` path), plus the parallel-sweep
//! speedup and `compute_rates` micro-timings at 1/2/4 resident kernels.
//! Writes `BENCH_exec_sim.json` so every future PR has a perf trajectory
//! to compare against.

use dnn::kernel::{KernelDesc, KernelKind};
use exec_sim::contention::reference;
use exec_sim::{ChannelSet, RateMode, RateState, RunningCtx, TpcMask};
use gpu_spec::GpuModel;
use sgdrc_bench::json::Json;
use sgdrc_core::serving::{run_with_mode, Scenario};
use std::sync::Arc;
use std::time::Instant;
use workload::runner::{cell_trace, run_cell, Deployment, EndToEndConfig, Load, SystemKind};

/// One full fig17-style sweep (every supported system × every BE
/// co-location), sequential, under the given engine rate mode. Returns
/// (total engine events, wall seconds).
fn sweep(dep: &Deployment, cfg: &EndToEndConfig, mode: RateMode) -> (u64, f64) {
    let trace = cell_trace(dep, cfg);
    let start = Instant::now();
    let mut events = 0u64;
    for system in SystemKind::all() {
        if !system.supported_on(&dep.spec) {
            continue;
        }
        for i in 0..dep.be_tasks.len() {
            let scenario = Scenario {
                spec: dep.spec.clone(),
                ls: Arc::clone(&dep.ls_tasks),
                be: dep.be_singleton(i),
                ls_instances: cfg.ls_instances,
                arrivals: Arc::clone(&trace),
                horizon_us: cfg.horizon_us,
            };
            let mut policy = system.make(&dep.spec);
            let stats = run_with_mode(policy.as_mut(), &scenario, mode);
            events += stats.engine_events;
        }
    }
    (events, start.elapsed().as_secs_f64())
}

fn bench_kernel(kind: KernelKind, flops: f64, bytes: f64) -> KernelDesc {
    KernelDesc {
        id: 1,
        name: "bench/contention".into(),
        kind,
        flops,
        bytes,
        thread_blocks: 256,
        persistent_threads: true,
        colored: false,
        extra_registers: 0,
        tensor_refs: vec![0, 1, 2],
    }
}

/// Running set of `n` kernels with staggered masks/channels.
fn running_set(n: usize) -> Vec<RunningCtx> {
    let spec = GpuModel::RtxA2000.spec();
    let kinds = [
        KernelKind::Gemm,
        KernelKind::Elementwise,
        KernelKind::Conv,
        KernelKind::DwConv,
    ];
    (0..n)
        .map(|i| {
            RunningCtx::new(
                &spec,
                bench_kernel(
                    kinds[i % kinds.len()],
                    2e9 / (i + 1) as f64,
                    2e7 * (i + 1) as f64,
                ),
                TpcMask::range((3 * i) as u32 % 8, 6),
                if i % 2 == 0 {
                    ChannelSet::all(&spec)
                } else {
                    ChannelSet::from_channels(&[0, 1, (2 + i as u16) % 6])
                },
                1.0,
            )
        })
        .collect()
}

/// Median-of-batches ns/call for `f`.
fn time_ns(mut f: impl FnMut()) -> f64 {
    const BATCH: u32 = 2000;
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..BATCH {
                f();
            }
            start.elapsed().as_nanos() as f64 / BATCH as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let gpu = GpuModel::RtxA2000;
    let dep = Deployment::cached(gpu);
    let mut cfg = EndToEndConfig::new(gpu, Load::Heavy);
    cfg.horizon_us = 1.0e6;

    sgdrc_bench::header("BENCH_exec_sim — fig17-style sweep, before/after");
    println!(
        "gpu={} load={} horizon={}µs",
        dep.spec.name,
        cfg.load.name(),
        cfg.horizon_us
    );

    // Warm once (page in model compilation paths etc.), then measure.
    let _ = sweep(&dep, &cfg, RateMode::Fast);
    let (ref_events, ref_wall) = sweep(&dep, &cfg, RateMode::Reference);
    let (fast_events, fast_wall) = sweep(&dep, &cfg, RateMode::Fast);
    let ref_eps = ref_events as f64 / ref_wall;
    let fast_eps = fast_events as f64 / fast_wall;
    let speedup = fast_eps / ref_eps;
    println!("before (reference): {ref_events} events in {ref_wall:.2}s = {ref_eps:.0} events/s");
    println!(
        "after  (fast):      {fast_events} events in {fast_wall:.2}s = {fast_eps:.0} events/s"
    );
    println!("speedup: {speedup:.2}× (target ≥ 2×)");
    // The two rate paths agree to 1e-9 relative per evaluation, not
    // bit-for-bit; over a 1e6 µs sweep that can re-order a handful of
    // photo-finish events. Demand near-identical totals, not exact.
    let event_drift = ref_events.abs_diff(fast_events) as f64;
    assert!(
        event_drift <= ref_events.max(fast_events) as f64 * 1e-4 + 2.0,
        "engine modes diverged: {ref_events} vs {fast_events} events"
    );

    // Parallel sweep: run_cell fans systems and BE scenarios out with
    // rayon; compare against the serial fast sweep. With one worker a
    // parallel-vs-serial comparison is meaningless, so it is skipped
    // (and flagged in the JSON) rather than reported as a "speedup".
    // The worker count honours the SGDRC_THREADS override and is
    // recorded, so multi-core boxes can exercise the fan-out honestly
    // and the JSON attributes any speedup to an actual worker count.
    let threads = sgdrc_bench::ThreadAttribution::capture();
    let (detected_cpus, worker_threads) = (threads.detected_cpus, threads.worker_threads);
    let parallel_json = if worker_threads <= 1 {
        println!(
            "parallel sweep: skipped (1 worker — detected_cpus={detected_cpus}, {}={})",
            rayon::THREADS_ENV,
            threads.env.as_deref().unwrap_or("<unset>")
        );
        Json::obj()
            .set("skipped", true)
            .set(
                "reason",
                "single worker; a parallel-vs-serial speedup would be noise",
            )
            .set("detected_cpus", detected_cpus)
            .set("worker_threads", worker_threads)
    } else {
        let start = Instant::now();
        let results = run_cell(&dep, &cfg);
        let par_wall = start.elapsed().as_secs_f64();
        let par_speedup = fast_wall / par_wall;
        println!(
            "parallel sweep: {par_wall:.2}s vs {fast_wall:.2}s serial = {par_speedup:.2}× ({worker_threads} workers on {detected_cpus} CPUs, {} systems)",
            results.len()
        );
        Json::obj()
            .set("skipped", false)
            .set("serial_wall_s", fast_wall)
            .set("parallel_wall_s", par_wall)
            .set("speedup", par_speedup)
            .set("detected_cpus", detected_cpus)
            .set("worker_threads", worker_threads)
    };
    // Record the *effective* worker count inside the scaling section
    // itself (not just the raw env string), flagged when an override
    // makes it differ from the detected CPUs — so a cells/sec curve
    // collected by sweeping SGDRC_THREADS on real hardware is
    // attributable from this section alone.
    let parallel_json =
        threads.annotate(parallel_json.set("sgdrc_threads_env", threads.env_json()));

    // compute_rates micro-timings at 1/2/4 resident kernels.
    sgdrc_bench::header("compute_rates ns/call (fast vs reference)");
    let spec = gpu.spec();
    let mut micro = Json::obj();
    for n in [1usize, 2, 4] {
        let running = running_set(n);
        let mut state = RateState::default();
        let mut out = Vec::new();
        let fast_ns = time_ns(|| state.recompute_full(&spec, &running, &mut out));
        // The seed path deep-cloned every descriptor per evaluation —
        // include that, as the engine did it on every event.
        let ref_ns = time_ns(|| {
            let ctxs: Vec<reference::Ctx> =
                running.iter().map(reference::Ctx::from_running).collect();
            std::hint::black_box(reference::compute_rates(&spec, &ctxs));
        });
        println!(
            "n={n}: fast {fast_ns:>8.1} ns  reference {ref_ns:>8.1} ns  ({:.1}×)",
            ref_ns / fast_ns
        );
        micro = micro.set(
            &n.to_string(),
            Json::obj()
                .set("fast_ns", fast_ns)
                .set("reference_ns", ref_ns)
                .set("speedup", ref_ns / fast_ns),
        );
    }

    let doc = Json::obj()
        .set("benchmark", "exec_sim_fig17_sweep")
        .set("gpu", dep.spec.name)
        .set("load", cfg.load.name())
        .set("horizon_us", cfg.horizon_us)
        .set("scenarios", "all supported systems × 3 BE co-locations")
        .set(
            "before",
            Json::obj()
                .set("mode", "reference (seed hot path)")
                .set("events", ref_events)
                .set("wall_s", ref_wall)
                .set("events_per_sec", ref_eps),
        )
        .set(
            "after",
            Json::obj()
                .set("mode", "fast (allocation-free)")
                .set("events", fast_events)
                .set("wall_s", fast_wall)
                .set("events_per_sec", fast_eps),
        )
        .set("events_per_sec_speedup", speedup)
        .set("detected_cpus", detected_cpus)
        .set("worker_threads", worker_threads)
        .set("parallel_sweep", parallel_json)
        .set("compute_rates_ns", micro);
    std::fs::write("BENCH_exec_sim.json", doc.pretty()).expect("write BENCH_exec_sim.json");
    println!("\nwrote BENCH_exec_sim.json");
    if speedup < 2.0 {
        eprintln!("WARNING: events/sec speedup {speedup:.2}× below the 2× target");
        std::process::exit(1);
    }
}
