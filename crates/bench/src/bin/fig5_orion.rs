//! Fig. 5: (a) Orion under rising LS load — SLO attainment holds, BE
//! throughput declines; (b) the BE-kernel scheduling-constraint census
//! (paper: 73.8% of BE kernels face ≥1 constraint).
use baselines::{constraint_census, Orion, OrionConfig};
use dnn::zoo::{build, ModelId};
use dnn::CompileOptions;
use gpu_spec::GpuModel;
use sgdrc_core::serving::{run, Scenario, Task};
use workload::metrics::{ls_metrics, slo_for};
use workload::trace::{generate, TraceConfig};

fn main() {
    let spec = GpuModel::RtxA2000.spec();
    sgdrc_bench::header("Fig. 5a — Orion vs LS load (MobileNetV3 + DenseNet161)");
    println!("{:>10} {:>10} {:>12}", "LS req/s", "SLO att.", "BE (s/s)");
    let ls = dnn::compile(
        build(ModelId::MobileNetV3),
        &spec,
        CompileOptions::default(),
    );
    let be = dnn::compile(
        build(ModelId::DenseNet161),
        &spec,
        CompileOptions::default(),
    );
    let ls_task = Task::new(ls, &spec);
    let be_task = Task::new(be, &spec);
    for rate in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let horizon = 3e6;
        let cfg = TraceConfig {
            mean_rate_hz: rate,
            ..TraceConfig::apollo_like()
        };
        let sc = Scenario::new(
            spec.clone(),
            vec![ls_task.clone()],
            vec![be_task.clone()],
            4,
            vec![generate(&cfg, horizon, 13)],
            horizon,
        );
        let stats = run(&mut Orion::default(), &sc);
        let slo = slo_for(sc.ls[0].profile.isolated_e2e_us, 2);
        let m = ls_metrics("MobileNetV3", &stats.ls_completed[0], slo, horizon);
        let be_tp = stats.be_completed[0] as f64 * 8.0 / (horizon / 1e6);
        println!("{rate:>10.0} {:>10.3} {be_tp:>12.1}", m.slo_attainment);
    }

    sgdrc_bench::header("Fig. 5b — BE kernel constraint census (models I-K)");
    let ls_models: Vec<_> = ModelId::ls_models()
        .iter()
        .map(|&id| dnn::compile(build(id), &spec, CompileOptions::default()))
        .collect();
    let mut total = 0usize;
    let mut any = 0usize;
    println!(
        "{:<14} {:>8} {:>6} {:>6} {:>8} {:>6}",
        "model", "kernels", "Res.", "SM", "Runtime", "any"
    );
    for id in ModelId::be_models() {
        let bem = dnn::compile(build(id), &spec, CompileOptions::default());
        let census = constraint_census(&bem, &ls_models, &spec, &OrionConfig::default());
        let res = census.iter().filter(|f| f.res).count();
        let sm = census.iter().filter(|f| f.sm).count();
        let rt = census.iter().filter(|f| f.runtime).count();
        let a = census.iter().filter(|f| f.any()).count();
        println!(
            "{:<14} {:>8} {:>6} {:>6} {:>8} {:>6}",
            id.name(),
            census.len(),
            res,
            sm,
            rt,
            a
        );
        total += census.len();
        any += a;
    }
    println!(
        "\nconstrained BE kernels: {:.1}% (paper: 73.8%)",
        any as f64 / total as f64 * 100.0
    );
}
