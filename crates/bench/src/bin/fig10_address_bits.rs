//! Fig. 10: the physical address bit structure.
fn main() {
    sgdrc_bench::header("Fig. 10 — physical address bits");
    print!("{}", gpu_spec::address::address_bit_diagram());
}
