//! Fig. 15: (a) CDF of LS-kernel speedups from VRAM channel isolation
//! (paper: mean 28.7% on P40, 47.5% on A2000); (b) CDF of extra registers
//! used by transformed kernels (~80% zero, >90% under 5).
use dnn::zoo::{build, ModelId};
use dnn::CompileOptions;
use exec_sim::{compute_rates, ChannelSet, RunningCtx, TpcMask};
use gpu_spec::GpuModel;

fn main() {
    for gpu in GpuModel::testbeds() {
        let spec = gpu.spec();
        sgdrc_bench::header(&format!(
            "Fig. 15a — channel-isolation speedup CDF on {}",
            spec.name
        ));
        // Memory-intensive BE kernels (high DRAM throughput) as conflict
        // sources, co-executed with every LS kernel; SMs evenly split via
        // libsmctrl in both groups (§9.1.1).
        let be_model = dnn::compile(
            build(ModelId::DenseNet161),
            &spec,
            CompileOptions::default(),
        );
        let thrasher = be_model
            .kernels
            .iter()
            .max_by(|a, b| a.bytes.total_cmp(&b.bytes))
            .expect("BE model has kernels")
            .clone();
        let half = spec.num_tpcs / 2;
        let ls_set =
            ChannelSet::from_channels(&coloring::split_channels(&spec, 1.0 / 3.0).ls_channels);
        let be_set =
            ChannelSet::from_channels(&coloring::split_channels(&spec, 1.0 / 3.0).be_channels);
        let mut speedups = Vec::new();
        for id in ModelId::ls_models() {
            let m = dnn::compile(build(id), &spec, CompileOptions::default());
            for k in &m.kernels {
                let victim_shared = RunningCtx::new(
                    &spec,
                    k.clone(),
                    TpcMask::first(half),
                    ChannelSet::all(&spec),
                    1.0,
                );
                let thrash_shared = RunningCtx::new(
                    &spec,
                    thrasher.clone(),
                    TpcMask::range(half, spec.num_tpcs - half),
                    ChannelSet::all(&spec),
                    1.0,
                );
                let shared =
                    compute_rates(&spec, &[victim_shared.clone(), thrash_shared])[0].duration_us;
                let victim_iso = RunningCtx {
                    channels: ls_set,
                    ..victim_shared
                };
                let thrash_iso = RunningCtx::new(
                    &spec,
                    thrasher.clone(),
                    TpcMask::range(half, spec.num_tpcs - half),
                    be_set,
                    1.0,
                );
                let isolated = compute_rates(&spec, &[victim_iso, thrash_iso])[0].duration_us;
                speedups.push(shared / isolated - 1.0);
            }
        }
        speedups.sort_by(f64::total_cmp);
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let q = |p: f64| speedups[((speedups.len() as f64 * p) as usize).min(speedups.len() - 1)];
        println!(
            "kernels={} mean speedup {:.1}% | p10 {:.1}% p50 {:.1}% p90 {:.1}% max {:.1}%",
            speedups.len(),
            mean * 100.0,
            q(0.10) * 100.0,
            q(0.50) * 100.0,
            q(0.90) * 100.0,
            speedups.last().unwrap() * 100.0
        );
        println!("paper: mean 28.7% (P40) / 47.5% (A2000), max 135% / 106.3%");

        sgdrc_bench::header(&format!("Fig. 15b — extra registers CDF on {}", spec.name));
        let mut regs = Vec::new();
        for id in ModelId::all() {
            let mut m = build(id);
            dnn::compiler::apply_coloring(&mut m, &spec, false);
            regs.extend(m.kernels.iter().map(|k| k.extra_registers));
        }
        let total = regs.len();
        let zero = regs.iter().filter(|&&r| r == 0).count();
        let under5 = regs.iter().filter(|&&r| r < 5).count();
        let over10 = regs.iter().filter(|&&r| r > 10).count();
        println!(
            "kernels={} | zero: {:.1}%  <5: {:.1}%  >10: {:.1}% (paper: ~80% zero, >90% under 5)",
            total,
            zero as f64 / total as f64 * 100.0,
            under5 as f64 / total as f64 * 100.0,
            over10 as f64 / total as f64 * 100.0
        );
    }
}
