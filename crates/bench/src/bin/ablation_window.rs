//! Ablation: tidal sliding-window length (§7.1).
use gpu_spec::GpuModel;
use sgdrc_core::SgdrcConfig;
use workload::runner::{run_system, Deployment, EndToEndConfig, Load, SystemKind};

fn main() {
    sgdrc_bench::header("ablation — sliding window length (A2000, heavy)");
    let dep = Deployment::cached(GpuModel::RtxA2000);
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "window", "SLO att.", "BE (s/s)", "overall"
    );
    for window in [1usize, 2, 4, 8, 16] {
        let mut cfg = EndToEndConfig::new(GpuModel::RtxA2000, Load::Heavy);
        cfg.horizon_us = 3e6;
        cfg.sgdrc = SgdrcConfig {
            window,
            ..Default::default()
        };
        let r = run_system(&dep, &cfg, SystemKind::Sgdrc);
        println!(
            "{window:>8} {:>10.3} {:>12.1} {:>10.1}",
            r.mean_slo_attainment(),
            r.total_be_throughput(),
            r.overall_throughput_hz
        );
    }
}
