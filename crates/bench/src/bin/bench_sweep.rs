//! Cluster-scale sweep benchmark: thousands of short co-location cells,
//! naive per-cell loop vs. the sweep engine. Writes `BENCH_sweep.json`.
//!
//! Three arms over the identical cell grid:
//!
//! * `naive` — the from-scratch per-cell loop: every cell compiles and
//!   profiles its own deployment, regenerates its trace, builds fresh
//!   policies and simulation storage, and sorts its latency populations
//!   for percentiles. This is what a sweep cost before any of the
//!   workspace's caching existed — the headline baseline.
//! * `naive_cached` — the same loop on the post-PR-2 API: deployments
//!   come from `Deployment::cached`, everything else is still rebuilt
//!   per cell. Reported so the reuse/streaming win is visible separately
//!   from the deployment-cache win.
//! * `sweep` — `workload::sweep::run_sweep`: reusable per-chunk
//!   `SimContext`s, shared traces, reconfigurable policies, streaming
//!   histogram percentiles, chunked `rayon` fan-out.
//!
//! Every arm must produce identical exact counts per cell (asserted),
//! with sweep p99s within the sketch's documented error of the exact
//! sorted p99s. `--smoke` shrinks the grid and skips the speedup gate;
//! CI runs it on every push.

use gpu_spec::GpuModel;
use sgdrc_bench::json::Json;
use sgdrc_core::serving::SimContext;
use sgdrc_core::{Sgdrc, SgdrcConfig};
use std::time::Instant;
use workload::metrics::{HIST_BINS, HIST_REL_ERROR};
use workload::runner::Deployment;
use workload::sweep::{
    naive_cell_summary, run_sweep, CellSpec, CellSummary, SweepGrid, SweepOptions,
};

/// Sequential per-cell loop; `fresh_deployment` selects the `naive`
/// (compile per cell) vs. `naive_cached` (memoized deployments) arm.
fn naive_loop(cells: &[CellSpec], fresh_deployment: bool) -> (Vec<CellSummary>, f64) {
    let start = Instant::now();
    let summaries: Vec<CellSummary> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            if fresh_deployment {
                let dep = Deployment::new(cell.gpu);
                naive_cell_summary(i, cell, &dep)
            } else {
                naive_cell_summary(i, cell, &Deployment::cached(cell.gpu))
            }
        })
        .collect();
    (summaries, start.elapsed().as_secs_f64())
}

/// Allocation-sensitive setup probe: a near-empty cell (tiny horizon,
/// so per-run setup dominates simulation) driven through a fresh
/// `SimContext` per run vs. one reused context. Best-of-3 batches per
/// arm. Returns (fresh µs/run, reused µs/run).
fn context_reuse_probe(gpu: GpuModel) -> (f64, f64) {
    use sgdrc_core::serving::{run_in_context, ArrivalTrace, Scenario};
    use std::sync::Arc;
    use workload::trace::{per_service_traces, TraceConfig};
    let dep = Deployment::cached(gpu);
    let horizon_us = 1e3;
    let trace = Arc::new(ArrivalTrace::new(per_service_traces(
        &TraceConfig::apollo_like(),
        dep.ls_tasks.len(),
        horizon_us,
        0xA110C,
    )));
    let _ = trace.merged();
    let scenario = Scenario {
        spec: dep.spec.clone(),
        ls: Arc::clone(&dep.ls_tasks),
        be: dep.be_singleton(0),
        ls_instances: 4,
        arrivals: trace,
        horizon_us,
    };
    let mut policy = Sgdrc::new(&dep.spec, SgdrcConfig::default());
    const REPS: usize = 2000;
    let mut fresh_us = f64::INFINITY;
    let mut reused_us = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..REPS {
            let mut ctx = SimContext::new();
            std::hint::black_box(run_in_context(&mut policy, &scenario, &mut ctx));
        }
        fresh_us = fresh_us.min(t.elapsed().as_secs_f64() * 1e6 / REPS as f64);
        let mut ctx = SimContext::new();
        let t = Instant::now();
        for _ in 0..REPS {
            let stats = run_in_context(&mut policy, &scenario, &mut ctx);
            ctx.recycle(std::hint::black_box(stats));
        }
        reused_us = reused_us.min(t.elapsed().as_secs_f64() * 1e6 / REPS as f64);
    }
    (fresh_us, reused_us)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ≥ 2000 short cells in the full grid: every GPU × load × supported
    // system × BE co-location (102 cells) × 20 trace replications.
    let grid = if smoke {
        SweepGrid::fig17_style(6e3, 1)
    } else {
        SweepGrid::fig17_style(1.2e4, 20)
    };
    let cells = grid.cells();
    sgdrc_bench::header("BENCH_sweep — cluster-scale short-cell grid");
    println!(
        "{} cells: {} GPUs × {} loads × systems × {} BE × {} reps, horizon {}µs{}",
        cells.len(),
        grid.gpus.len(),
        grid.loads.len(),
        grid.be_indices.len(),
        grid.replications,
        grid.horizon_us,
        if smoke { " (smoke)" } else { "" }
    );

    // Deployment setup: cold compile+profile vs. memoized hit.
    let t = Instant::now();
    let dep = Deployment::cached(GpuModel::RtxA2000);
    let dep_cold_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let again = Deployment::cached(GpuModel::RtxA2000);
    let dep_hit_s = t.elapsed().as_secs_f64();
    assert!(std::sync::Arc::ptr_eq(&dep, &again));
    drop((dep, again));

    // Warm the sweep path (and the remaining deployments) outside the
    // measured region so neither cached arm pays first-touch compiles.
    let warm_cells = SweepGrid {
        replications: 1,
        ..grid.clone()
    }
    .cells();
    let _ = run_sweep(&warm_cells, &SweepOptions::default());

    let t = Instant::now();
    let swept = run_sweep(&cells, &SweepOptions::default());
    let sweep_wall = t.elapsed().as_secs_f64();

    let (cached_summaries, cached_wall) = naive_loop(&cells, false);
    let (naive_summaries, naive_wall) = naive_loop(&cells, true);

    // Equivalence: the two naive arms are bit-identical; the sweep arm
    // matches them exactly on every count and within the sketch bound on
    // p99.
    assert_eq!(
        naive_summaries, cached_summaries,
        "fresh and cached deployments must yield identical cells"
    );
    assert_eq!(swept.cells.len(), naive_summaries.len());
    for (n, s) in naive_summaries.iter().zip(&swept.cells) {
        assert_eq!(n.ls_requests, s.ls_requests, "cell {}", n.index);
        assert_eq!(n.slo_met, s.slo_met, "cell {}", n.index);
        assert_eq!(n.be_completed, s.be_completed, "cell {}", n.index);
        assert_eq!(n.be_preemptions, s.be_preemptions, "cell {}", n.index);
        assert_eq!(n.engine_events, s.engine_events, "cell {}", n.index);
        assert!(
            (n.worst_p99_us - s.worst_p99_us).abs() <= n.worst_p99_us * HIST_REL_ERROR + 1e-9,
            "cell {}: exact p99 {} vs sketch {}",
            n.index,
            n.worst_p99_us,
            s.worst_p99_us
        );
    }

    let cells_n = cells.len() as f64;
    let naive_cps = cells_n / naive_wall;
    let cached_cps = cells_n / cached_wall;
    let sweep_cps = cells_n / sweep_wall;
    let speedup = sweep_cps / naive_cps;
    let speedup_vs_cached = sweep_cps / cached_cps;
    println!("naive (per-cell compile):   {naive_wall:>7.2}s = {naive_cps:>7.1} cells/s");
    println!("naive (cached deployment):  {cached_wall:>7.2}s = {cached_cps:>7.1} cells/s");
    println!("sweep engine:               {sweep_wall:>7.2}s = {sweep_cps:>7.1} cells/s");
    println!("cells/sec speedup: {speedup:.2}× vs naive (target ≥ 1.5×), {speedup_vs_cached:.2}× vs cached-deployment loop");

    let (fresh_us, reused_us) = context_reuse_probe(GpuModel::RtxA2000);
    println!(
        "context setup probe: fresh {fresh_us:.1}µs/run vs reused {reused_us:.1}µs/run ({:.2}×)",
        fresh_us / reused_us
    );

    let threads = sgdrc_bench::ThreadAttribution::capture();
    let (detected_cpus, worker_threads) = (threads.detected_cpus, threads.worker_threads);
    println!(
        "detected_cpus={detected_cpus} worker_threads={worker_threads} {}={}",
        rayon::THREADS_ENV,
        threads.env.as_deref().unwrap_or("<unset>")
    );

    let arm = |wall: f64| {
        Json::obj()
            .set("wall_s", wall)
            .set("cells_per_sec", cells_n / wall)
    };
    let doc = Json::obj()
        .set("benchmark", "sweep_short_cell_grid")
        .set(
            "grid",
            "all GPUs × both loads × supported systems × 3 BE co-locations × replications",
        )
        .set("cells", cells.len())
        .set("horizon_us", grid.horizon_us)
        .set("replications", grid.replications)
        .set("smoke", smoke)
        .set("detected_cpus", detected_cpus)
        .set("worker_threads", worker_threads)
        .set("sgdrc_threads_env", threads.env_json())
        .set("chunk_size", swept.chunk_size)
        .set(
            "naive",
            arm(naive_wall).set(
                "mode",
                "per-cell compile+profile, fresh everything, sorted percentiles",
            ),
        )
        .set(
            "naive_cached_deployment",
            arm(cached_wall).set("mode", "memoized deployments, fresh everything else"),
        )
        .set(
            "sweep",
            arm(sweep_wall)
                .set(
                    "mode",
                    "reusable per-chunk contexts, shared traces, streaming histogram metrics",
                )
                // The parallel arm's effective worker count, flagged when
                // an SGDRC_THREADS override makes it differ from the
                // detected CPUs: a multi-core cells/sec curve collected by
                // sweeping the override is attributable from this section
                // alone.
                .set("effective_threads", threads.worker_threads)
                .set("threads_overridden", threads.overridden()),
        )
        .set("cells_per_sec_speedup", speedup)
        .set("cells_per_sec_speedup_vs_cached", speedup_vs_cached)
        .set(
            "setup",
            Json::obj()
                .set("deployment_cold_compile_s", dep_cold_s)
                .set("deployment_memoized_hit_s", dep_hit_s)
                .set("fresh_context_run_us", fresh_us)
                .set("reused_context_run_us", reused_us),
        )
        .set(
            "latency_sketch",
            Json::obj()
                .set("bins", HIST_BINS)
                .set("documented_rel_error", HIST_REL_ERROR)
                .set("samples", swept.latency_hist.count())
                .set("grid_p50_us", swept.latency_hist.percentile(50.0))
                .set("grid_p99_us", swept.latency_hist.percentile(99.0))
                // The same population per (GPU, system) slice — the
                // percentile surface the grid-wide sketch cannot answer.
                .set(
                    "slices",
                    Json::Arr(
                        swept
                            .slices
                            .iter()
                            .map(|s| {
                                Json::obj()
                                    .set("gpu", s.gpu.name())
                                    .set("system", s.system.name())
                                    .set("samples", s.hist.count())
                                    .set("p50_us", s.hist.percentile(50.0))
                                    .set("p99_us", s.hist.percentile(99.0))
                            })
                            .collect(),
                    ),
                ),
        )
        .set("total_engine_events", swept.total_events);
    std::fs::write("BENCH_sweep.json", doc.pretty()).expect("write BENCH_sweep.json");
    println!("\nwrote BENCH_sweep.json");

    if !smoke && speedup < 1.5 {
        eprintln!("WARNING: sweep speedup {speedup:.2}× below the 1.5× target");
        std::process::exit(1);
    }
}
