//! Fig. 17: end-to-end evaluation — LS p99 latency, SLO attainment and
//! normalized throughput for every system on both GPUs and both loads.
//! Writes machine-readable results to `fig17_results.json`.
use gpu_spec::GpuModel;
use workload::runner::{run_cell, Deployment, EndToEndConfig, Load};

fn main() {
    let mut all = Vec::new();
    for gpu in GpuModel::testbeds() {
        let dep = Deployment::cached(gpu);
        for load in [Load::Heavy, Load::Light] {
            let mut cfg = EndToEndConfig::new(gpu, load);
            cfg.horizon_us = 4e6;
            sgdrc_bench::header(&format!(
                "Fig. 17 — {} / {} workload",
                dep.spec.name,
                load.name()
            ));
            let mut results = run_cell(&dep, &cfg);
            results.sort_by(|a, b| a.system.cmp(&b.system));
            println!(
                "{:<16} {:>8} {:>10} {:>10} {:>10}",
                "system", "SLO att.", "BE tp (s/s)", "overall", "p99 A (µs)"
            );
            for r in &results {
                println!(
                    "{:<16} {:>8.3} {:>10.1} {:>10.1} {:>10.0}",
                    r.system,
                    r.mean_slo_attainment(),
                    r.total_be_throughput(),
                    r.overall_throughput_hz,
                    r.ls[0].p99_latency_us
                );
            }
            println!("\nper-LS-model p99 latency (µs) / SLO attainment:");
            print!("{:<16}", "system");
            for m in &results[0].ls {
                print!(" {:>14}", m.model);
            }
            println!();
            for r in &results {
                print!("{:<16}", r.system);
                for m in &r.ls {
                    print!(" {:>7.0}/{:>5.2}", m.p99_latency_us, m.slo_attainment);
                }
                println!();
            }
            println!("\nper-BE-model throughput (samples/s):");
            for r in &results {
                let row: Vec<String> = r
                    .be_throughput_hz
                    .iter()
                    .map(|(n, t)| format!("{n}={t:.0}"))
                    .collect();
                println!("{:<16} {}", r.system, row.join("  "));
            }
            all.extend(results);
        }
    }
    let doc = sgdrc_bench::json::Json::Arr(
        all.iter()
            .map(sgdrc_bench::json::system_result_json)
            .collect(),
    );
    std::fs::write("fig17_results.json", doc.pretty()).expect("write results");
    println!("\nwrote fig17_results.json");
}
