//! §5.3: the DNN hash learner — 15K noisy samples, >99.9% test accuracy —
//! plus the period-finding ablation.
use gpu_spec::GpuModel;
use reveng::learner::{
    oracle_test_set, synthetic_samples, MlpConfig, MlpHashLearner, PeriodLearner,
};

fn main() {
    sgdrc_bench::header("§5.3 — learning the VRAM channel hash mapping");
    for model in [GpuModel::TeslaP40, GpuModel::RtxA2000] {
        let spec = model.spec();
        let oracle = model.channel_hash();
        let span = 1u64 << 20;
        let noise = spec.cache_noise_rate;
        let train = synthetic_samples(oracle.as_ref(), span, 15_000, noise, 1);
        let test = oracle_test_set(oracle.as_ref(), span, 10_000, 2);

        let mlp = MlpHashLearner::train(&train, &MlpConfig::default());
        let acc = mlp.accuracy(&test);
        println!(
            "{:<10} MLP:    {:.3}% test accuracy (15K samples, {:.0}% label noise; paper: >99.9%)",
            spec.name,
            acc * 100.0,
            noise * 100.0
        );

        let period = PeriodLearner::train(&train, 1024, 0.002);
        println!(
            "{:<10} period: {:.3}% accuracy (detected period {} partitions, consistency {:.3})",
            spec.name,
            period.accuracy(&test) * 100.0,
            period.period,
            period.consistency
        );
    }
}
