//! Tab. 4 + §A.3: coloring granularities and the allocation rules.
use coloring::{granularity_for_allocation, valid_granularities};
use gpu_spec::GpuModel;

fn main() {
    sgdrc_bench::header("Tab. 4 — coloring granularities");
    for m in GpuModel::all() {
        println!("{}", m.spec().tab4_row());
    }
    sgdrc_bench::header("§A.3 — granularity per allocated channel count");
    for m in GpuModel::all() {
        let spec = m.spec();
        let valid: Vec<String> = valid_granularities(&spec)
            .iter()
            .map(|g| format!("{} KiB", g.0))
            .collect();
        println!(
            "{:<10} valid granularities: {}",
            spec.name,
            valid.join(", ")
        );
        for ch in 1..=spec.num_channels {
            let g = granularity_for_allocation(&spec, ch);
            println!("  {ch:>2} channels -> {} KiB", g.0);
        }
    }
}
