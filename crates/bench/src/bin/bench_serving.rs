//! Serving-layer before/after benchmark: the seed scan/clone serving
//! path (per-event O(n_ls) arrival scans, full re-admission walks, deep
//! task/trace clones per scenario) vs. the merged-stream, `Arc`-shared
//! path, on a Fig. 17 heavy-load sweep. Also times deployment setup
//! (compile + profile) cold vs. through the memoized builder. Writes
//! `BENCH_serving.json` so every future PR has a serving-layer perf
//! trajectory to compare against.
//!
//! `--smoke` runs a tiny horizon and skips the speedup gate; CI uses it
//! on every push so the harness and the JSON emitter cannot silently rot.

use exec_sim::RateMode;
use gpu_spec::GpuModel;
use sgdrc_bench::json::Json;
use sgdrc_core::serving::{run_configured, RunStats, Scenario, ServingMode};
use std::sync::Arc;
use std::time::Instant;
use workload::runner::{cell_trace, Deployment, EndToEndConfig, Load, SystemKind};
use workload::trace::{per_service_traces, TraceConfig};

struct Sweep {
    events: u64,
    scenarios: usize,
    wall_s: f64,
    stats: Vec<RunStats>,
    /// (system name, events, wall seconds) per system — where the sweep
    /// time actually goes.
    per_system: Vec<(&'static str, u64, f64)>,
}

/// The seed serving layer, reproduced faithfully: the trace is
/// regenerated per system, and every BE co-location scenario deep-clones
/// the full LS task set (compiled models, profiles, kernel lists) and
/// all arrival lists — exactly what `runner.rs` did before the refactor.
/// The loop itself runs `ServingMode::Seed` (per-event arrival scan plus
/// a full re-admission walk after every event).
fn sweep_seed(dep: &Deployment, cfg: &EndToEndConfig) -> Sweep {
    let start = Instant::now();
    let mut sweep = Sweep {
        events: 0,
        scenarios: 0,
        wall_s: 0.0,
        stats: Vec::new(),
        per_system: Vec::new(),
    };
    for system in SystemKind::all() {
        if !system.supported_on(&dep.spec) {
            continue;
        }
        let sys_start = Instant::now();
        let mut sys_events = 0u64;
        let trace_cfg = TraceConfig::apollo_like().scaled(cfg.load.scale());
        let arrivals = per_service_traces(&trace_cfg, dep.ls_tasks.len(), cfg.horizon_us, cfg.seed);
        for i in 0..dep.be_tasks.len() {
            let scenario = Scenario::new(
                dep.spec.clone(),
                dep.ls_tasks.to_vec(),
                vec![dep.be_tasks[i].clone()],
                cfg.ls_instances,
                arrivals.clone(),
                cfg.horizon_us,
            );
            let mut policy = system.make(&dep.spec);
            let stats = run_configured(
                policy.as_mut(),
                &scenario,
                RateMode::Fast,
                ServingMode::Seed,
            );
            sys_events += stats.engine_events;
            sweep.scenarios += 1;
            sweep.stats.push(stats);
        }
        sweep.events += sys_events;
        sweep
            .per_system
            .push((system.name(), sys_events, sys_start.elapsed().as_secs_f64()));
    }
    sweep.wall_s = start.elapsed().as_secs_f64();
    sweep
}

/// The refactored path: one shared trace per cell, `Arc`ed task sets
/// (scenario construction is pointer bumps), the pre-merged arrival
/// stream and incremental admission.
fn sweep_fast(dep: &Deployment, cfg: &EndToEndConfig) -> Sweep {
    let start = Instant::now();
    let mut sweep = Sweep {
        events: 0,
        scenarios: 0,
        wall_s: 0.0,
        stats: Vec::new(),
        per_system: Vec::new(),
    };
    let trace = cell_trace(dep, cfg);
    for system in SystemKind::all() {
        if !system.supported_on(&dep.spec) {
            continue;
        }
        let sys_start = Instant::now();
        let mut sys_events = 0u64;
        for i in 0..dep.be_tasks.len() {
            let scenario = Scenario {
                spec: dep.spec.clone(),
                ls: Arc::clone(&dep.ls_tasks),
                be: dep.be_singleton(i),
                ls_instances: cfg.ls_instances,
                arrivals: Arc::clone(&trace),
                horizon_us: cfg.horizon_us,
            };
            let mut policy = system.make(&dep.spec);
            let stats = run_configured(
                policy.as_mut(),
                &scenario,
                RateMode::Fast,
                ServingMode::Fast,
            );
            sys_events += stats.engine_events;
            sweep.scenarios += 1;
            sweep.stats.push(stats);
        }
        sweep.events += sys_events;
        sweep
            .per_system
            .push((system.name(), sys_events, sys_start.elapsed().as_secs_f64()));
    }
    sweep.wall_s = start.elapsed().as_secs_f64();
    sweep
}

fn arm_json(label: &str, s: &Sweep) -> Json {
    let mut per_system = Json::obj();
    for &(name, events, wall) in &s.per_system {
        per_system = per_system.set(
            name,
            Json::obj()
                .set("events", events)
                .set("wall_s", wall)
                .set("events_per_sec", events as f64 / wall),
        );
    }
    Json::obj()
        .set("mode", label)
        .set("events", s.events)
        .set("scenarios", s.scenarios)
        .set("wall_s", s.wall_s)
        .set("events_per_sec", s.events as f64 / s.wall_s)
        .set("scenarios_per_sec", s.scenarios as f64 / s.wall_s)
        .set("per_system", per_system)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gpu = GpuModel::RtxA2000;

    // Deployment setup: cold compile + profile of the 11-model zoo vs. a
    // memoized-builder hit.
    sgdrc_bench::header("BENCH_serving — deployment setup");
    let t = Instant::now();
    let dep = Deployment::cached(gpu);
    let setup_cold_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let dep_again = Deployment::cached(gpu);
    let setup_cached_s = t.elapsed().as_secs_f64();
    assert!(
        Arc::ptr_eq(&dep, &dep_again),
        "memoized builder must return the cached deployment"
    );
    println!("cold compile+profile: {setup_cold_s:.3}s; memoized hit: {setup_cached_s:.6}s");

    let mut cfg = EndToEndConfig::new(gpu, Load::Heavy);
    // Long enough that each sweep arm runs for a sizeable fraction of a
    // second — short sweeps are dominated by scheduler noise on small
    // boxes and the before/after ratio becomes a coin flip.
    cfg.horizon_us = if smoke { 3e4 } else { 4.0e6 };

    sgdrc_bench::header("BENCH_serving — fig17-style heavy sweep, before/after");
    println!(
        "gpu={} load={} horizon={}µs{}",
        dep.spec.name,
        cfg.load.name(),
        cfg.horizon_us,
        if smoke { " (smoke)" } else { "" }
    );

    // Warm once, then measure: best of three alternating passes per arm,
    // so a stray scheduler hiccup on either side doesn't decide the
    // comparison (runs are deterministic, so every rep produces the same
    // stats and only the wall time varies).
    let _ = sweep_fast(&dep, &cfg);
    let mut before = sweep_seed(&dep, &cfg);
    let mut after = sweep_fast(&dep, &cfg);
    for _ in 0..2 {
        let b = sweep_seed(&dep, &cfg);
        if b.wall_s < before.wall_s {
            before = b;
        }
        let a = sweep_fast(&dep, &cfg);
        if a.wall_s < after.wall_s {
            after = a;
        }
    }

    // The two serving paths must be indistinguishable in results — same
    // completions, same preemptions, same event counts, per scenario.
    assert_eq!(
        before.stats, after.stats,
        "seed and fast serving paths diverged"
    );

    let before_eps = before.events as f64 / before.wall_s;
    let after_eps = after.events as f64 / after.wall_s;
    let events_speedup = after_eps / before_eps;
    let scenarios_speedup =
        (after.scenarios as f64 / after.wall_s) / (before.scenarios as f64 / before.wall_s);
    println!(
        "before (seed scan/clone): {} events, {} scenarios in {:.2}s = {:.0} events/s",
        before.events, before.scenarios, before.wall_s, before_eps
    );
    println!(
        "after  (merged, shared):  {} events, {} scenarios in {:.2}s = {:.0} events/s",
        after.events, after.scenarios, after.wall_s, after_eps
    );
    println!("events/sec speedup: {events_speedup:.2}× (target ≥ 1.3×)");
    println!("scenarios/sec speedup: {scenarios_speedup:.2}×");
    println!("\nper-system events/s (before → after):");
    for (&(name, b_ev, b_wall), &(_, a_ev, a_wall)) in
        before.per_system.iter().zip(&after.per_system)
    {
        println!(
            "  {name:<16} {:>9.0} → {:>9.0}  ({:.2}×)",
            b_ev as f64 / b_wall,
            a_ev as f64 / a_wall,
            (a_ev as f64 / a_wall) / (b_ev as f64 / b_wall)
        );
    }

    let detected_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let doc = Json::obj()
        .set("benchmark", "serving_fig17_sweep")
        .set("gpu", dep.spec.name)
        .set("load", cfg.load.name())
        .set("horizon_us", cfg.horizon_us)
        .set("smoke", smoke)
        .set("detected_cpus", detected_cpus)
        .set(
            "scenarios",
            "all supported systems × 3 BE co-locations, sequential",
        )
        .set(
            "setup",
            Json::obj()
                .set("cold_compile_profile_s", setup_cold_s)
                .set("memoized_hit_s", setup_cached_s),
        )
        .set(
            "before",
            arm_json("seed (arrival scan + deep clones)", &before),
        )
        .set(
            "after",
            arm_json("fast (merged stream + Arc sharing)", &after),
        )
        .set("events_per_sec_speedup", events_speedup)
        .set("scenarios_per_sec_speedup", scenarios_speedup);
    std::fs::write("BENCH_serving.json", doc.pretty()).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");

    if !smoke && events_speedup.max(scenarios_speedup) < 1.3 {
        eprintln!("WARNING: serving speedup {events_speedup:.2}× below the 1.3× target");
        std::process::exit(1);
    }
}
