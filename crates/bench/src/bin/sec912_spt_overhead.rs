//! §9.1.2: shadow-page-table overheads — per-kernel runtime (paper: 2.9%
//! average) and end-to-end inference (~0.5%).
use dnn::zoo::{build, ModelId};
use dnn::CompileOptions;
use gpu_spec::GpuModel;

fn main() {
    for gpu in GpuModel::testbeds() {
        let spec = gpu.spec();
        sgdrc_bench::header(&format!("§9.1.2 — SPT overhead on {}", spec.name));
        let mut kernel_overheads = Vec::new();
        let mut e2e_overheads = Vec::new();
        for id in ModelId::all() {
            let plain = dnn::compile(
                build(id),
                &spec,
                CompileOptions {
                    coloring: false,
                    ..Default::default()
                },
            );
            let colored = dnn::compile(build(id), &spec, CompileOptions::default());
            let mut plain_e2e = 0.0;
            let mut colored_e2e = 0.0;
            for (kp, kc) in plain.kernels.iter().zip(&colored.kernels) {
                let tp = dnn::isolated_runtime_us(kp, &spec);
                let tc = dnn::isolated_runtime_us(kc, &spec);
                plain_e2e += tp;
                colored_e2e += tc;
                if kc.colored {
                    kernel_overheads.push(tc / tp - 1.0);
                }
            }
            e2e_overheads.push(colored_e2e / plain_e2e - 1.0);
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "transformed kernels: {} | mean kernel overhead {:.2}% (paper: 2.9%)",
            kernel_overheads.len(),
            mean(&kernel_overheads) * 100.0
        );
        println!(
            "mean end-to-end overhead {:.2}% (paper: ~0.5%)",
            mean(&e2e_overheads) * 100.0
        );
    }
}
