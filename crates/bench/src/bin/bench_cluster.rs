//! Fleet-simulator benchmark: an 8-replica heterogeneous fleet under a
//! diurnal+burst trace, every sharing system × routing policy, plus an
//! N-replica scaling curve. Writes `BENCH_cluster.json`.
//!
//! The headline question is the cluster layer's: with a fleet of
//! spatially-shared GPUs behind one arrival stream, how much fleet-wide
//! goodput and tail latency does the *router* buy, and what does the
//! fleet controller's dynamic BE placement cost or save? Replicas mix
//! GPU models (RTX A2000 + GTX 1080), so blind round-robin overloads the
//! slow third of the fleet during bursts while backlog/SLO-aware routing
//! shifts load — the gate at the bottom asserts join-shortest-backlog or
//! SLO-aware p2c beats round-robin on fleet p99 for SGDRC.
//!
//! `--smoke` shrinks horizons and skips the gate; CI runs it on every
//! push.

use gpu_spec::GpuModel;
use sgdrc_bench::json::Json;
use sgdrc_core::serving::SimContext;
use std::time::Instant;
use workload::cluster::{ClusterConfig, ControllerConfig, RouterKind};
use workload::runner::Deployment;
use workload::trace::TraceConfig;
use workload::SystemKind;

/// The heterogeneous headline fleet: two thirds current-generation
/// cards, one third older slower ones — the mix a real cluster ages
/// into. (The P40 sits out because MPS does not run on it, §9.3.)
fn headline_fleet() -> Vec<GpuModel> {
    vec![
        GpuModel::RtxA2000,
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
    ]
}

/// The diurnal+burst cluster stream: Apollo bursts sharpened, plus a
/// ±35% diurnal swing sized so the horizon sees a full cycle.
fn fleet_trace(per_service_scale: f64, horizon_us: f64) -> TraceConfig {
    TraceConfig::apollo_like()
        .scaled(per_service_scale)
        .with_bursts(2.2, 0.25)
        .with_diurnal(0.35, horizon_us / 1e6 / 1.5)
}

struct FleetRun {
    goodput_hz: f64,
    p99_us: f64,
    slo_attainment: f64,
    requests: u64,
    be_completed: u64,
    be_migrations: usize,
    be_preemptions: u64,
    engine_events: u64,
    wall_s: f64,
}

fn run_fleet(cfg: &ClusterConfig, kind: RouterKind, ctxs: &mut Vec<SimContext>) -> FleetRun {
    let mut router = kind.make(cfg.seed);
    let start = Instant::now();
    let result = workload::run_cluster_in(cfg, router.as_mut(), ctxs);
    let wall_s = start.elapsed().as_secs_f64();
    FleetRun {
        goodput_hz: result.goodput_hz,
        p99_us: result.fleet_percentile(99.0),
        slo_attainment: result.slo_attainment(),
        requests: result.requests,
        be_completed: result.be_completed,
        be_migrations: result.migrations.len(),
        be_preemptions: result.be_preemptions,
        engine_events: result.engine_events,
        wall_s,
    }
}

fn fleet_json(r: &FleetRun) -> Json {
    Json::obj()
        .set("goodput_hz", r.goodput_hz)
        .set("fleet_p99_us", r.p99_us)
        .set("slo_attainment", r.slo_attainment)
        .set("requests", r.requests)
        .set("be_completed", r.be_completed)
        .set("be_migrations", r.be_migrations)
        .set("be_preemptions", r.be_preemptions)
        .set("engine_events", r.engine_events)
        .set("wall_s", r.wall_s)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let horizon_us = if smoke { 2.5e5 } else { 3e6 };
    let fleet = headline_fleet();

    sgdrc_bench::header("BENCH_cluster — 8-replica fleet, systems × routers");
    println!(
        "fleet: {} replicas ({} A2000 + {} GTX 1080), horizon {horizon_us}µs{}",
        fleet.len(),
        fleet.iter().filter(|&&g| g == GpuModel::RtxA2000).count(),
        fleet.iter().filter(|&&g| g == GpuModel::Gtx1080).count(),
        if smoke { " (smoke)" } else { "" }
    );

    // Warm the deployments outside every measured region.
    for &g in &[GpuModel::RtxA2000, GpuModel::Gtx1080] {
        let _ = Deployment::cached(g);
    }

    let base = {
        let mut cfg = ClusterConfig::new(fleet.clone(), SystemKind::Sgdrc);
        cfg.horizon_us = horizon_us;
        cfg.trace = fleet_trace(5.5, horizon_us);
        cfg.controller = ControllerConfig {
            period_us: 5e4,
            adaptive_ch_be: true,
            ..Default::default()
        };
        cfg
    };

    // --- systems × routers matrix ----------------------------------------
    let mut ctxs: Vec<SimContext> = Vec::new();
    let mut systems_json = Json::obj();
    let mut sgdrc_p99 = Vec::new();
    for system in SystemKind::all() {
        let mut cfg = base.clone();
        cfg.system = system;
        let mut row = Json::obj();
        for kind in RouterKind::all() {
            let r = run_fleet(&cfg, kind, &mut ctxs);
            println!(
                "{:>16} × {:>16}: goodput {:>7.1}/s  p99 {:>9.0}µs  SLO {:>5.1}%  BE {:>5}  mig {:>3}  {:>5.2}s",
                system.name(),
                kind.name(),
                r.goodput_hz,
                r.p99_us,
                r.slo_attainment * 100.0,
                r.be_completed,
                r.be_migrations,
                r.wall_s
            );
            if system == SystemKind::Sgdrc {
                sgdrc_p99.push((kind, r.p99_us));
            }
            row = row.set(kind.name(), fleet_json(&r));
        }
        systems_json = systems_json.set(system.name(), row);
    }

    // --- N-replica scaling curve ------------------------------------------
    // Homogeneous A2000 fleets with load scaled ∝ N: fleet capacity
    // (simulated completions/s) should grow ~linearly while the simulator
    // itself reports wall-clock throughput for the perf trajectory.
    sgdrc_bench::header("scaling curve — SGDRC × shortest-backlog");
    let sizes: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8, 16] };
    let scaling_horizon = if smoke { 2e5 } else { 1.5e6 };
    let mut points = Vec::new();
    for &nrep in sizes {
        let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; nrep], SystemKind::Sgdrc);
        cfg.horizon_us = scaling_horizon;
        cfg.trace = fleet_trace(0.9 * nrep as f64, scaling_horizon);
        cfg.controller.period_us = 5e4;
        let mut fresh = Vec::new();
        let r = run_fleet(&cfg, RouterKind::ShortestBacklog, &mut fresh);
        let sim_req_per_s = r.requests as f64 / (scaling_horizon / 1e6);
        println!(
            "{nrep} replica(s): {:>8.1} served req/s (sim)  goodput {:>8.1}/s  {:>9.0} events/s (wall)",
            sim_req_per_s,
            r.goodput_hz,
            r.engine_events as f64 / r.wall_s
        );
        points.push(
            Json::obj()
                .set("replicas", nrep)
                .set("trace_scale", 0.9 * nrep as f64)
                .set("served_requests_per_sim_s", sim_req_per_s)
                .set("goodput_hz", r.goodput_hz)
                .set("slo_attainment", r.slo_attainment)
                .set("wall_s", r.wall_s)
                .set("events_per_wall_s", r.engine_events as f64 / r.wall_s),
        );
    }

    // The scaling-curve section records the *effective* worker count
    // (the SGDRC_THREADS override when set), so multi-core runs on real
    // hardware attribute their curves to an actual thread count.
    let threads = sgdrc_bench::ThreadAttribution::capture();
    let (detected_cpus, worker_threads) = (threads.detected_cpus, threads.worker_threads);
    let scaling_json = Json::obj()
        .set("system", "SGDRC")
        .set("router", "shortest_backlog")
        .set("horizon_us", scaling_horizon)
        .set("points", Json::Arr(points));
    let scaling_json = threads.annotate(scaling_json);

    // --- routing gate ------------------------------------------------------
    let rr = sgdrc_p99
        .iter()
        .find(|(k, _)| *k == RouterKind::RoundRobin)
        .expect("rr ran")
        .1;
    let best_alt = sgdrc_p99
        .iter()
        .filter(|(k, _)| *k != RouterKind::RoundRobin)
        .map(|&(_, p)| p)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nrouting gate (SGDRC): round-robin p99 {rr:.0}µs vs best load-aware {best_alt:.0}µs ({:.2}×)",
        rr / best_alt
    );

    let doc = Json::obj()
        .set("benchmark", "cluster_fleet")
        .set("smoke", smoke)
        .set(
            "fleet",
            Json::obj()
                .set("replicas", fleet.len())
                .set(
                    "gpus",
                    Json::Arr(fleet.iter().map(|g| Json::Str(g.name().into())).collect()),
                )
                .set("horizon_us", horizon_us)
                .set("per_service_trace_scale", 5.5)
                .set(
                    "trace",
                    Json::obj()
                        .set("shape", "apollo bursts ×2.2 duty 0.25 + diurnal ±35%")
                        .set("mean_rate_hz_per_service", base.trace.mean_rate_hz)
                        .set("burst_factor", base.trace.burst_factor)
                        .set("burst_duty", base.trace.burst_duty)
                        .set("diurnal_depth", base.trace.diurnal_depth)
                        .set("diurnal_period_s", base.trace.diurnal_period_s),
                )
                .set(
                    "controller",
                    Json::obj()
                        .set("period_us", base.controller.period_us)
                        .set("breach_ratio", base.controller.breach_ratio)
                        .set("headroom_ratio", base.controller.headroom_ratio)
                        .set("adaptive_ch_be", base.controller.adaptive_ch_be),
                ),
        )
        .set("systems", systems_json)
        .set(
            "routing_gate",
            Json::obj()
                .set("system", "SGDRC")
                .set("round_robin_p99_us", rr)
                .set("best_load_aware_p99_us", best_alt)
                .set("p99_improvement", rr / best_alt)
                .set("load_aware_beats_round_robin", best_alt < rr),
        )
        .set("scaling", scaling_json)
        .set("detected_cpus", detected_cpus)
        .set("worker_threads", worker_threads)
        .set("sgdrc_threads_env", threads.env_json());
    std::fs::write("BENCH_cluster.json", doc.pretty()).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");

    if !smoke && best_alt >= rr {
        eprintln!(
            "WARNING: load-aware routing ({best_alt:.0}µs) did not beat round-robin ({rr:.0}µs) on fleet p99"
        );
        std::process::exit(1);
    }
}
