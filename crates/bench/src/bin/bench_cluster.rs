//! Fleet-simulator benchmark: an 8-replica heterogeneous fleet under a
//! diurnal+burst trace, every sharing system × routing policy, an
//! N-replica scaling curve, a **thread-scaling** curve over the
//! parallel fleet clock, and a pool-dispatch microbenchmark. Writes
//! `BENCH_cluster.json`.
//!
//! The headline question is the cluster layer's: with a fleet of
//! spatially-shared GPUs behind one arrival stream, how much fleet-wide
//! goodput and tail latency does the *router* buy, and what does the
//! fleet controller's dynamic BE placement cost or save? Replicas mix
//! GPU models (RTX A2000 + GTX 1080), so blind round-robin overloads the
//! slow third of the fleet during bursts while backlog/SLO-aware routing
//! shifts load — the gate at the bottom asserts join-shortest-backlog or
//! SLO-aware p2c beats round-robin on fleet p99 for SGDRC.
//!
//! The thread-scaling section cannot sweep `SGDRC_THREADS` in-process —
//! the persistent pool honors it once, at build — so the binary
//! re-executes itself (`--scale-probe` / `--pool-probe`) with the env
//! set per child: every point is measured by a pool genuinely built
//! with that worker count. On a 1-CPU box the curve is recorded as
//! *oversubscribed* (threads > cores share one CPU) and the
//! pool-dispatch microbenchmark — persistent pool vs. the per-call
//! `thread::scope` dispatch it replaced — carries the perf claim
//! instead.
//!
//! `--smoke` shrinks horizons and skips the gates; CI runs it on every
//! push.

use gpu_spec::GpuModel;
use sgdrc_bench::json::Json;
use sgdrc_bench::trace_export::{perfetto_trace, validate_trace};
use std::time::Instant;
use workload::chaos::{FaultEvent, FaultKind, FaultPlan};
use workload::cluster::{
    ClockKind, ClusterConfig, ClusterCtx, ClusterResult, ControllerConfig, RouterKind,
};
use workload::elastic::{
    ElasticConfig, ScaleCause, ScaleEventKind, ScalingPolicyKind, ThresholdPolicy, WarmPoolConfig,
};
use workload::runner::Deployment;
use workload::sweep::{run_sweep, SweepGrid, SweepOptions};
use workload::telemetry::TelemetryConfig;
use workload::tiers::{TierConfig, TiersConfig};
use workload::trace::TraceConfig;
use workload::SystemKind;

/// The heterogeneous headline fleet: two thirds current-generation
/// cards, one third older slower ones — the mix a real cluster ages
/// into. (The P40 sits out because MPS does not run on it, §9.3.)
fn headline_fleet() -> Vec<GpuModel> {
    vec![
        GpuModel::RtxA2000,
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
    ]
}

/// The diurnal+burst cluster stream: Apollo bursts sharpened, plus a
/// ±35% diurnal swing sized so the horizon sees a full cycle.
fn fleet_trace(per_service_scale: f64, horizon_us: f64) -> TraceConfig {
    TraceConfig::apollo_like()
        .scaled(per_service_scale)
        .with_bursts(2.2, 0.25)
        .with_diurnal(0.35, horizon_us / 1e6 / 1.5)
}

struct FleetRun {
    goodput_hz: f64,
    p99_us: f64,
    slo_attainment: f64,
    requests: u64,
    be_completed: u64,
    be_migrations: usize,
    be_preemptions: u64,
    engine_events: u64,
    wall_s: f64,
}

fn run_fleet(cfg: &ClusterConfig, kind: RouterKind, ctx: &mut ClusterCtx) -> FleetRun {
    let mut router = kind.make(cfg.seed);
    let start = Instant::now();
    let result = workload::run_cluster_in(cfg, router.as_mut(), ctx);
    let wall_s = start.elapsed().as_secs_f64();
    FleetRun {
        goodput_hz: result.goodput_hz,
        p99_us: result.fleet_percentile(99.0),
        slo_attainment: result.slo_attainment(),
        requests: result.requests,
        be_completed: result.be_completed,
        be_migrations: result.migrations.len(),
        be_preemptions: result.be_preemptions,
        engine_events: result.engine_events,
        wall_s,
    }
}

fn fleet_json(r: &FleetRun) -> Json {
    Json::obj()
        .set("goodput_hz", r.goodput_hz)
        .set("fleet_p99_us", r.p99_us)
        .set("slo_attainment", r.slo_attainment)
        .set("requests", r.requests)
        .set("be_completed", r.be_completed)
        .set("be_migrations", r.be_migrations)
        .set("be_preemptions", r.be_preemptions)
        .set("engine_events", r.engine_events)
        .set("wall_s", r.wall_s)
}

/// One resilience arm of the chaos section: the fleet under a fault
/// plan, with availability (delivered / injected) and the full
/// fault-event attribution.
struct ChaosArm {
    availability: f64,
    goodput_hz: f64,
    slo_attainment: f64,
    requests: u64,
    arrivals_injected: u64,
    requeued: u64,
    retries: u64,
    timeout_drops: u64,
    ls_shed: u64,
    be_shed: u64,
    in_flight_at_end: u64,
    faults_injected: u64,
    faults_recovered: u64,
    redispatch_p99_us: f64,
    wall_s: f64,
}

fn run_chaos_arm(cfg: &ClusterConfig, kind: RouterKind, ctx: &mut ClusterCtx) -> ChaosArm {
    let mut router = kind.make(cfg.seed);
    let start = Instant::now();
    let r = workload::run_cluster_in(cfg, router.as_mut(), ctx);
    ChaosArm {
        availability: r.requests as f64 / r.arrivals_injected.max(1) as f64,
        goodput_hz: r.goodput_hz,
        slo_attainment: r.slo_attainment(),
        requests: r.requests,
        arrivals_injected: r.arrivals_injected,
        requeued: r.requeued,
        retries: r.retries,
        timeout_drops: r.timeout_drops,
        ls_shed: r.ls_shed,
        be_shed: r.be_shed,
        in_flight_at_end: r.in_flight_at_end,
        faults_injected: r.faults_injected,
        faults_recovered: r.faults_recovered,
        redispatch_p99_us: r.redispatch_hist.percentile(99.0),
        wall_s: start.elapsed().as_secs_f64(),
    }
}

/// The per-arm JSON, including the `fault_events` attribution block
/// that makes a bench run self-describing.
fn chaos_arm_json(a: &ChaosArm) -> Json {
    Json::obj()
        .set("availability", a.availability)
        .set("goodput_hz", a.goodput_hz)
        .set("slo_attainment", a.slo_attainment)
        .set("requests", a.requests)
        .set("arrivals_injected", a.arrivals_injected)
        .set("in_flight_at_end", a.in_flight_at_end)
        .set("redispatch_p99_us", a.redispatch_p99_us)
        .set("wall_s", a.wall_s)
        .set(
            "fault_events",
            Json::obj()
                .set("injected", a.faults_injected)
                .set("recovered", a.faults_recovered)
                .set("requeued", a.requeued)
                .set("retried", a.retries)
                .set("dropped", a.timeout_drops)
                .set("ls_shed", a.ls_shed)
                .set("be_shed", a.be_shed),
        )
}

/// Serializes a `FaultPlan` so any run can be replayed from the bench
/// JSON: rebuild the events with `FaultEvent::crash`/`::slowdown` (or
/// struct literals), restore `retry`/`heartbeat_timeout_us`, and pass
/// the plan through `ClusterConfig::chaos`.
fn plan_json(plan: &FaultPlan) -> Json {
    Json::obj()
        .set("heartbeat_timeout_us", plan.heartbeat_timeout_us)
        .set(
            "retry",
            Json::obj()
                .set("backoff_us", plan.retry.backoff_us)
                .set("max_retries", plan.retry.max_retries as u64)
                .set("timeout_us", plan.retry.timeout_us),
        )
        .set(
            "degradation",
            Json::obj()
                .set("shed_be_backlog", plan.degradation.shed_be_backlog)
                .set("shed_ls_backlog", plan.degradation.shed_ls_backlog)
                .set("ls_shed_per_tick", plan.degradation.ls_shed_per_tick),
        )
        .set(
            "events",
            Json::Arr(
                plan.events
                    .iter()
                    .map(|e| {
                        Json::obj()
                            .set("at_us", e.at_us)
                            .set("replica", e.replica)
                            .set("kind", Json::Str(e.kind.name().into()))
                            .set("factor", e.factor)
                            .set("duration_us", e.duration_us)
                    })
                    .collect(),
            ),
        )
}

/// One arm of the elastic section: serving quality plus the membership
/// accounting that prices it — replica-seconds, warm-pool hit/miss,
/// provisioning-delay attribution, drain/handoff counts.
fn elastic_arm_json(r: &workload::ClusterResult, wall_s: f64) -> Json {
    let count_cause = |cause: ScaleCause| {
        r.scale_events
            .iter()
            .filter(
                |ev| matches!(ev.kind, ScaleEventKind::Provision { cause: c, .. } if c == cause),
            )
            .count()
    };
    Json::obj()
        .set(
            "availability",
            r.requests as f64 / r.arrivals_injected.max(1) as f64,
        )
        .set("goodput_hz", r.goodput_hz)
        .set("slo_attainment", r.slo_attainment())
        .set("fleet_p99_us", r.fleet_percentile(99.0))
        .set("requests", r.requests)
        .set("arrivals_injected", r.arrivals_injected)
        .set("replica_seconds", r.replica_seconds)
        .set("wall_s", wall_s)
        .set(
            "membership",
            Json::obj()
                .set("scale_events", r.scale_events.len())
                .set("provisions_load", count_cause(ScaleCause::Load))
                .set("provisions_slo_breach", count_cause(ScaleCause::SloBreach))
                .set(
                    "provisions_crash_replace",
                    count_cause(ScaleCause::CrashReplace),
                )
                .set("warm_hits", r.warm_hits)
                .set("warm_misses", r.warm_misses)
                .set("provision_delay_total_us", r.provision_delay_total_us)
                .set("drains_started", r.drains_started)
                .set("drains_completed", r.drains_completed)
                .set("drain_requeued", r.drain_requeued)
                .set("replacements", r.replacements),
        )
}

fn run_elastic_arm(
    cfg: &ClusterConfig,
    kind: RouterKind,
    ctx: &mut ClusterCtx,
) -> (workload::ClusterResult, f64) {
    let mut router = kind.make(cfg.seed);
    let start = Instant::now();
    let r = workload::run_cluster_in(cfg, router.as_mut(), ctx);
    (r, start.elapsed().as_secs_f64())
}

/// The `--elastic` section: the self-healing elastic fleet's
/// cost-vs-SLO frontier. Three arms:
///
/// 1. **autoscaler vs static peak** on the diurnal trace — the
///    threshold autoscaler must hold SLO attainment within tolerance
///    of the peak-sized static fleet while billing measurably fewer
///    replica-seconds (full runs gate; smoke records);
/// 2. **crash replacement vs no replacement** under a permanent
///    midpoint crash — the self-healing fleet must beat the fleet
///    with a hole on availability (gated in smoke too: the scenario
///    is deterministic);
/// 3. **bit-identity spot check** — serial == parallel under a
///    scaling + chaos schedule (gated always).
fn run_elastic_bench(smoke: bool, ctx: &mut ClusterCtx) -> (Json, bool) {
    sgdrc_bench::header("elastic — warm-pool autoscaling, SLO-breach draining, crash replacement");
    let mut gates_ok = true;
    let horizon = if smoke { 2.5e5 } else { 2e6 };

    // --- arm 1: threshold autoscaler vs static peak fleet -----------------
    // Six A2000s sized for the diurnal peak; the elastic arm starts at
    // peak with four warm lanes in reserve and lets the threshold
    // policy breathe with the trace.
    let n_peak = 6;
    let mut static_cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; n_peak], SystemKind::Sgdrc);
    static_cfg.horizon_us = horizon;
    static_cfg.trace = fleet_trace(0.9 * n_peak as f64, horizon);
    static_cfg.controller.period_us = 5e4;
    let mut auto_cfg = static_cfg.clone();
    // Retirement is terminal — a drained lane never rejoins; re-growth
    // always draws fresh warm lanes. The pool and the floor are sized
    // so the ~1.5 diurnal cycles in the horizon never strand the fleet
    // below trough capacity: min 4 keeps the trough served, and the
    // slow down-cooldown spends at most the pool per cycle.
    let mut e = ElasticConfig::new(
        WarmPoolConfig {
            provision_delay_us: 2e4,
            provision_jitter: 0.2,
            ..WarmPoolConfig::new(vec![GpuModel::RtxA2000; 4])
        },
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            down_ratio: 0.4,
            down_backlog: 2.0,
            ..Default::default()
        }),
    );
    e.min_replicas = 5;
    e.up_cooldown_us = 5e4;
    e.down_cooldown_us = 2e5;
    auto_cfg.elastic = Some(e);

    let (stat, stat_wall) = run_elastic_arm(&static_cfg, RouterKind::ShortestBacklog, ctx);
    let (auto_r, auto_wall) = run_elastic_arm(&auto_cfg, RouterKind::ShortestBacklog, ctx);
    let saved = 1.0 - auto_r.replica_seconds / stat.replica_seconds;
    println!(
        "   static peak ×{n_peak}: SLO {:>5.1}%  goodput {:>7.1}/s  {:>7.1} replica-s  {:>5.2}s",
        stat.slo_attainment() * 100.0,
        stat.goodput_hz,
        stat.replica_seconds,
        stat_wall
    );
    println!(
        "  threshold auto: SLO {:>5.1}%  goodput {:>7.1}/s  {:>7.1} replica-s ({:>4.1}% saved)  warm {}h/{}m  {:>5.2}s",
        auto_r.slo_attainment() * 100.0,
        auto_r.goodput_hz,
        auto_r.replica_seconds,
        saved * 100.0,
        auto_r.warm_hits,
        auto_r.warm_misses,
        auto_wall
    );
    const SLO_TOLERANCE: f64 = 0.03;
    const MIN_SAVINGS: f64 = 0.05;
    let slo_held = auto_r.slo_attainment() >= stat.slo_attainment() - SLO_TOLERANCE;
    let cheaper = auto_r.replica_seconds <= (1.0 - MIN_SAVINGS) * stat.replica_seconds;
    // Smoke horizons see a fraction of a diurnal cycle — too little
    // trough for meaningful savings — so the frontier gates bind full
    // runs only; the numbers are recorded either way.
    if !smoke {
        gates_ok &= slo_held && cheaper;
    }

    // --- arm 2: crash replacement vs no replacement -----------------------
    // Load sized so the full fleet holds the SLO but the three-lane
    // remnant after the crash is genuinely overloaded — the regime
    // where a hole in the fleet visibly costs delivered requests.
    let n_rep = 4;
    let mut hole_cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; n_rep], SystemKind::Sgdrc);
    hole_cfg.horizon_us = horizon;
    hole_cfg.trace = fleet_trace(1.8 * n_rep as f64, horizon);
    hole_cfg.controller.period_us = 5e4;
    hole_cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0,
        0.25 * horizon,
        f64::INFINITY,
    )]));
    let mut heal_cfg = hole_cfg.clone();
    let mut e = ElasticConfig::new(
        WarmPoolConfig {
            provision_delay_us: 2e4,
            provision_jitter: 0.2,
            ..WarmPoolConfig::new(vec![GpuModel::RtxA2000])
        },
        ScalingPolicyKind::Hold,
    );
    e.min_replicas = 1;
    e.replace_after_us = 0.04 * horizon;
    heal_cfg.elastic = Some(e);

    let (hole, hole_wall) = run_elastic_arm(&hole_cfg, RouterKind::ShortestBacklog, ctx);
    let (heal, heal_wall) = run_elastic_arm(&heal_cfg, RouterKind::ShortestBacklog, ctx);
    let hole_avail = hole.requests as f64 / hole.arrivals_injected.max(1) as f64;
    let heal_avail = heal.requests as f64 / heal.arrivals_injected.max(1) as f64;
    println!(
        "  no replacement: avail {:>6.2}%  goodput {:>7.1}/s  {:>5.2}s",
        hole_avail * 100.0,
        hole.goodput_hz,
        hole_wall
    );
    println!(
        "    self-healing: avail {:>6.2}%  goodput {:>7.1}/s  replacements {}  {:>5.2}s",
        heal_avail * 100.0,
        heal.goodput_hz,
        heal.replacements,
        heal_wall
    );
    // Deterministic scenario: a pass is a pass at any horizon.
    let healing_wins = heal_avail > hole_avail && heal.replacements > 0;
    gates_ok &= healing_wins;

    // --- arm 3: serial == parallel under scaling + chaos ------------------
    let mut id_cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; 3], SystemKind::Sgdrc);
    id_cfg.horizon_us = if smoke { 1.5e5 } else { 4e5 };
    id_cfg.trace = fleet_trace(3.0, id_cfg.horizon_us);
    id_cfg.controller.period_us = 2e4;
    let mut e = ElasticConfig::new(
        WarmPoolConfig {
            provision_delay_us: 1e4,
            provision_jitter: 0.25,
            ..WarmPoolConfig::new(vec![GpuModel::RtxA2000; 2])
        },
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_backlog: 4.0,
            ..Default::default()
        }),
    );
    e.min_replicas = 1;
    e.breach_drain_ticks = 3;
    e.breach_drain_ratio = 1.2;
    e.replace_after_us = 4e4;
    id_cfg.elastic = Some(e);
    id_cfg.chaos = Some(FaultPlan::generate(11, 5, id_cfg.horizon_us, 1.2));
    let mut results = Vec::new();
    for clock in [ClockKind::Parallel, ClockKind::Serial] {
        let mut c = id_cfg.clone();
        c.clock = clock;
        let mut router = RouterKind::P2cSlo.make(c.seed);
        results.push(workload::run_cluster_in(&c, router.as_mut(), ctx));
    }
    let bit_identity = results[0] == results[1];
    gates_ok &= bit_identity;

    println!(
        "\nelastic gates: SLO within {:.0}pp of static {} | >= {:.0}% replica-s saved {} | healing beats hole {} | serial == parallel {}",
        SLO_TOLERANCE * 100.0,
        slo_held,
        MIN_SAVINGS * 100.0,
        cheaper,
        healing_wins,
        bit_identity
    );

    let json = Json::obj()
        .set("skipped", false)
        .set("horizon_us", horizon)
        .set(
            "frontier",
            Json::obj()
                .set("peak_replicas", n_peak)
                .set("trace", "diurnal ±35% + apollo bursts, load sized for peak")
                .set(
                    "policy",
                    Json::obj()
                        .set("kind", "threshold")
                        .set("min_replicas", 2u64)
                        .set("warm_pool", 4u64)
                        .set("provision_delay_us", 2e4)
                        .set("up_cooldown_us", 5e4)
                        .set("down_cooldown_us", 1e5),
                )
                .set("static_peak", elastic_arm_json(&stat, stat_wall))
                .set("autoscaled", elastic_arm_json(&auto_r, auto_wall))
                .set("replica_seconds_saved_frac", saved),
        )
        .set(
            "crash_replacement",
            Json::obj()
                .set("replicas", n_rep)
                .set("scenario", "replica 0 permanently dead at 30% of horizon")
                .set("replace_after_us", 0.05 * horizon)
                .set("no_replacement", elastic_arm_json(&hole, hole_wall))
                .set("self_healing", elastic_arm_json(&heal, heal_wall)),
        )
        .set(
            "bit_identity",
            Json::obj().set("parallel_equals_serial", bit_identity).set(
                "arms",
                "3+2-lane fleet × p2c router × threshold policy × breach drain × \
                     crash replacement × generated fault plan",
            ),
        )
        .set(
            "gates",
            Json::obj()
                .set("slo_tolerance", SLO_TOLERANCE)
                .set("min_replica_seconds_saved", MIN_SAVINGS)
                .set("slo_within_tolerance", slo_held)
                .set("replica_seconds_saved", cheaper)
                .set("healing_beats_hole", healing_wins)
                .set("parallel_equals_serial", bit_identity)
                .set("frontier_enforced", !smoke),
        );
    (json, gates_ok)
}

/// The canonical three-class tier map the tiers section runs: service 0
/// Guaranteed (weight 8), the next third Burstable (weight 3), the rest
/// BestEffort (weight 1), ladder thresholds sized so the crash +
/// diurnal-peak scenario actually climbs the rungs.
fn bench_tiers(n_ls: usize) -> TiersConfig {
    let mut t = TiersConfig::new(
        (0..n_ls)
            .map(|task| {
                if task == 0 {
                    TierConfig::guaranteed(8.0)
                } else if task <= n_ls / 3 {
                    TierConfig::burstable(2, 3.0)
                } else {
                    TierConfig::best_effort(3, 1.0)
                }
            })
            .collect(),
    );
    t.enter_backlog = 10;
    t.exit_backlog = 5;
    t.hold_ticks = 2;
    t.queue_capacity = 64;
    t.shed_per_tick = 32;
    t
}

/// Per-arm tier attribution: group the per-service ledgers by the tier
/// map — the same grouping `tier_outcomes` reports for the tiered arm —
/// so tier-blind arms are comparable tier by tier.
fn tier_attribution_json(r: &ClusterResult, tiers: &TiersConfig) -> Json {
    let mut arr = Vec::new();
    for id in tiers.tier_ids() {
        let tasks: Vec<usize> = (0..tiers.tiers.len())
            .filter(|&t| tiers.tiers[t].tier == id)
            .collect();
        let sum = |v: &[u64]| tasks.iter().map(|&t| v[t]).sum::<u64>();
        arr.push(
            Json::obj()
                .set("tier", id as u64)
                .set(
                    "class",
                    Json::Str(tiers.tiers[tasks[0]].class.name().into()),
                )
                .set("weight", tiers.tiers[tasks[0]].weight)
                .set("arrivals", sum(&r.arrivals_by_task))
                .set("completed", sum(&r.completed_by_task))
                .set("slo_met", sum(&r.slo_met_by_task)),
        );
    }
    Json::Arr(arr)
}

/// The tiered-SLO section (`--tiers`): the headline fleet pushed past
/// capacity by a diurnal peak while a fast replica is down — the regime
/// where *something* must be dropped and the only question is what.
///
/// Three arms, identical trace and fault plan:
/// 1. **tiered** — the three-class tier map: admission control queues
///    then refuses best-effort work first, deadline-aware retry
///    budgets, tier-ordered brownout;
/// 2. **tier_blind** — the legacy single-threshold degradation path
///    (no tiers attached), which sheds without looking at class;
/// 3. **no_be** — tier-blind with BE jobs removed entirely, the
///    baseline tier-1 availability must not fall below.
///
/// Gates (deterministic, bind in smoke too): tiered strictly beats
/// tier-blind on weighted goodput; tier-1 availability under tiers is
/// at least the no-BE baseline's; serial == parallel on the tiered
/// arm. The section JSON is round-tripped through the validator.
fn run_tiers_bench(smoke: bool, ctx: &mut ClusterCtx) -> (Json, bool) {
    sgdrc_bench::header("tiers — tiered SLOs vs tier-blind shedding under crash + diurnal peak");
    let horizon = if smoke { 2.5e5 } else { 1.5e6 };
    let fleet = headline_fleet();

    let mut base = ClusterConfig::new(fleet, SystemKind::Sgdrc);
    base.horizon_us = horizon;
    // Past-capacity load: the headline matrix runs this fleet at 5.5
    // with headroom; 16 through a diurnal peak with a fast lane
    // permanently dead forces sustained overload — the regime where
    // *something* must be dropped and the arms differ only in what.
    base.trace = fleet_trace(16.0, horizon);
    base.controller = ControllerConfig {
        period_us: 2e4,
        adaptive_ch_be: true,
        ..Default::default()
    };
    let mut plan = FaultPlan::new(vec![FaultEvent::crash(0, 0.25 * horizon, f64::INFINITY)]);
    // Same aggressive BE parking the chaos section uses, so the
    // tier-blind arm is the strongest version of the legacy path.
    plan.degradation.shed_be_backlog = 2;
    base.chaos = Some(plan);

    let n_ls = base.prepare().n_ls();
    let tiers = bench_tiers(n_ls);
    let weights: Vec<f64> = tiers.tiers.iter().map(|t| t.weight).collect();

    let mut tiered_cfg = base.clone();
    tiered_cfg.tiers = Some(tiers.clone());
    let blind_cfg = base.clone();
    let mut no_be_cfg = base.clone();
    no_be_cfg.be_jobs = Vec::new();

    let run = |cfg: &ClusterConfig, ctx: &mut ClusterCtx| {
        let mut router = RouterKind::ShortestBacklog.make(cfg.seed);
        let start = Instant::now();
        let r = workload::run_cluster_in(cfg, router.as_mut(), ctx);
        (r, start.elapsed().as_secs_f64())
    };
    let (tiered, tiered_wall) = run(&tiered_cfg, ctx);
    let (blind, blind_wall) = run(&blind_cfg, ctx);
    let (no_be, no_be_wall) = run(&no_be_cfg, ctx);

    let horizon_s = horizon / 1e6;
    let wg = |r: &ClusterResult| r.weighted_slo_met_with(&weights) / horizon_s;
    // Tier-1 availability: delivered fraction of the Guaranteed
    // service's arrivals (task 0 is the only tier-1 member).
    let t1_avail =
        |r: &ClusterResult| r.completed_by_task[0] as f64 / r.arrivals_by_task[0].max(1) as f64;
    for o in &tiered.tier_outcomes {
        o.assert_conserved();
    }
    for (name, r, wall) in [
        ("tiered", &tiered, tiered_wall),
        ("tier_blind", &blind, blind_wall),
        ("no_be", &no_be, no_be_wall),
    ] {
        println!(
            "{name:>12}: goodput_w {:>8.1}/s  tier-1 avail {:>6.2}%  refused {:>5}  shed {:>5}  dropped {:>5}  {:>5.2}s",
            wg(r),
            t1_avail(r) * 100.0,
            r.refused_admission,
            r.ls_shed,
            r.timeout_drops,
            wall,
        );
    }

    // Serial == parallel on the tiered arm (admission, ladder, queues,
    // per-tier ledgers — the full new machinery under both clocks).
    let mut results = Vec::new();
    for clock in [ClockKind::Parallel, ClockKind::Serial] {
        let mut c = tiered_cfg.clone();
        c.horizon_us = if smoke { 1.5e5 } else { 4e5 };
        c.clock = clock;
        let mut router = RouterKind::P2cSlo.make(c.seed);
        results.push(workload::run_cluster_in(&c, router.as_mut(), ctx));
    }
    let bit_identity = results[0] == results[1];

    let tiered_beats_blind = wg(&tiered) > wg(&blind);
    let t1_holds = t1_avail(&tiered) >= t1_avail(&no_be);
    let gates_ok = tiered_beats_blind && t1_holds && bit_identity;
    println!(
        "\ntiers gates: weighted goodput beats tier-blind {} | tier-1 avail >= no-BE {} | serial == parallel {}",
        tiered_beats_blind, t1_holds, bit_identity
    );

    let arm_json = |r: &ClusterResult, wall: f64| {
        Json::obj()
            .set("weighted_goodput_hz", wg(r))
            .set("tier1_availability", t1_avail(r))
            .set("goodput_hz", r.goodput_hz)
            .set("slo_attainment", r.slo_attainment())
            .set("requests", r.requests)
            .set("arrivals_injected", r.arrivals_injected)
            .set("refused_admission", r.refused_admission)
            .set("ls_shed", r.ls_shed)
            .set("timeout_drops", r.timeout_drops)
            .set("wall_s", wall)
            .set("by_tier", tier_attribution_json(r, &tiers))
    };
    let outcomes_json = Json::Arr(
        tiered
            .tier_outcomes
            .iter()
            .map(|o| {
                Json::obj()
                    .set("tier", o.tier as u64)
                    .set("class", Json::Str(o.class.name().into()))
                    .set("weight", o.weight)
                    .set("arrivals", o.arrivals)
                    .set("admitted", o.admitted)
                    .set("queued", o.queued)
                    .set("refused_overload", o.refused_overload)
                    .set("refused_queue_full", o.refused_queue_full)
                    .set("shed", o.shed)
                    .set("timeout_drops", o.timeout_drops)
                    .set("completed", o.completed)
                    .set("slo_met", o.slo_met)
                    .set("in_flight_at_end", o.in_flight_at_end)
                    .set("weighted_goodput_hz", o.weighted_goodput_hz)
            })
            .collect(),
    );
    let json = Json::obj()
        .set("skipped", false)
        .set("horizon_us", horizon)
        .set(
            "scenario",
            Json::obj()
                .set("trace_scale", 16.0)
                .set("crash", "replica 0 permanently dead at 25% of horizon")
                .set(
                    "tier_map",
                    "service 0 guaranteed w8 | next third burstable w3 | rest best-effort w1",
                ),
        )
        .set(
            "arms",
            Json::obj()
                .set("tiered", arm_json(&tiered, tiered_wall))
                .set("tier_blind", arm_json(&blind, blind_wall))
                .set("no_be", arm_json(&no_be, no_be_wall)),
        )
        .set("tier_outcomes", outcomes_json)
        .set(
            "gates",
            Json::obj()
                .set("weighted_goodput_beats_tier_blind", tiered_beats_blind)
                .set("tier1_availability_ge_no_be", t1_holds)
                .set("parallel_equals_serial", bit_identity),
        );
    sgdrc_bench::json::validate(&json.pretty()).expect("tiers section is well-formed JSON");
    (json, gates_ok)
}

/// The telemetry section: the flight recorder's contracts measured on
/// the smoke-scale chaos scenario (crash at midpoint, recovery after a
/// quarter horizon — a trace with faults, requeues, retries and
/// migrations on it).
///
/// 1. **Bit-identity** (hard assert, every mode): a recorder-on run
///    stripped of its telemetry payload equals the recorder-off run on
///    every `ClusterResult` field.
/// 2. **Overhead ≤5%** (gated): wall clock of the recorder-on arm vs
///    the recorder-off arm — min of seven runs each, *interleaved*
///    (off, on, off, on, …) after a warmup pair, so box-load drift
///    lands on both arms equally instead of biasing whichever arm ran
///    second.
/// 3. **Trace export** (with `--trace <path>`): the recorder-on run as
///    a Perfetto `trace.json`, schema-validated *and* re-parsed through
///    the JSON syntax scanner before writing.
fn run_telemetry_bench(trace_path: Option<&str>, ctx: &mut ClusterCtx) -> (Json, bool) {
    sgdrc_bench::header("telemetry — flight recorder overhead + trace export");
    let horizon = 5e5;
    let mut cfg = ClusterConfig::new(headline_fleet(), SystemKind::Sgdrc);
    cfg.horizon_us = horizon;
    cfg.trace = fleet_trace(5.5, horizon);
    cfg.controller = ControllerConfig {
        period_us: 5e4,
        adaptive_ch_be: true,
        ..Default::default()
    };
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0,
        0.5 * horizon,
        0.25 * horizon,
    )]));
    let mut on_cfg = cfg.clone();
    on_cfg.telemetry = Some(TelemetryConfig::default());

    let prep_off = cfg.prepare();
    let prep_on = on_cfg.prepare();
    let seed = cfg.seed;
    let run = |prep: &workload::PreparedCluster, ctx: &mut ClusterCtx| -> (ClusterResult, f64) {
        let mut router = RouterKind::ShortestBacklog.make(seed);
        let t0 = Instant::now();
        let r = workload::run_cluster_prepared(prep, router.as_mut(), ctx);
        let dt = t0.elapsed().as_secs_f64();
        (r, dt)
    };
    // Warm both arms (context high-water marks, page cache), then time
    // them interleaved: min-of-7 per arm over the same wall window, so
    // a box-load spike cannot bias one arm.
    run(&prep_off, ctx);
    run(&prep_on, ctx);
    let (mut off_s, mut on_s) = (f64::INFINITY, f64::INFINITY);
    let (mut off, mut on) = (None, None);
    for _ in 0..7 {
        let (r, t) = run(&prep_off, ctx);
        off_s = off_s.min(t);
        off = Some(r);
        let (r, t) = run(&prep_on, ctx);
        on_s = on_s.min(t);
        on = Some(r);
    }
    let (off, on) = (off.expect("seven runs"), on.expect("seven runs"));

    // Contract 1: the recorder observes, it never steers.
    let mut stripped = on.clone();
    stripped.telemetry = None;
    assert_eq!(
        stripped, off,
        "recorder-on run diverged from the recorder-off run"
    );

    let tel = on.telemetry.as_ref().expect("recorder was enabled");
    let overhead = on_s / off_s - 1.0;
    let overhead_ok = overhead <= 0.05;
    let prof = &tel.profile;
    println!(
        "recorder off {off_s:>6.3}s | on {on_s:>6.3}s | overhead {:>+5.1}% (gate ≤5%: {overhead_ok})",
        overhead * 100.0
    );
    println!(
        "events {} (dropped {}) | ticks {} | series {} | epochs {} | lanes advanced {}",
        tel.events.len(),
        tel.dropped_events,
        tel.tick_us.len(),
        tel.series.len(),
        prof.epochs,
        prof.lanes_advanced,
    );
    println!(
        "phase ms: collect {:.2} advance {:.2} route {:.2} tick {:.2} merge {:.2} telemetry {:.2} total {:.2}",
        prof.collect_ns as f64 / 1e6,
        prof.advance_ns as f64 / 1e6,
        prof.route_ns as f64 / 1e6,
        prof.tick_ns as f64 / 1e6,
        prof.merge_ns as f64 / 1e6,
        prof.telemetry_ns as f64 / 1e6,
        prof.total_ns as f64 / 1e6,
    );

    let mut trace_json = Json::obj().set("exported", false);
    if let Some(path) = trace_path {
        let doc = perfetto_trace(&on).expect("recorder-on run carries telemetry");
        validate_trace(&doc).expect("exported trace is well-formed");
        let text = doc.pretty();
        sgdrc_bench::json::validate(&text).expect("exported trace is valid JSON");
        let n_events = match &doc {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == "traceEvents")
                .map(|(_, v)| match v {
                    Json::Arr(a) => a.len(),
                    _ => 0,
                })
                .unwrap_or(0),
            _ => 0,
        };
        std::fs::write(path, &text).expect("write trace file");
        println!("wrote {path} ({n_events} trace events) — open at https://ui.perfetto.dev");
        trace_json = Json::obj()
            .set("exported", true)
            .set("path", path)
            .set("trace_events", n_events)
            .set("validated", true);
    }

    let section = Json::obj()
        .set(
            "scenario",
            Json::obj()
                .set("system", "SGDRC")
                .set("router", "shortest_backlog")
                .set("horizon_us", horizon)
                .set("fault", "crash replica 0 at 50%, recover after 25%"),
        )
        .set(
            "recorder",
            Json::obj()
                .set("ring_capacity", tel.ring_capacity)
                .set("events", tel.events.len())
                .set("dropped_events", tel.dropped_events)
                .set("ticks", tel.tick_us.len())
                .set("series", tel.series.len()),
        )
        .set(
            "profile_ms",
            Json::obj()
                .set("epochs", prof.epochs)
                .set("lanes_advanced", prof.lanes_advanced)
                .set("collect", prof.collect_ns as f64 / 1e6)
                .set("advance", prof.advance_ns as f64 / 1e6)
                .set("route", prof.route_ns as f64 / 1e6)
                .set("tick", prof.tick_ns as f64 / 1e6)
                .set("merge", prof.merge_ns as f64 / 1e6)
                .set("telemetry", prof.telemetry_ns as f64 / 1e6)
                .set("total", prof.total_ns as f64 / 1e6),
        )
        .set(
            "overhead",
            Json::obj()
                .set("off_wall_s", off_s)
                .set("on_wall_s", on_s)
                .set("overhead_frac", overhead)
                .set("bit_identical", true)
                .set("overhead_le_5pct", overhead_ok),
        )
        .set("trace", trace_json);
    (section, overhead_ok)
}

/// A few µs of deterministic integer churn — the "small task" of the
/// pool-dispatch microbenchmark.
fn spin(seed: u64, iters: u32) -> u64 {
    let mut z = seed;
    for _ in 0..iters {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
    }
    z
}

/// Child mode: measure the parallel fleet clock (events/s) and the
/// sweep fan-out (cells/s) under the pool this process was started
/// with, and print one machine-readable line for the parent.
fn run_scale_probe(smoke: bool) {
    let fleet = headline_fleet();
    for &g in &[GpuModel::RtxA2000, GpuModel::Gtx1080] {
        let _ = Deployment::cached(g);
    }
    let horizon_us = if smoke { 1.2e5 } else { 8e5 };
    let mut cfg = ClusterConfig::new(fleet, SystemKind::Sgdrc);
    cfg.horizon_us = horizon_us;
    cfg.trace = fleet_trace(5.5, horizon_us);
    cfg.controller.period_us = 5e4;
    let mut ctx = ClusterCtx::new();
    // One warm-up pass (contexts, pool, trace), then the measured run.
    let _ = run_fleet(&cfg, RouterKind::ShortestBacklog, &mut ctx);
    let fleet_run = run_fleet(&cfg, RouterKind::ShortestBacklog, &mut ctx);

    let grid = SweepGrid::fig17_style(if smoke { 1.5e3 } else { 3e3 }, if smoke { 1 } else { 3 });
    let cells = grid.cells();
    let sweep_start = Instant::now();
    let sweep = run_sweep(&cells, &SweepOptions::default());
    let sweep_wall_s = sweep_start.elapsed().as_secs_f64();

    println!(
        "SCALE_PROBE pool_workers={} fleet_events={} fleet_wall_s={} sweep_cells={} sweep_wall_s={} sweep_events={}",
        rayon::current_pool_workers(),
        fleet_run.engine_events,
        fleet_run.wall_s,
        sweep.cells.len(),
        sweep_wall_s,
        sweep.total_events,
    );
}

/// Child mode: dispatch cost of the persistent work-stealing pool vs.
/// the per-call `thread::scope` dispatch it replaced, on batches of 8
/// small tasks. Run with `SGDRC_THREADS>1` so both arms actually fan
/// out.
fn run_pool_probe() {
    use rayon::prelude::*;
    let workers = rayon::current_pool_workers();
    const TASKS: u64 = 8;
    const ITERS: u32 = 200;
    let pool_batches = 2_000u32;
    let scoped_batches = 300u32;
    let mut sink = 0u64;
    let batch_items = || (0..TASKS).collect::<Vec<u64>>();

    for _ in 0..50 {
        sink ^= batch_items()
            .into_par_iter()
            .map(|i| spin(i, ITERS))
            .collect::<Vec<_>>()
            .iter()
            .sum::<u64>();
    }
    let start = Instant::now();
    for _ in 0..pool_batches {
        sink ^= batch_items()
            .into_par_iter()
            .map(|i| spin(i, ITERS))
            .collect::<Vec<_>>()
            .iter()
            .sum::<u64>();
    }
    let pool_ns = start.elapsed().as_nanos() as f64 / pool_batches as f64;

    for _ in 0..10 {
        sink ^= rayon::legacy::scoped_map_vec(batch_items(), workers, &|i| spin(i, ITERS))
            .iter()
            .sum::<u64>();
    }
    let start = Instant::now();
    for _ in 0..scoped_batches {
        sink ^= rayon::legacy::scoped_map_vec(batch_items(), workers, &|i| spin(i, ITERS))
            .iter()
            .sum::<u64>();
    }
    let scoped_ns = start.elapsed().as_nanos() as f64 / scoped_batches as f64;

    println!(
        "POOL_PROBE workers={workers} pool_ns_per_batch={pool_ns} scoped_ns_per_batch={scoped_ns} checksum={}",
        std::hint::black_box(sink)
    );
}

/// Re-executes this binary with `SGDRC_THREADS=threads` and the given
/// probe flag; returns the probe's marker line. Every probe therefore
/// runs on a pool genuinely built with that worker count — the only way
/// to sweep a build-time knob.
fn spawn_probe(flag: &str, threads: usize, smoke: bool) -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let mut cmd = std::process::Command::new(exe);
    cmd.env(rayon::THREADS_ENV, threads.to_string()).arg(flag);
    if smoke {
        cmd.arg("--smoke");
    }
    let out = cmd.output().ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.starts_with("SCALE_PROBE") || l.starts_with("POOL_PROBE"))
        .map(str::to_string)
}

/// Peak resident set (`VmHWM`) of this process in MiB, read from
/// `/proc/self/status`. Process-wide and monotone, so it bounds every
/// section run so far — good enough to show the 10M-request streaming
/// run did not accumulate per-request state. NaN off Linux.
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map_or(f64::NAN, |kb| kb / 1024.0)
}

/// Extracts `key=<number>` from a probe marker line.
fn probe_field(line: &str, key: &str) -> f64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::NAN)
}

/// The `--scale-out` section: the SoA + calendar + streaming fleet
/// clock at sizes the per-epoch linear scan could not touch. Records a
/// 1→512 streaming scaling curve (smoke: 64→256 on a short horizon, so
/// CI exercises big fleets on every push), spot-checks the calendar
/// clock against the retained serial oracle, and — on full runs — gates
/// the 512-replica clock at ≥2× the recorded pre-PR clock's events/s at
/// the diurnal-trough operating point, plus a 512-replica ≥10M-request
/// streaming headline with bounded memory (zero retained completion
/// records, peak RSS recorded).
///
/// Returns the JSON section and whether every enforced gate passed.
fn run_scale_out(smoke: bool) -> (Json, bool) {
    sgdrc_bench::header("scale-out — SoA lanes, calendar clock, streaming mode");
    let threads = sgdrc_bench::ThreadAttribution::capture();
    let mut gates_ok = true;
    let mut ctx = ClusterCtx::new();

    let scale_cfg = |nrep: usize, horizon_us: f64| {
        let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; nrep], SystemKind::Sgdrc);
        cfg.horizon_us = horizon_us;
        cfg.trace = fleet_trace(0.9 * nrep as f64, horizon_us);
        cfg.controller.period_us = 5e4;
        cfg.streaming = true;
        cfg
    };

    // --- 1→512 streaming scaling curve, load ∝ N --------------------------
    let sizes: &[usize] = if smoke {
        &[64, 256]
    } else {
        &[1, 4, 16, 64, 256, 512]
    };
    let curve_horizon = if smoke { 1.2e5 } else { 1e6 };
    let mut points = Vec::new();
    for &nrep in sizes {
        let cfg = scale_cfg(nrep, curve_horizon);
        let prep = cfg.prepare();
        // Warm pass (deployments, contexts, calendar), then measure.
        let mut router = RouterKind::ShortestBacklog.make(cfg.seed);
        let _ = workload::run_cluster_prepared(&prep, router.as_mut(), &mut ctx);
        let mut router = RouterKind::ShortestBacklog.make(cfg.seed);
        let start = Instant::now();
        let r = workload::run_cluster_prepared(&prep, router.as_mut(), &mut ctx);
        let wall_s = start.elapsed().as_secs_f64();
        let eps = r.engine_events as f64 / wall_s;
        println!(
            "{nrep:>4} replicas: {:>8} req  {:>10.0} events/s (wall)  retained {}  {:>6.2}s",
            r.requests, eps, r.retained_completions, wall_s
        );
        // Streaming's memory bound is a correctness property — enforce
        // it at every size, smoke included.
        gates_ok &= r.retained_completions == 0;
        points.push(
            Json::obj()
                .set("replicas", nrep)
                .set("trace_scale", 0.9 * nrep as f64)
                .set("requests", r.requests)
                .set("goodput_hz", r.goodput_hz)
                .set("slo_attainment", r.slo_attainment())
                .set("retained_completions", r.retained_completions)
                .set("wall_s", wall_s)
                .set("events_per_wall_s", eps)
                .set("detected_cpus", threads.detected_cpus)
                .set("pool_workers", rayon::current_pool_workers()),
        );
    }

    // --- calendar clock vs retained serial oracle -------------------------
    // Full-result equality on the heterogeneous headline fleet, with and
    // without faults. The exhaustive SystemKind × chaos × clock matrix
    // lives in the test suite; this spot check makes every bench run
    // self-verifying.
    let mut bit_identity = true;
    for with_chaos in [false, true] {
        let mut cfg = ClusterConfig::new(headline_fleet(), SystemKind::Sgdrc);
        cfg.horizon_us = 2e5;
        cfg.trace = fleet_trace(5.5, cfg.horizon_us);
        cfg.controller = ControllerConfig {
            period_us: 5e4,
            adaptive_ch_be: true,
            ..Default::default()
        };
        if with_chaos {
            cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
                0,
                0.4 * cfg.horizon_us,
                0.3 * cfg.horizon_us,
            )]));
        }
        let mut results = Vec::new();
        for clock in [ClockKind::Parallel, ClockKind::Serial] {
            let mut c = cfg.clone();
            c.clock = clock;
            let mut router = RouterKind::P2cSlo.make(c.seed);
            results.push(workload::run_cluster_in(&c, router.as_mut(), &mut ctx));
        }
        bit_identity &= results[0] == results[1];
    }
    println!("calendar clock == serial oracle (chaos & no-chaos): {bit_identity}");
    gates_ok &= bit_identity;

    // --- 512-replica clock speedup vs the pre-PR clock (full runs) --------
    // Operating point: the diurnal trough. 512 replicas each at 2% of
    // peak per-service load, no BE jobs — the regime where almost every
    // lane is idle at almost every epoch, so per-epoch work that scales
    // with fleet size instead of with due lanes (the pre-PR busy-list
    // scan) is pure overhead. At dense load the event pump dominates
    // both clocks (~61 engine events per request) and no clock can be
    // much faster than the pump; the calendar's structural win is the
    // sparse regime, which is also most of a diurnal fleet's day.
    //
    // The pre-PR clock no longer exists in this binary, so the gate
    // compares against its recorded throughput: commit 974c765 built on
    // this box, same operating point, best of 5 interleaved runs per
    // arm. `ClockKind::Parallel` was the pre-PR default and is the
    // baseline; its serial arm is recorded alongside for transparency.
    // A recorded baseline is only valid when the box is as fast as it
    // was when recorded, so the serial reference arm (measured live,
    // in-binary) doubles as a calibration canary: if it lands >15%
    // below its own recorded calm-box rate, the gate reports
    // `inconclusive_box_load` instead of a spurious pass/fail.
    let speedup_json = if smoke {
        Json::obj().set("skipped", true)
    } else {
        // Recorded on this box at pre-PR HEAD 974c765 (512 replicas,
        // apollo ×10.24, no BE, horizon 1e7 µs, p2c-slo, period 5e4).
        const PREPR_GIT: &str = "974c765";
        const PREPR_DEFAULT_EPS: f64 = 2_334_266.0; // ClockKind::Parallel (pre-PR default), best of 5
        const PREPR_SERIAL_EPS: f64 = 2_945_215.0; // ClockKind::Serial, best of 5
                                                   // This binary's serial reference arm at the same point on a
                                                   // calm box — the canary's reference rate.
        const SERIAL_REF_CALM_EPS: f64 = 3_320_000.0;

        let n = 512;
        let horizon = 1e7;
        let trough_cfg = |clock: ClockKind, streaming: bool| {
            let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; n], SystemKind::Sgdrc);
            cfg.horizon_us = horizon;
            cfg.trace = TraceConfig::apollo_like().scaled(0.02 * n as f64);
            cfg.be_jobs = Vec::new();
            cfg.controller.period_us = 5e4;
            cfg.streaming = streaming;
            cfg.clock = clock;
            cfg
        };
        // Interleave the arms and keep each one's best wall time: the
        // minimum over rounds is the least-noise estimator, and
        // interleaving keeps slow box phases from landing on one arm.
        let mut best = [f64::INFINITY; 2];
        let mut events = 0u64;
        let arms = [(ClockKind::Parallel, true), (ClockKind::Serial, false)];
        for round in 0..4 {
            for (i, &(clock, streaming)) in arms.iter().enumerate() {
                let cfg = trough_cfg(clock, streaming);
                let prep = cfg.prepare();
                let mut router = RouterKind::P2cSlo.make(cfg.seed);
                let start = Instant::now();
                let r = workload::run_cluster_prepared(&prep, router.as_mut(), &mut ctx);
                let wall = start.elapsed().as_secs_f64();
                events = r.engine_events;
                // Round 0 is the warm-up (deployments, contexts,
                // calendar touch every cache cold) and is discarded.
                if round > 0 {
                    best[i] = best[i].min(wall);
                }
            }
        }
        let new_eps = events as f64 / best[0];
        let ref_eps = events as f64 / best[1];
        let ratio_vs_prepr = new_eps / PREPR_DEFAULT_EPS;
        let ratio_vs_serial_ref = new_eps / ref_eps;
        let box_calm = ref_eps >= 0.85 * SERIAL_REF_CALM_EPS;
        // NaN (a zero-duration fluke) fails the `>=` and cannot pass.
        let gate_pass = ratio_vs_prepr >= 2.0;
        let verdict = if gate_pass {
            "pass"
        } else if !box_calm {
            "inconclusive_box_load"
        } else {
            "fail"
        };
        println!(
            "512-replica trough clock: new {new_eps:>9.0} ev/s  serial ref {ref_eps:>9.0} ev/s  \
             pre-PR default {PREPR_DEFAULT_EPS:>9.0} ev/s  ratio {ratio_vs_prepr:.2}× ({verdict})"
        );
        gates_ok &= verdict != "fail";
        Json::obj()
            .set("skipped", false)
            .set("replicas", n)
            .set("horizon_us", horizon)
            .set(
                "trace",
                "apollo ×10.24 (2% of peak per replica), no BE jobs",
            )
            .set("router", "p2c_slo")
            .set(
                "measurement",
                "best of 3 interleaved timed rounds after 1 warm-up round",
            )
            .set("new_clock_events_per_s", new_eps)
            .set("serial_reference_events_per_s", ref_eps)
            .set(
                "prepr_baseline",
                Json::obj()
                    .set("git", PREPR_GIT)
                    .set("default_clock_events_per_s", PREPR_DEFAULT_EPS)
                    .set("serial_clock_events_per_s", PREPR_SERIAL_EPS)
                    .set(
                        "method",
                        "same box, same operating point, best of 5 interleaved",
                    ),
            )
            .set("speedup_vs_prepr_default", ratio_vs_prepr)
            .set("speedup_vs_serial_reference", ratio_vs_serial_ref)
            .set("box_calm", box_calm)
            .set("serial_reference_calm_events_per_s", SERIAL_REF_CALM_EPS)
            .set("gate_2x_vs_prepr", verdict)
    };

    // --- 512-replica ≥10M-request streaming headline (full runs) ----------
    let headline_json = if smoke {
        Json::obj().set("skipped", true)
    } else {
        let n = 512;
        // The diurnal+burst trace at 0.9·512 per-service scale injects
        // ≈0.25M requests per simulated second: 50 sim-seconds drives
        // ≈12.5M requests through the fleet.
        let horizon = 5e7;
        let rss_before_mib = peak_rss_mib();
        let cfg = scale_cfg(n, horizon);
        let prep = cfg.prepare();
        let mut router = RouterKind::ShortestBacklog.make(cfg.seed);
        let start = Instant::now();
        let r = workload::run_cluster_prepared(&prep, router.as_mut(), &mut ctx);
        let wall_s = start.elapsed().as_secs_f64();
        let rss_after_mib = peak_rss_mib();
        let eps = r.engine_events as f64 / wall_s;
        let bounded_memory = r.retained_completions == 0;
        let gate_10m = r.arrivals_injected >= 10_000_000;
        println!(
            "512-replica headline: {} arrivals, {} served, {:.0} events/s, retained {}, \
             peak RSS {rss_after_mib:.0} MiB, {:.1}s wall",
            r.arrivals_injected, r.requests, eps, r.retained_completions, wall_s
        );
        gates_ok &= bounded_memory && gate_10m;
        Json::obj()
            .set("skipped", false)
            .set("replicas", n)
            .set("horizon_us", horizon)
            .set("arrivals_injected", r.arrivals_injected)
            .set("requests", r.requests)
            .set("goodput_hz", r.goodput_hz)
            .set("slo_attainment", r.slo_attainment())
            .set("in_flight_at_end", r.in_flight_at_end)
            .set("retained_completions", r.retained_completions)
            .set("bounded_memory", bounded_memory)
            .set("peak_rss_mib_before", rss_before_mib)
            .set("peak_rss_mib_after", rss_after_mib)
            .set("gate_10m_requests", gate_10m)
            .set("events_per_wall_s", eps)
            .set("wall_s", wall_s)
            .set("detected_cpus", threads.detected_cpus)
    };

    let json = Json::obj()
        .set("skipped", false)
        .set("streaming", true)
        .set("system", "SGDRC")
        .set("router", "shortest_backlog")
        .set(
            "curve",
            Json::obj()
                .set("horizon_us", curve_horizon)
                .set("points", Json::Arr(points)),
        )
        .set(
            "bit_identity",
            Json::obj()
                .set("parallel_equals_serial", bit_identity)
                .set("arms", "headline fleet × p2c router × {no-chaos, crash}"),
        )
        .set("clock_speedup", speedup_json)
        .set("headline", headline_json);
    (json, gates_ok)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--scale-probe") {
        run_scale_probe(smoke);
        return;
    }
    if args.iter().any(|a| a == "--pool-probe") {
        run_pool_probe();
        return;
    }
    let horizon_us = if smoke { 2.5e5 } else { 3e6 };
    let fleet = headline_fleet();

    sgdrc_bench::header("BENCH_cluster — 8-replica fleet, systems × routers");
    println!(
        "fleet: {} replicas ({} A2000 + {} GTX 1080), horizon {horizon_us}µs{}",
        fleet.len(),
        fleet.iter().filter(|&&g| g == GpuModel::RtxA2000).count(),
        fleet.iter().filter(|&&g| g == GpuModel::Gtx1080).count(),
        if smoke { " (smoke)" } else { "" }
    );

    // Warm the deployments outside every measured region.
    for &g in &[GpuModel::RtxA2000, GpuModel::Gtx1080] {
        let _ = Deployment::cached(g);
    }

    let base = {
        let mut cfg = ClusterConfig::new(fleet.clone(), SystemKind::Sgdrc);
        cfg.horizon_us = horizon_us;
        cfg.trace = fleet_trace(5.5, horizon_us);
        cfg.controller = ControllerConfig {
            period_us: 5e4,
            adaptive_ch_be: true,
            ..Default::default()
        };
        cfg
    };

    // --- systems × routers matrix ----------------------------------------
    let mut ctxs = ClusterCtx::new();
    let mut systems_json = Json::obj();
    let mut sgdrc_p99 = Vec::new();
    for system in SystemKind::all() {
        let mut cfg = base.clone();
        cfg.system = system;
        let mut row = Json::obj();
        for kind in RouterKind::all() {
            let r = run_fleet(&cfg, kind, &mut ctxs);
            println!(
                "{:>16} × {:>16}: goodput {:>7.1}/s  p99 {:>9.0}µs  SLO {:>5.1}%  BE {:>5}  mig {:>3}  {:>5.2}s",
                system.name(),
                kind.name(),
                r.goodput_hz,
                r.p99_us,
                r.slo_attainment * 100.0,
                r.be_completed,
                r.be_migrations,
                r.wall_s
            );
            if system == SystemKind::Sgdrc {
                sgdrc_p99.push((kind, r.p99_us));
            }
            row = row.set(kind.name(), fleet_json(&r));
        }
        systems_json = systems_json.set(system.name(), row);
    }

    // --- N-replica scaling curve ------------------------------------------
    // Homogeneous A2000 fleets with load scaled ∝ N: fleet capacity
    // (simulated completions/s) should grow ~linearly while the simulator
    // itself reports wall-clock throughput for the perf trajectory.
    sgdrc_bench::header("scaling curve — SGDRC × shortest-backlog");
    let sizes: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8, 16] };
    let scaling_horizon = if smoke { 2e5 } else { 1.5e6 };
    let mut points = Vec::new();
    for &nrep in sizes {
        let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; nrep], SystemKind::Sgdrc);
        cfg.horizon_us = scaling_horizon;
        cfg.trace = fleet_trace(0.9 * nrep as f64, scaling_horizon);
        cfg.controller.period_us = 5e4;
        let mut fresh = ClusterCtx::new();
        let r = run_fleet(&cfg, RouterKind::ShortestBacklog, &mut fresh);
        let sim_req_per_s = r.requests as f64 / (scaling_horizon / 1e6);
        println!(
            "{nrep} replica(s): {:>8.1} served req/s (sim)  goodput {:>8.1}/s  {:>9.0} events/s (wall)",
            sim_req_per_s,
            r.goodput_hz,
            r.engine_events as f64 / r.wall_s
        );
        points.push(
            Json::obj()
                .set("replicas", nrep)
                .set("trace_scale", 0.9 * nrep as f64)
                .set("served_requests_per_sim_s", sim_req_per_s)
                .set("goodput_hz", r.goodput_hz)
                .set("slo_attainment", r.slo_attainment)
                .set("wall_s", r.wall_s)
                .set("events_per_wall_s", r.engine_events as f64 / r.wall_s),
        );
    }

    // The scaling-curve section records the *effective* worker count
    // (the SGDRC_THREADS override when set), so multi-core runs on real
    // hardware attribute their curves to an actual thread count.
    let threads = sgdrc_bench::ThreadAttribution::capture();
    let (detected_cpus, worker_threads) = (threads.detected_cpus, threads.worker_threads);
    let scaling_json = Json::obj()
        .set("system", "SGDRC")
        .set("router", "shortest_backlog")
        .set("horizon_us", scaling_horizon)
        .set("points", Json::Arr(points));
    let scaling_json = threads.annotate(scaling_json);

    // --- thread-scaling curve (self-exec, one pool per worker count) ------
    // The probe children set their own SGDRC_THREADS, so re-running them
    // under a parent env matrix would measure the exact same thing; CI's
    // extra env-matrix smoke steps pass --skip-probes for that reason.
    let skip_probes = args.iter().any(|a| a == "--skip-probes");
    let mut ts_points = Vec::new();
    let mut fleet_eps: Vec<(usize, f64)> = Vec::new();
    let probe_threads: &[usize] = if skip_probes { &[] } else { &[1, 2, 4, 8] };
    if !skip_probes {
        sgdrc_bench::header("thread scaling — parallel fleet clock, SGDRC_THREADS ∈ {1,2,4,8}");
    }
    for &k in probe_threads {
        let Some(line) = spawn_probe("--scale-probe", k, smoke) else {
            eprintln!("WARNING: scale probe at {k} threads failed to run");
            continue;
        };
        let pool_workers = probe_field(&line, "pool_workers") as usize;
        let fleet_events = probe_field(&line, "fleet_events");
        let fleet_wall = probe_field(&line, "fleet_wall_s");
        let sweep_cells = probe_field(&line, "sweep_cells");
        let sweep_wall = probe_field(&line, "sweep_wall_s");
        let eps = fleet_events / fleet_wall;
        let cps = sweep_cells / sweep_wall;
        let oversubscribed = k > detected_cpus;
        println!(
            "{k} thread(s): fleet {:>10.0} events/s  sweep {:>7.1} cells/s{}",
            eps,
            cps,
            if oversubscribed {
                "  (oversubscribed)"
            } else {
                ""
            }
        );
        fleet_eps.push((k, eps));
        ts_points.push(
            Json::obj()
                .set("threads", k)
                .set("pool_workers", pool_workers)
                .set("oversubscribed", oversubscribed)
                .set("fleet_events_per_s", eps)
                .set("fleet_wall_s", fleet_wall)
                .set("sweep_cells_per_s", cps)
                .set("sweep_wall_s", sweep_wall),
        );
    }
    let eps_at = |k: usize| {
        fleet_eps
            .iter()
            .find(|&&(t, _)| t == k)
            .map(|&(_, e)| e)
            .unwrap_or(f64::NAN)
    };
    let speedup_at_4 = eps_at(4) / eps_at(1);
    if !skip_probes {
        println!("fleet events/s speedup at 4 threads vs 1: {speedup_at_4:.2}×");
    }

    // --- pool-dispatch microbenchmark (persistent pool vs thread::scope) --
    let (pool_ns, scoped_ns, probe_workers) = if skip_probes {
        (f64::NAN, f64::NAN, 0)
    } else {
        sgdrc_bench::header("pool dispatch — persistent pool vs per-call thread::scope");
        match &spawn_probe("--pool-probe", 4, smoke) {
            Some(line) => (
                probe_field(line, "pool_ns_per_batch"),
                probe_field(line, "scoped_ns_per_batch"),
                probe_field(line, "workers") as usize,
            ),
            None => {
                eprintln!("WARNING: pool-dispatch probe failed to run");
                (f64::NAN, f64::NAN, 0)
            }
        }
    };
    let dispatch_speedup = scoped_ns / pool_ns;
    if !skip_probes {
        println!(
            "8 small tasks × {probe_workers} workers: pool {pool_ns:.0} ns/batch vs scope spawn {scoped_ns:.0} ns/batch ({dispatch_speedup:.1}×)"
        );
    }

    // --- scale-out: SoA + calendar + streaming at 256–512 replicas --------
    let scale_out_enabled = args.iter().any(|a| a == "--scale-out");
    let (scale_out_json, scale_out_ok) = if scale_out_enabled {
        run_scale_out(smoke)
    } else {
        (Json::obj().set("skipped", true), true)
    };

    // --- routing gate ------------------------------------------------------
    let rr = sgdrc_p99
        .iter()
        .find(|(k, _)| *k == RouterKind::RoundRobin)
        .expect("rr ran")
        .1;
    let best_alt = sgdrc_p99
        .iter()
        .filter(|(k, _)| *k != RouterKind::RoundRobin)
        .map(|&(_, p)| p)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nrouting gate (SGDRC): round-robin p99 {rr:.0}µs vs best load-aware {best_alt:.0}µs ({:.2}×)",
        rr / best_alt
    );

    // --- chaos: crash-at-midpoint resilience ------------------------------
    let chaos_enabled = args.iter().any(|a| a == "--chaos");
    let mut chaos_json = Json::obj().set("skipped", !chaos_enabled);
    let mut chaos_gate_requeue = true;
    let mut chaos_gate_floor = true;
    let mut chaos_gate_no_be = true;
    const CHAOS_AVAILABILITY_FLOOR: f64 = 0.90;
    if chaos_enabled {
        sgdrc_bench::header("chaos — crash at midpoint: requeue vs drop-on-crash vs no-BE");
        let chaos_horizon = if smoke { 2.5e5 } else { 1.5e6 };
        let mut cfg = ClusterConfig::new(fleet.clone(), SystemKind::Sgdrc);
        cfg.horizon_us = chaos_horizon;
        // Same operating point as the headline matrix: SLOs met with
        // moderate headroom — the regime where SGDRC's "BE costs no
        // goodput" claim holds, and the one the resilience gates must
        // preserve through a crash.
        cfg.trace = fleet_trace(5.5, chaos_horizon);
        cfg.controller = ControllerConfig {
            period_us: 5e4,
            adaptive_ch_be: true,
            ..Default::default()
        };
        // The headline scenario: a fast replica dies at midpoint and
        // revives after a quarter of the horizon.
        let mut plan = FaultPlan::new(vec![FaultEvent::crash(
            0,
            0.5 * chaos_horizon,
            0.25 * chaos_horizon,
        )]);
        // Shed BE the moment the degraded fleet starts queueing: the
        // goodput gate below checks that BE filling costs no LS goodput
        // even through the crash, which holds only if degradation parks
        // BE while capacity is short.
        plan.degradation.shed_be_backlog = 2;
        cfg.chaos = Some(plan.clone());
        let requeue = run_chaos_arm(&cfg, RouterKind::ShortestBacklog, &mut ctxs);

        let mut drop_cfg = cfg.clone();
        drop_cfg.chaos.as_mut().expect("plan set").retry.max_retries = 0;
        let drop = run_chaos_arm(&drop_cfg, RouterKind::ShortestBacklog, &mut ctxs);

        // The no-BE baseline: same fleet, same faults, zero BE work —
        // SGDRC's claim is that BE filling costs no LS goodput, and that
        // must survive a crash (degradation sheds BE when it matters).
        let mut no_be_cfg = cfg.clone();
        no_be_cfg.be_jobs = Vec::new();
        let no_be = run_chaos_arm(&no_be_cfg, RouterKind::ShortestBacklog, &mut ctxs);

        for (name, a) in [
            ("requeue", &requeue),
            ("drop_on_crash", &drop),
            ("no_be_baseline", &no_be),
        ] {
            println!(
                "{name:>16}: avail {:>6.2}%  goodput {:>7.1}/s  SLO {:>5.1}%  requeued {:>4}  retried {:>4}  dropped {:>4}  BE shed {:>2}  {:>5.2}s",
                a.availability * 100.0,
                a.goodput_hz,
                a.slo_attainment * 100.0,
                a.requeued,
                a.retries,
                a.timeout_drops,
                a.be_shed,
                a.wall_s,
            );
        }

        // Availability-under-failure curve: outage length sweeps up,
        // requeue vs drop-on-crash at each point.
        let down_fracs: &[f64] = if smoke { &[0.25] } else { &[0.1, 0.25, 0.45] };
        let mut curve = Vec::new();
        for &frac in down_fracs {
            let curve_plan = FaultPlan::new(vec![FaultEvent::crash(
                0,
                0.4 * chaos_horizon,
                frac * chaos_horizon,
            )]);
            let mut rq_cfg = cfg.clone();
            rq_cfg.chaos = Some(curve_plan);
            let rq = run_chaos_arm(&rq_cfg, RouterKind::ShortestBacklog, &mut ctxs);
            let mut dr_cfg = rq_cfg.clone();
            dr_cfg.chaos.as_mut().expect("plan set").retry.max_retries = 0;
            let dr = run_chaos_arm(&dr_cfg, RouterKind::ShortestBacklog, &mut ctxs);
            println!(
                "outage {:>4.0}% of horizon: requeue avail {:>6.2}% goodput {:>7.1}/s  |  drop avail {:>6.2}% goodput {:>7.1}/s",
                frac * 100.0,
                rq.availability * 100.0,
                rq.goodput_hz,
                dr.availability * 100.0,
                dr.goodput_hz
            );
            curve.push(
                Json::obj()
                    .set("down_frac", frac)
                    .set("requeue", chaos_arm_json(&rq))
                    .set("drop_on_crash", chaos_arm_json(&dr)),
            );
        }

        // A thermal-throttle arm rides along for the artifact (no gate):
        // the slowest GTX 1080 drops to 60% clocks through the middle
        // half, and dynamic SGDRC re-prepares its contexts at the scaled
        // spec.
        let mut throttle_cfg = cfg.clone();
        throttle_cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::slowdown(
            FaultKind::Throttle,
            2,
            0.25 * chaos_horizon,
            0.6,
            0.5 * chaos_horizon,
        )]));
        let throttle = run_chaos_arm(&throttle_cfg, RouterKind::ShortestBacklog, &mut ctxs);
        println!(
            "        throttle: avail {:>6.2}%  goodput {:>7.1}/s  SLO {:>5.1}%  (GTX 1080 @60% clocks, no gate)",
            throttle.availability * 100.0,
            throttle.goodput_hz,
            throttle.slo_attainment * 100.0,
        );

        let goodput_ge_no_be = requeue.goodput_hz >= no_be.goodput_hz;
        let availability_ge_floor = requeue.availability >= CHAOS_AVAILABILITY_FLOOR;
        chaos_gate_requeue =
            requeue.availability > drop.availability && requeue.requests > drop.requests;
        // The floor and the goodput-parity gates only bind full runs: a
        // smoke horizon cuts off with a larger in-flight fraction and
        // gives the tick-granular BE shed too little runway to fully
        // compensate, both by construction. CI enforces them via a full
        // `--chaos` run; smoke still gates requeue-beats-drop.
        chaos_gate_floor = smoke || availability_ge_floor;
        chaos_gate_no_be = smoke || goodput_ge_no_be;
        println!(
            "\nchaos gates: requeue beats drop {} | availability >= {:.0}% {} | SGDRC goodput >= no-BE {}",
            chaos_gate_requeue,
            CHAOS_AVAILABILITY_FLOOR * 100.0,
            chaos_gate_floor,
            chaos_gate_no_be
        );

        chaos_json = Json::obj()
            .set("skipped", false)
            .set(
                "scenario",
                Json::obj()
                    .set("system", "SGDRC")
                    .set("router", "shortest_backlog")
                    .set("horizon_us", chaos_horizon)
                    .set("plan", plan_json(&plan)),
            )
            .set(
                "arms",
                Json::obj()
                    .set("requeue", chaos_arm_json(&requeue))
                    .set("drop_on_crash", chaos_arm_json(&drop))
                    .set("no_be_baseline", chaos_arm_json(&no_be))
                    .set("throttle", chaos_arm_json(&throttle)),
            )
            .set("outage_curve", Json::Arr(curve))
            .set(
                "gates",
                Json::obj()
                    .set("availability_floor", CHAOS_AVAILABILITY_FLOOR)
                    .set("requeue_beats_drop", chaos_gate_requeue)
                    .set("requeue_availability_ok", availability_ge_floor)
                    .set("goodput_ge_no_be_baseline", goodput_ge_no_be)
                    .set("floor_and_goodput_enforced", !smoke),
            );
    }

    // --- elastic: warm-pool autoscaling and self-healing ------------------
    let elastic_enabled = args.iter().any(|a| a == "--elastic");
    let (elastic_json, elastic_ok) = if elastic_enabled {
        run_elastic_bench(smoke, &mut ctxs)
    } else {
        (Json::obj().set("skipped", true), true)
    };

    // --- tiers: tiered SLOs vs tier-blind shedding under overload ---------
    let tiers_enabled = args.iter().any(|a| a == "--tiers");
    let (tiers_json, tiers_ok) = if tiers_enabled {
        run_tiers_bench(smoke, &mut ctxs)
    } else {
        (Json::obj().set("skipped", true), true)
    };

    // --- telemetry: flight recorder contracts + optional trace export -----
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (telemetry_json, telemetry_ok) = run_telemetry_bench(trace_path.as_deref(), &mut ctxs);

    let doc = Json::obj()
        .set("benchmark", "cluster_fleet")
        .set("smoke", smoke)
        .set(
            "fleet",
            Json::obj()
                .set("replicas", fleet.len())
                .set(
                    "gpus",
                    Json::Arr(fleet.iter().map(|g| Json::Str(g.name().into())).collect()),
                )
                .set("horizon_us", horizon_us)
                .set("per_service_trace_scale", 5.5)
                .set(
                    "trace",
                    Json::obj()
                        .set("shape", "apollo bursts ×2.2 duty 0.25 + diurnal ±35%")
                        .set("mean_rate_hz_per_service", base.trace.mean_rate_hz)
                        .set("burst_factor", base.trace.burst_factor)
                        .set("burst_duty", base.trace.burst_duty)
                        .set("diurnal_depth", base.trace.diurnal_depth)
                        .set("diurnal_period_s", base.trace.diurnal_period_s),
                )
                .set(
                    "controller",
                    Json::obj()
                        .set("period_us", base.controller.period_us)
                        .set("breach_ratio", base.controller.breach_ratio)
                        .set("headroom_ratio", base.controller.headroom_ratio)
                        .set("adaptive_ch_be", base.controller.adaptive_ch_be),
                ),
        )
        .set("systems", systems_json)
        .set(
            "routing_gate",
            Json::obj()
                .set("system", "SGDRC")
                .set("round_robin_p99_us", rr)
                .set("best_load_aware_p99_us", best_alt)
                .set("p99_improvement", rr / best_alt)
                .set("load_aware_beats_round_robin", best_alt < rr),
        )
        .set("scaling", scaling_json)
        .set("scale_out", scale_out_json)
        .set(
            "thread_scaling",
            Json::obj()
                .set("skipped", skip_probes)
                .set("clock", "epoch-parallel (ClockKind::Parallel)")
                .set(
                    "method",
                    "self-exec child per point; pool built with SGDRC_THREADS=k",
                )
                .set("fleet_events_speedup_at_4_threads", speedup_at_4)
                .set("points", Json::Arr(ts_points)),
        )
        .set(
            "pool_dispatch",
            Json::obj()
                .set("skipped", skip_probes)
                .set("tasks_per_batch", 8usize)
                .set("workers", probe_workers)
                .set("pool_ns_per_batch", pool_ns)
                .set("scoped_spawn_ns_per_batch", scoped_ns)
                .set("pool_speedup", dispatch_speedup)
                .set("pool_beats_scoped_spawn_2x", dispatch_speedup >= 2.0),
        )
        .set("chaos", chaos_json)
        .set("elastic", elastic_json)
        .set("tiers", tiers_json)
        .set("telemetry", telemetry_json)
        .set("detected_cpus", detected_cpus)
        .set("worker_threads", worker_threads)
        .set("sgdrc_threads_env", threads.env_json());
    std::fs::write("BENCH_cluster.json", doc.pretty()).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");

    // Chaos resilience gates run in smoke mode too (CI's
    // `--smoke --chaos` step): the scenario is deterministic, so a pass
    // is a pass at any horizon. Only the absolute availability floor is
    // full-run-only (handled where the gate is computed).
    if chaos_enabled && !(chaos_gate_requeue && chaos_gate_floor && chaos_gate_no_be) {
        eprintln!(
            "WARNING: chaos resilience gate failed (requeue_beats_drop={chaos_gate_requeue}, availability_ok={chaos_gate_floor}, goodput_ge_no_be={chaos_gate_no_be})"
        );
        std::process::exit(1);
    }
    // Scale-out gates: streaming memory bound and clock==oracle identity
    // bind in smoke too; the 2× clock speedup and the 10M-request
    // headline only run (and only gate) on full runs — both decided
    // inside `run_scale_out`.
    if scale_out_enabled && !scale_out_ok {
        eprintln!("WARNING: scale-out gate failed (see scale_out section of BENCH_cluster.json)");
        std::process::exit(1);
    }
    // Elastic gates: the healing-beats-hole and serial==parallel checks
    // bind in smoke too (deterministic scenarios); the cost-vs-SLO
    // frontier gates only full runs — decided inside `run_elastic_bench`.
    if elastic_enabled && !elastic_ok {
        eprintln!("WARNING: elastic gate failed (see elastic section of BENCH_cluster.json)");
        std::process::exit(1);
    }
    // Tiered-SLO gates: all three (weighted goodput beats tier-blind,
    // tier-1 availability holds the no-BE floor, serial == parallel)
    // are deterministic scenarios, so they bind in smoke too.
    if tiers_enabled && !tiers_ok {
        eprintln!("WARNING: tiered-SLO gate failed (see tiers section of BENCH_cluster.json)");
        std::process::exit(1);
    }
    // Telemetry gate: bit-identity is hard-asserted inside the section;
    // the ≤5% recorder overhead binds in every mode (the scenario is
    // smoke-scale by construction, min-of-5 damps scheduler noise).
    if !telemetry_ok {
        eprintln!("WARNING: flight recorder overhead exceeded 5% (see telemetry section)");
        std::process::exit(1);
    }
    if !smoke && best_alt >= rr {
        eprintln!(
            "WARNING: load-aware routing ({best_alt:.0}µs) did not beat round-robin ({rr:.0}µs) on fleet p99"
        );
        std::process::exit(1);
    }
    // Parallel-clock perf gates. On a multi-core box the fleet clock
    // itself must scale (≥1.3× events/s at 4 threads); on a 1-CPU box
    // the thread curve is oversubscribed by construction, so the
    // persistent pool's dispatch advantage over per-call thread::scope
    // (≥2× on small batches) carries the claim instead.
    if !smoke && !skip_probes {
        // NaN (a failed probe) must fail the gate too, hence the
        // negated bindings rather than `< 1.3` / `< 2.0`.
        let clock_scales = speedup_at_4 >= 1.3;
        if detected_cpus >= 4 && !clock_scales {
            eprintln!(
                "WARNING: fleet clock speedup at 4 threads is {speedup_at_4:.2}× (< 1.3×) on a {detected_cpus}-core box"
            );
            std::process::exit(1);
        }
        let pool_wins = dispatch_speedup >= 2.0;
        if !pool_wins {
            eprintln!(
                "WARNING: persistent pool dispatch only {dispatch_speedup:.2}× over per-call thread::scope (< 2×)"
            );
            std::process::exit(1);
        }
    }
}
