//! Tab. 2: capability matrix of mainstream GPU sharing solutions.
fn main() {
    sgdrc_bench::header("Tab. 2 — GPU sharing solutions");
    print!("{}", baselines::render_tab2());
}
