//! Fig. 16: VRAM footprints of bimodal tensors per model, with and without
//! intermediate-tensor reuse.
use coloring::{no_reuse_bytes, plan_reuse, plan_tensors, vram_footprint, Interval, TensorRole};
use dnn::zoo::{build, ModelId};
use dnn::CompileOptions;
use gpu_spec::GpuModel;

fn main() {
    let spec = GpuModel::RtxA2000.spec();
    sgdrc_bench::header("Fig. 16 — bimodal tensor VRAM footprints (normalized)");
    println!(
        "{:<3} {:<16} {:>12} {:>14} {:>14} {:>8}",
        "ID", "Model", "original(MB)", "bimodal-noreuse", "bimodal-reuse", "norm"
    );
    for id in ModelId::all() {
        let m = dnn::compile(build(id), &spec, CompileOptions::default());
        let plans = plan_tensors(m.class(), &m.tensors);
        let intermediates: Vec<Interval> = m
            .tensors
            .iter()
            .filter(|t| t.role == TensorRole::Intermediate && t.bytes > 0)
            .map(|t| Interval {
                start: t.first_use,
                end: t.last_use,
                bytes: t.bytes,
            })
            .collect();
        let raw_intermediate = no_reuse_bytes(&intermediates);
        let reused = plan_reuse(&intermediates).total_bytes();
        let original: u64 = m.tensors.iter().map(|t| t.bytes).sum();
        // Bimodal copies double the dual-copy tensors; reuse shrinks the
        // intermediate arena (×2 for the two channel mappings of the
        // arena itself).
        let no_reuse = vram_footprint(&plans, &m.tensors, raw_intermediate * 2);
        let with_reuse = vram_footprint(&plans, &m.tensors, reused * 2);
        println!(
            "{:<3} {:<16} {:>12.1} {:>14.1} {:>14.1} {:>8.2}",
            id.letter(),
            id.name(),
            original as f64 / 1e6,
            no_reuse as f64 / 1e6,
            with_reuse as f64 / 1e6,
            with_reuse as f64 / original as f64
        );
    }
    println!("\npaper: footprints nearly double without reuse; reuse recovers most of it,");
    println!("especially for BE models I-K (large batches -> large intermediates).");
}
