//! Fig. 8 / Fig. 19: VRAM channel permutations recovered by latency-only
//! marking of a physically contiguous region on both GPUs.
use gpu_spec::GpuModel;
use mem_sim::GpuDevice;
use reveng::{align_classes, analyze, render_fig8, ChannelMarker, MarkerConfig};

fn main() {
    for (model, window_bytes, mark_partitions) in [
        (GpuModel::RtxA2000, 96u64 << 20, 12 * 12 * 4usize),
        (GpuModel::TeslaP40, 192 << 20, 24 * 24 * 2),
    ] {
        sgdrc_bench::header(&format!(
            "Fig. 8 — channel permutations on {}",
            model.name()
        ));
        let mut dev = GpuDevice::new(model, window_bytes, 2025);
        let mut marker = ChannelMarker::new(&mut dev, MarkerConfig::default()).expect("marker");
        let (start, len) = marker.longest_contiguous_run();
        let count = mark_partitions.min(len);
        println!("marking {count} contiguous partitions (latency probes only)...");
        let labels = marker.mark_indexed(start, count).expect("marking");
        let report = analyze(&labels);
        println!(
            "channels={} block={}KiB groups={} window={} patterns/group={:?} uniformity={:.2}",
            report.num_channels,
            report.block_size,
            report.groups.len(),
            report.window,
            report.patterns_per_group,
            report.uniformity_ratio()
        );
        for g in 0..report.groups.len() {
            println!("group {g} ({:?}):", report.groups[g]);
            print!("{}", render_fig8(&report, g));
        }
        // Verification against the oracle (not used by the pipeline).
        let hash = model.channel_hash();
        let (_, acc) = align_classes(&labels, |pa| hash.channel_of(pa), hash.num_channels());
        println!("oracle agreement of the marking: {:.2}%", acc * 100.0);
    }
}
