//! Fig. 9: frequency histogram of the channel permutation patterns across
//! a large VRAM span (learned lookup table census).
use gpu_spec::GpuModel;
use gpu_spec::PhysAddr;
use reveng::analyze;
use reveng::learner::{synthetic_samples, MlpConfig, MlpHashLearner};

fn main() {
    for model in [GpuModel::RtxA2000, GpuModel::TeslaP40] {
        sgdrc_bench::header(&format!("Fig. 9 — pattern histogram on {}", model.name()));
        let oracle = model.channel_hash();
        let span: u64 = 1 << 20; // 1 GiB worth of partitions
        let train = synthetic_samples(
            oracle.as_ref(),
            span,
            15_000,
            model.spec().cache_noise_rate,
            9,
        );
        let learner = MlpHashLearner::train(&train, &MlpConfig::default());
        let census_span = 24 * 24 * 64u64;
        let labels: Vec<(PhysAddr, u16)> = (0..census_span)
            .map(|p| (PhysAddr(p * 1024), learner.predict(p)))
            .collect();
        let report = analyze(&labels);
        println!(
            "window={} patterns: {}",
            report.window,
            report.histogram.len()
        );
        let max_count = report.histogram.values().max().copied().unwrap_or(1);
        for (i, (_, count)) in report.histogram.iter().enumerate() {
            let bar = "#".repeat((count * 40 / max_count) as usize);
            println!("pattern {i:>2}: {count:>5} {bar}");
        }
        println!(
            "uniformity (max/min): {:.2}  (paper: uniform)",
            report.uniformity_ratio()
        );
    }
}
