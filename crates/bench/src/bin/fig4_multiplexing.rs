//! Fig. 4: limitations of temporal (TGS-style) and spatial
//! (multi-streaming) multiplexing as the LS load rises.
//! LS: MobileNetV3; BE: DenseNet161; testbed model: RTX A2000.
use baselines::{MultiStreaming, Tgs};
use dnn::zoo::{build, ModelId};
use dnn::CompileOptions;
use gpu_spec::GpuModel;
use sgdrc_core::serving::{run, Policy, Scenario, Task};
use workload::metrics::{ls_metrics, slo_for};
use workload::trace::{generate, TraceConfig};

fn scenario(rate_hz: f64, horizon_us: f64) -> Scenario {
    let spec = GpuModel::RtxA2000.spec();
    let ls = dnn::compile(
        build(ModelId::MobileNetV3),
        &spec,
        CompileOptions::default(),
    );
    let be = dnn::compile(
        build(ModelId::DenseNet161),
        &spec,
        CompileOptions::default(),
    );
    let cfg = TraceConfig {
        mean_rate_hz: rate_hz,
        ..TraceConfig::apollo_like()
    };
    let ls = vec![Task::new(ls, &spec)];
    let be = vec![Task::new(be, &spec)];
    let arrivals = vec![generate(&cfg, horizon_us, 11)];
    Scenario::new(spec, ls, be, 4, arrivals, horizon_us)
}

fn row(policy: &mut dyn Policy, rate: f64) -> (f64, f64, f64) {
    let sc = scenario(rate, 3e6);
    let stats = run(policy, &sc);
    let slo = slo_for(sc.ls[0].profile.isolated_e2e_us, 2);
    let m = ls_metrics("MobileNetV3", &stats.ls_completed[0], slo, sc.horizon_us);
    let be_tp = stats.be_completed[0] as f64 * sc.be[0].model.batch as f64 / (sc.horizon_us / 1e6);
    (m.p99_latency_us, m.slo_attainment, be_tp)
}

fn main() {
    sgdrc_bench::header("Fig. 4a — temporal multiplexing (TGS-style) vs load");
    println!(
        "{:>10} {:>12} {:>10} {:>12}",
        "LS req/s", "p99 (µs)", "SLO att.", "BE (s/s)"
    );
    for rate in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let (p99, att, be) = row(&mut Tgs::default(), rate);
        println!("{rate:>10.0} {p99:>12.0} {att:>10.3} {be:>12.1}");
    }
    sgdrc_bench::header("Fig. 4b — spatial multiplexing (multi-streaming) vs load");
    println!(
        "{:>10} {:>12} {:>10} {:>12}",
        "LS req/s", "p99 (µs)", "SLO att.", "BE (s/s)"
    );
    for rate in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let (p99, att, be) = row(&mut MultiStreaming, rate);
        println!("{rate:>10.0} {p99:>12.0} {att:>10.3} {be:>12.1}");
    }
    println!("\npaper: temporal keeps latency low but starves BE; spatial keeps BE high");
    println!("but the LS SLO attainment collapses with load.");
}
