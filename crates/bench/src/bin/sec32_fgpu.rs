//! §3.2 / Fig. 11: FGPU's pure-XOR reverse engineering — works on the
//! GTX 1080, fails on non-power-of-2 GPUs, poisoned by one noisy sample.
use gpu_spec::GpuModel;
use reveng::fgpu::{solve_xor_hash, FgpuOutcome};
use reveng::learner::{oracle_test_set, synthetic_samples};

fn main() {
    sgdrc_bench::header("§3.2 — FGPU's XOR-solver on three GPUs (clean samples)");
    for (model, channels) in [
        (GpuModel::Gtx1080, 8u16),
        (GpuModel::TeslaP40, 12),
        (GpuModel::RtxA2000, 6),
    ] {
        let oracle = model.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 22, 4096, 0.0, 3);
        match solve_xor_hash(&train, channels) {
            FgpuOutcome::Solved(m) => {
                let test = oracle_test_set(oracle.as_ref(), 1 << 22, 4096, 4);
                println!(
                    "{:<10}: solved, accuracy {:.2}%",
                    model.name(),
                    m.accuracy(&test) * 100.0
                );
            }
            FgpuOutcome::Inconsistent {
                channel_bit,
                samples_consumed,
            } => {
                println!(
                    "{:<10}: INCONSISTENT (channel bit {channel_bit} after {samples_consumed} samples) — not a pure XOR hash",
                    model.name()
                );
            }
        }
    }
    sgdrc_bench::header("Fig. 11 — noise poisoning on the GTX 1080");
    for noise in [0.0, 0.0005, 0.01, 0.05] {
        let oracle = GpuModel::Gtx1080.channel_hash();
        let train = synthetic_samples(oracle.as_ref(), 1 << 22, 4096, noise, 5);
        let verdict = match solve_xor_hash(&train, 8) {
            FgpuOutcome::Solved(m) => {
                let test = oracle_test_set(oracle.as_ref(), 1 << 22, 4096, 6);
                format!("solved, accuracy {:.2}%", m.accuracy(&test) * 100.0)
            }
            FgpuOutcome::Inconsistent {
                samples_consumed, ..
            } => {
                format!("inconsistent after {samples_consumed} samples")
            }
        };
        println!("label noise {:>5.2}%: {verdict}", noise * 100.0);
    }
}
