//! Chrome/Perfetto trace export for the fleet flight recorder.
//!
//! [`perfetto_trace`] turns the [`TelemetryResult`] embedded in a
//! [`ClusterResult`] into the Trace Event Format (`trace.json`) that
//! both `chrome://tracing` and <https://ui.perfetto.dev> load directly:
//! one thread track per lane plus a trailing fleet track, flight-recorder
//! events as instants, completed requests as async begin/end slice pairs
//! (they overlap — a lane serves several requests at once), and the
//! metric registry as counter tracks. Timestamps are the simulator's
//! microseconds, which is exactly the unit the format expects.
//!
//! [`validate_trace`] is the CI well-formedness checker: schema fields,
//! per-track timestamp monotonicity, balanced/paired slices. It
//! validates the in-memory document so a failure points at the exporter,
//! not at a reparse.

use std::collections::HashMap;

use crate::json::Json;
use workload::cluster::ClusterResult;
use workload::telemetry::{EventKind, TelemetryResult, FLEET_TRACK};
use workload::ScaleEventKind;

fn scale_kind_name(kind: &ScaleEventKind) -> &'static str {
    match kind {
        ScaleEventKind::Provision { .. } => "provision",
        ScaleEventKind::Activate => "activate",
        ScaleEventKind::DrainStart { .. } => "drain_start",
        ScaleEventKind::CancelProvision => "cancel_provision",
        ScaleEventKind::Retire => "retire",
    }
}

/// One instant event (`ph: "i"`, thread scope).
fn instant(name: &str, tid: usize, ts: f64, args: Json) -> Json {
    Json::obj()
        .set("name", name)
        .set("ph", "i")
        .set("s", "t")
        .set("pid", 0u64)
        .set("tid", tid)
        .set("ts", ts)
        .set("args", args)
}

/// Builds the Trace Event Format document for `result`. Returns `None`
/// when the run was executed without telemetry.
pub fn perfetto_trace(result: &ClusterResult) -> Option<Json> {
    let tel: &TelemetryResult = result.telemetry.as_ref()?;
    let n = result.replicas.len();
    let fleet_tid = n;
    let tid_of = |lane: u32| {
        if lane == FLEET_TRACK {
            fleet_tid
        } else {
            lane as usize
        }
    };
    let mut events: Vec<Json> = Vec::new();
    events.push(
        Json::obj()
            .set("name", "process_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("args", Json::obj().set("name", "sgdrc fleet")),
    );
    for (r, rep) in result.replicas.iter().enumerate() {
        events.push(
            Json::obj()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 0u64)
                .set("tid", r)
                .set(
                    "args",
                    Json::obj().set("name", format!("lane{} ({})", r, rep.gpu.name())),
                ),
        );
    }
    events.push(
        Json::obj()
            .set("name", "thread_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("tid", fleet_tid)
            .set("args", Json::obj().set("name", "fleet")),
    );

    for e in &tel.events {
        let tid = tid_of(e.lane);
        let name = e.kind.name();
        match e.kind {
            EventKind::Completed {
                task,
                latency_us,
                slo_ok,
            } => {
                // Requests overlap on a lane, so each is an async slice
                // pair keyed by the globally unique event sequence — the
                // begin is back-dated by the observed latency.
                let slice = format!("task{task}");
                events.push(
                    Json::obj()
                        .set("name", slice.as_str())
                        .set("cat", "request")
                        .set("ph", "b")
                        .set("id", e.seq)
                        .set("pid", 0u64)
                        .set("tid", tid)
                        .set("ts", e.at_us - latency_us)
                        .set(
                            "args",
                            Json::obj()
                                .set("task", u64::from(task))
                                .set("latency_us", latency_us)
                                .set("slo_ok", slo_ok),
                        ),
                );
                events.push(
                    Json::obj()
                        .set("name", slice.as_str())
                        .set("cat", "request")
                        .set("ph", "e")
                        .set("id", e.seq)
                        .set("pid", 0u64)
                        .set("tid", tid)
                        .set("ts", e.at_us),
                );
            }
            // Verdict payloads are exactly what the counter tracks plot.
            EventKind::TickVerdict { .. } => {}
            EventKind::Routed { task } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj().set("task", u64::from(task)),
                ));
            }
            EventKind::Requeued { task, cause } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj()
                        .set("task", u64::from(task))
                        .set("cause", cause.name()),
                ));
            }
            EventKind::RetryDispatched { task, attempt } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj()
                        .set("task", u64::from(task))
                        .set("attempt", u64::from(attempt)),
                ));
            }
            EventKind::Refused { task, tier, reason } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj()
                        .set("task", u64::from(task))
                        .set("tier", u64::from(tier))
                        .set("reason", reason.name()),
                ));
            }
            EventKind::TimeoutDropped { task } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj().set("task", u64::from(task)),
                ));
            }
            EventKind::LsShed { task, count } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj()
                        .set("task", u64::from(task))
                        .set("count", u64::from(count)),
                ));
            }
            EventKind::BeParked { count } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj().set("count", u64::from(count)),
                ));
            }
            EventKind::FaultOnset { kind } | EventKind::FaultRecovered { kind } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj().set("kind", kind.name()),
                ));
            }
            EventKind::MigrationOut { job, to } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj()
                        .set("job", u64::from(job))
                        .set("to", u64::from(to)),
                ));
            }
            EventKind::MigrationIn { job, from } => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj()
                        .set("job", u64::from(job))
                        .set("from", u64::from(from)),
                ));
            }
            EventKind::Scale(kind) => {
                events.push(instant(
                    name,
                    tid,
                    e.at_us,
                    Json::obj().set("kind", scale_kind_name(&kind)),
                ));
            }
        }
    }

    // Counter tracks from the metric registry, sampled at tick instants.
    for s in &tel.series {
        // Per-tier series reuse the `lane` field for the tier rank.
        let counter = match s.lane {
            Some(rank) if s.name.starts_with("tier_") => format!("{}[tier{}]", s.name, rank),
            Some(lane) => format!("{}[lane{}]", s.name, lane),
            None => s.name.to_string(),
        };
        for (i, &v) in s.values.iter().enumerate() {
            events.push(
                Json::obj()
                    .set("name", counter.as_str())
                    .set("ph", "C")
                    .set("pid", 0u64)
                    .set("ts", tel.tick_us[i])
                    .set("args", Json::obj().set("value", v)),
            );
        }
    }

    Some(
        Json::obj()
            .set("traceEvents", Json::Arr(events))
            .set("displayTimeUnit", "ms"),
    )
}

fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(j: &Json) -> Option<f64> {
    match j {
        Json::Num(x) => Some(*x),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn as_str(j: &Json) -> Option<&str> {
    match j {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Checks that `doc` is a well-formed Trace Event Format document:
/// every event carries the schema fields its phase requires, timestamps
/// are finite and monotone non-decreasing per thread track (async slice
/// pairs live on their own `(cat, id)` timelines and counters on their
/// own named timelines), synchronous `B`/`E` slices balance per track,
/// async `b`/`e` pairs match with `begin.ts <= end.ts`, and `X` slices
/// have non-negative durations.
pub fn validate_trace(doc: &Json) -> Result<(), String> {
    let events = match field(doc, "traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("traceEvents is not an array".into()),
        None => return Err("missing traceEvents".into()),
    };
    // (pid, tid) -> last instant/slice timestamp on the thread track.
    let mut track_ts: HashMap<(i64, i64), f64> = HashMap::new();
    // (pid, tid) -> open synchronous B/E nesting depth.
    let mut depth: HashMap<(i64, i64), i64> = HashMap::new();
    // (cat, id) -> open async begin timestamp.
    let mut open_async: HashMap<(String, String), f64> = HashMap::new();
    // (pid, counter name) -> last sample timestamp.
    let mut counter_ts: HashMap<(i64, String), f64> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = field(e, "ph")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        field(e, "name")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = field(e, "ts")
            .and_then(as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if !ts.is_finite() {
            return Err(format!("event {i}: non-finite ts"));
        }
        let pid = field(e, "pid")
            .and_then(as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as i64;
        match ph {
            "B" | "E" | "X" | "i" | "I" => {
                let tid = field(e, "tid")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("event {i}: missing tid"))?
                    as i64;
                let track = (pid, tid);
                if let Some(&prev) = track_ts.get(&track) {
                    if ts < prev {
                        return Err(format!("event {i}: ts {ts} < {prev} on track {track:?}"));
                    }
                }
                track_ts.insert(track, ts);
                match ph {
                    "B" => *depth.entry(track).or_insert(0) += 1,
                    "E" => {
                        let d = depth.entry(track).or_insert(0);
                        if *d == 0 {
                            return Err(format!("event {i}: E without B on {track:?}"));
                        }
                        *d -= 1;
                    }
                    "X" => {
                        let dur = field(e, "dur")
                            .and_then(as_f64)
                            .ok_or_else(|| format!("event {i}: X without dur"))?;
                        if dur.is_nan() || dur < 0.0 {
                            return Err(format!("event {i}: negative dur {dur}"));
                        }
                    }
                    _ => {}
                }
            }
            "b" | "e" => {
                let cat = field(e, "cat")
                    .and_then(as_str)
                    .ok_or_else(|| format!("event {i}: async event without cat"))?;
                let id = field(e, "id")
                    .map(|j| match j {
                        Json::Str(s) => s.clone(),
                        Json::Int(v) => v.to_string(),
                        Json::Num(v) => v.to_string(),
                        other => format!("{other:?}"),
                    })
                    .ok_or_else(|| format!("event {i}: async event without id"))?;
                let key = (cat.to_string(), id);
                if ph == "b" {
                    if open_async.insert(key.clone(), ts).is_some() {
                        return Err(format!("event {i}: duplicate async begin {key:?}"));
                    }
                } else {
                    let begin = open_async
                        .remove(&key)
                        .ok_or_else(|| format!("event {i}: async end without begin {key:?}"))?;
                    if ts < begin {
                        return Err(format!("event {i}: async end {ts} before begin {begin}"));
                    }
                }
            }
            "C" => {
                let name = field(e, "name").and_then(as_str).unwrap_or_default();
                let key = (pid, name.to_string());
                if let Some(&prev) = counter_ts.get(&key) {
                    if ts < prev {
                        return Err(format!("event {i}: counter `{name}` ts {ts} < {prev}"));
                    }
                }
                counter_ts.insert(key, ts);
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (track, d) in &depth {
        if *d != 0 {
            return Err(format!("unbalanced B/E on track {track:?}: depth {d}"));
        }
    }
    if let Some(key) = open_async.keys().next() {
        return Err(format!("async begin never ended: {key:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_at(tid: usize, ts: f64) -> Json {
        instant("x", tid, ts, Json::obj())
    }

    #[test]
    fn validator_accepts_instants_async_pairs_and_counters() {
        let events = vec![
            Json::obj()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("args", Json::obj().set("name", "lane0")),
            instant_at(0, 1.0),
            Json::obj()
                .set("name", "task0")
                .set("cat", "request")
                .set("ph", "b")
                .set("id", 7u64)
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("ts", 0.5),
            instant_at(0, 2.0),
            Json::obj()
                .set("name", "task0")
                .set("cat", "request")
                .set("ph", "e")
                .set("id", 7u64)
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("ts", 2.0),
            Json::obj()
                .set("name", "backlog[lane0]")
                .set("ph", "C")
                .set("pid", 0u64)
                .set("ts", 1.0)
                .set("args", Json::obj().set("value", 3.0)),
        ];
        let doc = Json::obj().set("traceEvents", Json::Arr(events));
        validate_trace(&doc).expect("valid trace");
    }

    #[test]
    fn validator_rejects_time_regressions_and_unbalanced_slices() {
        let regress = Json::obj().set(
            "traceEvents",
            Json::Arr(vec![instant_at(0, 5.0), instant_at(0, 4.0)]),
        );
        assert!(validate_trace(&regress).is_err());
        // Same regression on different tracks is fine.
        let two_tracks = Json::obj().set(
            "traceEvents",
            Json::Arr(vec![instant_at(0, 5.0), instant_at(1, 4.0)]),
        );
        validate_trace(&two_tracks).expect("independent tracks");
        let dangling = Json::obj().set(
            "traceEvents",
            Json::Arr(vec![Json::obj()
                .set("name", "t")
                .set("cat", "request")
                .set("ph", "b")
                .set("id", 1u64)
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("ts", 1.0)]),
        );
        assert!(validate_trace(&dangling).is_err());
    }
}
