//! # sgdrc-bench — figure/table regeneration and micro-benchmarks
//!
//! One binary per paper artefact (see DESIGN.md's per-experiment index):
//! `cargo run --release -p sgdrc-bench --bin <target>`. Criterion
//! micro-benchmarks live in `benches/`.
//!
//! Machine-readable outputs (`fig17_results.json`, `BENCH_exec_sim.json`)
//! are emitted through the dependency-free [`json`] writer — the build
//! environment has no network access, so serde is not available.

pub mod json;

/// Prints a section header in a uniform style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}
