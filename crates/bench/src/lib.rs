//! # sgdrc-bench — figure/table regeneration and micro-benchmarks
//!
//! One binary per paper artefact (see DESIGN.md's per-experiment index):
//! `cargo run --release -p sgdrc-bench --bin <target>`. Criterion
//! micro-benchmarks live in `benches/`.

/// Prints a section header in a uniform style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}
