//! # sgdrc-bench — figure/table regeneration and micro-benchmarks
//!
//! One binary per paper artefact (see DESIGN.md's per-experiment index):
//! `cargo run --release -p sgdrc-bench --bin <target>`. Criterion
//! micro-benchmarks live in `benches/`.
//!
//! Machine-readable outputs (`fig17_results.json`, `BENCH_exec_sim.json`)
//! are emitted through the dependency-free [`json`] writer — the build
//! environment has no network access, so serde is not available.

pub mod json;
pub mod trace_export;

/// Prints a section header in a uniform style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Worker-thread attribution shared by every bench JSON: the detected
/// CPU count, the effective rayon worker count (the `SGDRC_THREADS`
/// override when set), the persistent pool's actual participant count,
/// and the raw env value — so a scaling curve collected by sweeping the
/// override is attributable from the JSON alone.
pub struct ThreadAttribution {
    pub detected_cpus: usize,
    pub worker_threads: usize,
    /// Participants in the persistent work-stealing pool (fixed at pool
    /// build; capturing this builds the pool if nothing else has).
    pub pool_workers: usize,
    pub env: Option<String>,
}

impl ThreadAttribution {
    pub fn capture() -> Self {
        Self {
            detected_cpus: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            worker_threads: rayon::current_num_threads(),
            pool_workers: rayon::current_pool_workers(),
            env: std::env::var(rayon::THREADS_ENV).ok(),
        }
    }

    /// Did an override make the worker count differ from the hardware?
    pub fn overridden(&self) -> bool {
        self.worker_threads != self.detected_cpus
    }

    /// The raw `SGDRC_THREADS` value as a JSON field (null when unset).
    pub fn env_json(&self) -> json::Json {
        match &self.env {
            Some(v) => json::Json::Str(v.clone()),
            None => json::Json::Null,
        }
    }

    /// Appends the standard attribution fields to a scaling/parallel
    /// section: `effective_threads`, `pool_workers` +
    /// `threads_overridden`.
    pub fn annotate(&self, section: json::Json) -> json::Json {
        section
            .set("effective_threads", self.worker_threads)
            .set("pool_workers", self.pool_workers)
            .set("threads_overridden", self.overridden())
    }
}
