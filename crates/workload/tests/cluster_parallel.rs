//! Parallel-fleet-clock contracts: the epoch-parallel clock must be
//! **bit-identical** to the reference serial clock — every completion
//! timestamp, migration, preemption count and histogram bin — for every
//! sharing system, any replica count, any `advance_order` permutation
//! and any pool worker count.
//!
//! The pool's worker count is fixed when the first parallel call builds
//! it (`SGDRC_THREADS` honored at pool build), so one process cannot
//! sweep worker counts itself; CI runs this suite under
//! `SGDRC_THREADS=2` and `SGDRC_THREADS=4` in addition to the default
//! 1-worker run, which is how the {1, 2, 4, 8} axis of the equivalence
//! matrix is actually exercised (8 via the bench's self-exec probes).

use gpu_spec::GpuModel;
use proptest::prelude::*;
use workload::cluster::{ClockKind, ClusterConfig, ControllerConfig, RouterKind};
use workload::trace::TraceConfig;
use workload::SystemKind;

fn short_horizon() -> f64 {
    if cfg!(debug_assertions) {
        1e5
    } else {
        2.5e5
    }
}

fn run_with_clock(
    cfg: &ClusterConfig,
    router: RouterKind,
    clock: ClockKind,
) -> workload::ClusterResult {
    let mut cfg = cfg.clone();
    cfg.clock = clock;
    let mut r = router.make(cfg.seed);
    workload::run_cluster(&cfg, r.as_mut())
}

/// Every sharing system, heterogeneous 4-replica fleet, controller
/// ticking with adaptive Ch_BE: the parallel epoch clock reproduces the
/// serial clock exactly.
#[test]
fn parallel_clock_matches_serial_clock_for_every_system() {
    let gpus = vec![
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
    ];
    for system in SystemKind::all() {
        let mut cfg = ClusterConfig::new(gpus.clone(), system);
        cfg.horizon_us = short_horizon();
        cfg.trace = TraceConfig::apollo_like().scaled(2.0).with_bursts(2.0, 0.3);
        cfg.controller = ControllerConfig {
            period_us: 2e4,
            breach_ratio: 0.9,
            adaptive_ch_be: true,
            ..Default::default()
        };
        let serial = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Serial);
        let parallel = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
        assert_eq!(
            serial,
            parallel,
            "{}: parallel fleet clock diverged from the serial clock",
            system.name()
        );
        assert!(serial.requests > 0, "{}: degenerate case", system.name());
    }
}

/// The parallel clock ignores `advance_order` (placement is scheduling,
/// not semantics): a serial run under any permutation equals a parallel
/// run under any other.
#[test]
fn parallel_clock_is_invariant_to_advance_order() {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080, GpuModel::TeslaP40],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like()
        .scaled(2.2)
        .with_diurnal(0.3, 0.3);
    cfg.controller.period_us = 2e4;
    let baseline = run_with_clock(&cfg, RouterKind::P2cSlo, ClockKind::Parallel);
    for order in [vec![2, 0, 1], vec![1, 2, 0]] {
        let mut serial_cfg = cfg.clone();
        serial_cfg.advance_order = order.clone();
        let serial = run_with_clock(&serial_cfg, RouterKind::P2cSlo, ClockKind::Serial);
        assert_eq!(baseline, serial, "order {order:?}");
        let mut par_cfg = cfg.clone();
        par_cfg.advance_order = order.clone();
        let parallel = run_with_clock(&par_cfg, RouterKind::P2cSlo, ClockKind::Parallel);
        assert_eq!(baseline, parallel, "parallel under order {order:?}");
    }
}

/// Deterministic permutation of `0..n` from a seed (Fisher–Yates over a
/// splitmix64 chain) — lets the property below draw arbitrary
/// `advance_order`s from one sampled integer.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let split = |z: &mut u64| {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (split(&mut seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    /// Random fleets (size, GPU mix, system, router, trace intensity,
    /// seed) under random `advance_order` permutations: serial and
    /// parallel clocks agree bit for bit. Runs under whatever pool the
    /// process was started with — the CI matrix supplies the
    /// multi-worker pools.
    #[test]
    fn serial_and_parallel_clocks_agree(
        n_replicas in 1usize..5,
        gpu_bits in 0u64..16,
        system_idx in 0usize..6,
        router_idx in 0usize..3,
        scale in 0.8f64..2.6,
        seed in 0u64..1_000_000,
        perm_seed in 0u64..1_000_000,
    ) {
        // P40 excluded: MPS (one of the sampled systems) cannot run on
        // it, and capability filtering is not what this property tests.
        let models = [GpuModel::RtxA2000, GpuModel::Gtx1080];
        let gpus: Vec<GpuModel> = (0..n_replicas)
            .map(|r| models[((gpu_bits >> r) & 1) as usize])
            .collect();
        let system = SystemKind::all()[system_idx];
        let router = RouterKind::all()[router_idx];
        let mut cfg = ClusterConfig::new(gpus, system);
        cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
        cfg.trace = TraceConfig::apollo_like().scaled(scale);
        cfg.seed = seed;
        cfg.controller = ControllerConfig {
            period_us: 1.2e4,
            breach_ratio: 0.9,
            adaptive_ch_be: true,
            ..Default::default()
        };
        cfg.advance_order = permutation(n_replicas, perm_seed);
        let serial = run_with_clock(&cfg, router, ClockKind::Serial);
        let parallel = run_with_clock(&cfg, router, ClockKind::Parallel);
        prop_assert_eq!(serial, parallel);
    }
}
