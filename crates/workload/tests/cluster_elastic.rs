//! Elastic-fleet contracts for the fleet clock.
//!
//! Four pillars:
//! * **no-op bit-identity** — an elastic config that can never change
//!   membership (empty warm pool, `Hold`, min == max == initial)
//!   reproduces the pre-elastic simulator exactly, for every system
//!   and router;
//! * **clock bit-identity** — serial and parallel clocks agree bit for
//!   bit under random `ScalingPolicy` + `FaultPlan` combinations (the
//!   CI matrix supplies multi-worker pools);
//! * **conservation** — arrivals == completions + timeout-drops +
//!   shed + in-flight-at-horizon across random
//!   join/drain/crash-replacement schedules, all systems and clock
//!   kinds;
//! * **lifecycle semantics** — scale-up pays the provisioning delay
//!   before a lane turns routable, scale-down drains and retires
//!   without losing work, breach draining swaps out a hot lane, and
//!   crash replacement beats the no-replacement fleet on delivered
//!   requests.

use gpu_spec::GpuModel;
use proptest::prelude::*;
use workload::chaos::{FaultEvent, FaultPlan};
use workload::cluster::{ClockKind, ClusterConfig, ControllerConfig, RouterKind};
use workload::elastic::{
    ElasticConfig, ScaleCause, ScaleEventKind, ScalingPolicyKind, ThresholdPolicy, WarmPoolConfig,
};
use workload::trace::TraceConfig;
use workload::SystemKind;

fn short_horizon() -> f64 {
    if cfg!(debug_assertions) {
        1e5
    } else {
        2.5e5
    }
}

fn run_with_clock(
    cfg: &ClusterConfig,
    router: RouterKind,
    clock: ClockKind,
) -> workload::ClusterResult {
    let mut cfg = cfg.clone();
    cfg.clock = clock;
    let mut r = router.make(cfg.seed);
    workload::run_cluster(&cfg, r.as_mut())
}

/// A busy two-GPU fleet with a fast controller — the base scenario the
/// unit tests perturb with elastic configs.
fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(2.0);
    cfg.controller = ControllerConfig {
        period_us: 1e4,
        breach_ratio: 0.9,
        adaptive_ch_be: true,
        ..Default::default()
    };
    cfg
}

/// A warm pool with a short, deterministic-but-jittered delay so
/// provisioning completes well inside the short test horizon.
fn fast_pool(gpus: Vec<GpuModel>) -> WarmPoolConfig {
    WarmPoolConfig {
        provision_delay_us: 5e3,
        provision_jitter: 0.2,
        ..WarmPoolConfig::new(gpus)
    }
}

fn assert_conserved(r: &workload::ClusterResult) {
    assert_eq!(
        r.arrivals_injected,
        r.requests + r.timeout_drops + r.ls_shed + r.in_flight_at_end,
        "conservation: injected {} != completed {} + dropped {} + shed {} + in-flight {}",
        r.arrivals_injected,
        r.requests,
        r.timeout_drops,
        r.ls_shed,
        r.in_flight_at_end,
    );
}

/// The acceptance baseline: a pinned elastic config (no warm lanes,
/// `Hold`, min == max == initial) is bit-identical to `elastic: None`
/// for every `SystemKind` and router, on both clocks.
#[test]
fn noop_elasticity_matches_disabled_exactly() {
    for system in SystemKind::all() {
        for router in RouterKind::all() {
            let mut cfg = base_cfg();
            cfg.system = system;
            let mut pinned =
                ElasticConfig::new(WarmPoolConfig::new(vec![]), ScalingPolicyKind::Hold);
            pinned.min_replicas = cfg.gpus.len();
            pinned.max_replicas = cfg.gpus.len();
            let mut elastic = cfg.clone();
            elastic.elastic = Some(pinned);
            for clock in [ClockKind::Serial, ClockKind::Parallel] {
                let a = run_with_clock(&elastic, router, clock);
                let b = run_with_clock(&cfg, router, clock);
                assert_eq!(
                    a,
                    b,
                    "{:?}/{}: pinned elastic config diverged from elastic: None",
                    system,
                    router.name()
                );
            }
        }
    }
}

/// A warm pool that is never drawn from costs nothing: the configured
/// lanes serve identically to the non-elastic fleet and the frozen
/// warm lane bills zero replica-seconds.
#[test]
fn untouched_warm_pool_leaves_serving_identical() {
    let mut cfg = base_cfg();
    let n_init = cfg.gpus.len();
    let mut hold = ElasticConfig::new(fast_pool(vec![GpuModel::RtxA2000]), ScalingPolicyKind::Hold);
    hold.min_replicas = n_init;
    hold.max_replicas = n_init;
    let mut elastic = cfg.clone();
    elastic.elastic = Some(hold);
    let a = run_with_clock(&elastic, RouterKind::ShortestBacklog, ClockKind::Parallel);
    let b = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
    cfg.elastic = None;
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.slo_met, b.slo_met);
    assert_eq!(a.fleet_hist, b.fleet_hist);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.arrivals_injected, b.arrivals_injected);
    assert_eq!(a.replicas.len(), n_init + 1);
    assert_eq!(a.replicas[..n_init], b.replicas[..n_init]);
    let warm = &a.replicas[n_init];
    assert_eq!(warm.requests, 0, "frozen warm lane must serve nothing");
    assert_eq!(warm.active_us, 0.0, "frozen warm lane must bill nothing");
    assert_eq!(a.replica_seconds, b.replica_seconds);
    assert!(a.scale_events.is_empty());
    assert_conserved(&a);
}

/// Scale-up under pressure: the threshold policy provisions a warm
/// lane, the lane pays the seeded delay before its `Activate`, and it
/// serves real traffic afterwards.
#[test]
fn scale_up_pays_provision_delay_then_serves() {
    let mut cfg = base_cfg();
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    let n_init = cfg.gpus.len();
    let mut e = ElasticConfig::new(
        fast_pool(vec![GpuModel::RtxA2000, GpuModel::RtxA2000]),
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_backlog: 2.0,
            ..Default::default()
        }),
    );
    e.min_replicas = n_init;
    cfg.elastic = Some(e);
    let res = run_with_clock(&cfg, RouterKind::P2cSlo, ClockKind::Parallel);
    assert!(res.warm_hits > 0, "pressure must draw from the warm pool");
    assert!(res.provision_delay_total_us > 0.0);
    let provision = res
        .scale_events
        .iter()
        .find(|ev| {
            matches!(
                ev.kind,
                ScaleEventKind::Provision {
                    cause: ScaleCause::Load,
                    ..
                }
            )
        })
        .expect("a Load provision event");
    let activate = res
        .scale_events
        .iter()
        .find(|ev| ev.replica == provision.replica && ev.kind == ScaleEventKind::Activate)
        .expect("the provisioned lane must activate");
    let ScaleEventKind::Provision { ready_at_us, .. } = provision.kind else {
        unreachable!()
    };
    assert_eq!(
        activate.at_us, ready_at_us,
        "activation happens exactly at the drawn ready instant"
    );
    assert!(
        activate.at_us > provision.at_us,
        "the provisioning delay must separate decision from membership"
    );
    let joined = &res.replicas[provision.replica];
    assert!(joined.requests > 0, "the activated lane must serve traffic");
    assert!(joined.active_us > 0.0 && joined.active_us < cfg.horizon_us);
    assert_conserved(&res);
}

/// Scale-down on an idle fleet: surplus lanes drain, retire, and the
/// run bills measurably fewer replica-seconds than the static fleet —
/// without losing a single request.
#[test]
fn scale_down_drains_retires_and_saves_replica_seconds() {
    let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; 3], SystemKind::Sgdrc);
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(0.4);
    cfg.controller.period_us = 1e4;
    let mut e = ElasticConfig::new(
        WarmPoolConfig::new(vec![]),
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_ratio: 50.0,
            up_backlog: 1e9,
            down_ratio: 5.0,
            down_backlog: 8.0,
            step: 1,
        }),
    );
    e.min_replicas = 1;
    cfg.elastic = Some(e);
    let res = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
    assert!(res.drains_started > 0, "an idle fleet must scale down");
    assert!(
        res.drains_completed > 0,
        "drained lanes must quiesce and retire"
    );
    assert!(res
        .scale_events
        .iter()
        .any(|ev| ev.kind == ScaleEventKind::Retire));
    let static_seconds = 3.0 * cfg.horizon_us / 1e6;
    assert!(
        res.replica_seconds < static_seconds,
        "retired lanes must stop billing ({} vs static {})",
        res.replica_seconds,
        static_seconds
    );
    assert_conserved(&res);

    // The same trace on the static fleet completes the same arrivals —
    // scale-down costs capacity, never correctness.
    let mut static_cfg = cfg.clone();
    static_cfg.elastic = None;
    let base = run_with_clock(
        &static_cfg,
        RouterKind::ShortestBacklog,
        ClockKind::Parallel,
    );
    assert_eq!(res.arrivals_injected, base.arrivals_injected);
    assert_conserved(&base);
}

/// Sustained SLO breach on a slow lane drains it (cause `SloBreach`)
/// and provisions a warm replacement.
#[test]
fn breach_drain_swaps_out_the_hot_lane() {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.5);
    cfg.controller.period_us = 1e4;
    let mut e = ElasticConfig::new(fast_pool(vec![GpuModel::RtxA2000]), ScalingPolicyKind::Hold);
    e.min_replicas = 1;
    e.breach_drain_ticks = 2;
    e.breach_drain_ratio = 0.5;
    cfg.elastic = Some(e);
    let res = run_with_clock(&cfg, RouterKind::P2cSlo, ClockKind::Parallel);
    assert!(
        res.scale_events.iter().any(|ev| matches!(
            ev.kind,
            ScaleEventKind::DrainStart {
                cause: ScaleCause::SloBreach
            }
        )),
        "a sustained breach must drain the hot lane: {:?}",
        res.scale_events
    );
    assert!(
        res.scale_events.iter().any(|ev| matches!(
            ev.kind,
            ScaleEventKind::Provision {
                cause: ScaleCause::SloBreach,
                ..
            }
        )),
        "the drained lane must be replaced from the warm pool"
    );
    assert_conserved(&res);
}

/// Crash replacement closes the loop with chaos: a permanently dead
/// lane is written off after the confirmation window, a warm lane takes
/// its place, and the self-healing fleet delivers more than the
/// no-replacement fleet under the identical fault plan.
#[test]
fn crash_replacement_beats_no_replacement() {
    let mut cfg = base_cfg();
    let crash_at = cfg.horizon_us * 0.25;
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0,
        crash_at,
        f64::INFINITY,
    )]));
    let mut e = ElasticConfig::new(fast_pool(vec![GpuModel::RtxA2000]), ScalingPolicyKind::Hold);
    e.min_replicas = 1;
    e.replace_after_us = 1e4;
    let mut healing = cfg.clone();
    healing.elastic = Some(e);

    let healed = run_with_clock(&healing, RouterKind::ShortestBacklog, ClockKind::Parallel);
    let hole = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);

    assert_eq!(healed.replacements, 1, "the dead lane must be replaced");
    assert!(healed.scale_events.iter().any(|ev| matches!(
        ev.kind,
        ScaleEventKind::Provision {
            cause: ScaleCause::CrashReplace,
            ..
        }
    )));
    assert!(healed
        .scale_events
        .iter()
        .any(|ev| ev.replica == 0 && ev.kind == ScaleEventKind::Retire));
    assert_eq!(healed.arrivals_injected, hole.arrivals_injected);
    assert!(
        healed.requests > hole.requests,
        "self-healing must out-deliver the fleet with a hole ({} vs {})",
        healed.requests,
        hole.requests
    );
    assert_conserved(&healed);
    assert_conserved(&hole);
}

/// Satellite: `prepare` rejects fault events aimed past the fleet —
/// including the warm lanes — instead of silently ignoring them.
#[test]
#[should_panic(expected = "fault plan targets replica")]
fn out_of_range_fault_target_is_rejected() {
    let mut cfg = base_cfg();
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(7, 1e4, 1e4)]));
    run_with_clock(&cfg, RouterKind::RoundRobin, ClockKind::Parallel);
}

/// Warm lanes are legal fault targets: a crash on a provisioning lane
/// cancels the scale-up and the lane falls back to the warm pool.
#[test]
fn crash_mid_provisioning_cancels_the_scale_up() {
    let mut cfg = base_cfg();
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    let warm_lane = cfg.gpus.len();
    // Crash the (sole) warm lane just after the first tick — any
    // provisioning started there must abort.
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        warm_lane,
        1.1e4,
        f64::INFINITY,
    )]));
    let mut e = ElasticConfig::new(
        WarmPoolConfig {
            provision_delay_us: 5e4,
            provision_jitter: 0.0,
            ..WarmPoolConfig::new(vec![GpuModel::RtxA2000])
        },
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_backlog: 0.5,
            ..Default::default()
        }),
    );
    e.min_replicas = cfg.gpus.len();
    cfg.elastic = Some(e);
    let res = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
    assert!(res.warm_hits > 0, "pressure must start a provisioning");
    assert!(
        res.scale_events
            .iter()
            .any(|ev| ev.replica == warm_lane && ev.kind == ScaleEventKind::CancelProvision),
        "the crash must cancel the in-flight provisioning: {:?}",
        res.scale_events
    );
    assert!(
        !res.scale_events
            .iter()
            .any(|ev| ev.replica == warm_lane && ev.kind == ScaleEventKind::Activate),
        "a cancelled provisioning never activates"
    );
    assert_conserved(&res);
}

/// Deterministic permutation of `0..n` from a seed (Fisher–Yates over a
/// splitmix64 chain).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let split = |z: &mut u64| {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (split(&mut seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A random-but-valid elastic config over `n_init` configured lanes and
/// `warm` warm lanes, exercising every lifecycle path the knob bits
/// enable.
fn random_elastic(n_init: usize, warm: usize, bits: u64) -> ElasticConfig {
    let pool = WarmPoolConfig {
        provision_delay_us: 2e3 + (bits % 7) as f64 * 3e3,
        provision_jitter: 0.25,
        ..WarmPoolConfig::new(vec![GpuModel::RtxA2000; warm])
    };
    let policy = if bits & 1 == 0 {
        ScalingPolicyKind::Hold
    } else {
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_ratio: 0.6 + (bits >> 1 & 3) as f64 * 0.3,
            down_ratio: 0.3,
            up_backlog: 1.0 + (bits >> 3 & 7) as f64,
            down_backlog: 2.0,
            step: 1 + (bits >> 6 & 1) as usize,
        })
    };
    let mut e = ElasticConfig::new(pool, policy);
    e.min_replicas = 1 + (bits >> 7) as usize % n_init.max(1);
    e.max_replicas = n_init + warm;
    e.up_cooldown_us = (bits >> 9 & 1) as f64 * 1.5e4;
    e.down_cooldown_us = (bits >> 10 & 1) as f64 * 1.5e4;
    if bits >> 11 & 1 == 1 {
        e.breach_drain_ticks = 2;
        e.breach_drain_ratio = 0.8;
    }
    if bits >> 12 & 1 == 1 {
        e.replace_after_us = 8e3;
    }
    e
}

proptest! {
    /// The acceptance property: random fleets under random scaling
    /// policies *and* fault plans — serial and parallel clocks agree
    /// bit for bit on every field, including the scale-event log and
    /// the membership accounting, for any `advance_order`.
    #[test]
    fn clocks_agree_under_scaling_and_faults(
        n_replicas in 1usize..4,
        pool in (0usize..3, 0u64..8192),
        system_idx in 0usize..6,
        router_idx in 0usize..3,
        scale in 0.8f64..2.4,
        seed in 0u64..1_000_000,
        fault in (0u64..1_000_000, 0.5f64..2.0),
        perm_seed in 0u64..1_000_000,
    ) {
        let (warm, elastic_bits) = pool;
        let (fault_seed, intensity) = fault;
        let system = SystemKind::all()[system_idx];
        let router = RouterKind::all()[router_idx];
        let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; n_replicas], system);
        cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
        cfg.trace = TraceConfig::apollo_like().scaled(scale);
        cfg.seed = seed;
        cfg.controller = ControllerConfig {
            period_us: 1.2e4,
            breach_ratio: 0.9,
            adaptive_ch_be: true,
            ..Default::default()
        };
        cfg.elastic = Some(random_elastic(n_replicas, warm, elastic_bits));
        cfg.chaos = Some(FaultPlan::generate(
            fault_seed,
            n_replicas + warm,
            cfg.horizon_us,
            intensity,
        ));
        cfg.advance_order = permutation(n_replicas + warm, perm_seed);
        let serial = run_with_clock(&cfg, router, ClockKind::Serial);
        let parallel = run_with_clock(&cfg, router, ClockKind::Parallel);
        prop_assert_eq!(serial, parallel);
    }

    /// Satellite: conservation under elasticity — every injected
    /// arrival is exactly one of completed / timeout-dropped / shed /
    /// in-flight-at-horizon, across random join/drain/crash-replacement
    /// schedules, all systems and both clock kinds.
    #[test]
    fn arrivals_are_conserved_under_elasticity(
        n_replicas in 1usize..4,
        pool in (0usize..3, 0u64..8192),
        system_idx in 0usize..6,
        router_idx in 0usize..3,
        mode_bits in 0u64..4,
        scale in 0.8f64..2.4,
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
    ) {
        let (warm, elastic_bits) = pool;
        let serial_clock = mode_bits & 1 == 1;
        let with_chaos = mode_bits & 2 == 2;
        let system = SystemKind::all()[system_idx];
        let router = RouterKind::all()[router_idx];
        let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; n_replicas], system);
        cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
        cfg.trace = TraceConfig::apollo_like().scaled(scale);
        cfg.seed = seed;
        cfg.controller.period_us = 1.2e4;
        cfg.elastic = Some(random_elastic(n_replicas, warm, elastic_bits));
        if with_chaos {
            cfg.chaos = Some(FaultPlan::generate(
                fault_seed,
                n_replicas + warm,
                cfg.horizon_us,
                1.5,
            ));
        }
        let clock = if serial_clock { ClockKind::Serial } else { ClockKind::Parallel };
        let res = run_with_clock(&cfg, router, clock);
        prop_assert_eq!(
            res.arrivals_injected,
            res.requests + res.timeout_drops + res.ls_shed + res.in_flight_at_end,
            "injected {} != completed {} + dropped {} + shed {} + in-flight {}",
            res.arrivals_injected,
            res.requests,
            res.timeout_drops,
            res.ls_shed,
            res.in_flight_at_end
        );
        prop_assert!(res.drains_completed <= res.drains_started);
        prop_assert!(res.faults_recovered <= res.faults_injected);
    }
}
