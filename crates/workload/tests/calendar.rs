//! Calendar-queue contracts: [`EventCalendar`] must agree with two
//! independent oracles — a linear scan over the live key table and a
//! `BinaryHeap` priority queue — on every busy set it emits, for random
//! interleavings of insert, rekey, remove and clock advances, with the
//! tie-break (ascending lane index) identical to the order the fleet
//! clock's linear-scan reference produces.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use workload::EventCalendar;

/// Linear-scan oracle: every stored lane whose key is due at `t`,
/// ascending by lane index (exactly the fleet clock's retained oracle).
fn scan_due(keys: &[f64], t: f64, strict: bool) -> Vec<u32> {
    keys.iter()
        .enumerate()
        .filter(|&(_, &k)| k.is_finite() && if strict { k < t } else { k <= t })
        .map(|(l, _)| l as u32)
        .collect()
}

/// BinaryHeap oracle: rebuild a min-heap over the live keys and pop
/// everything due. Non-negative finite f64 keys order correctly through
/// their bit patterns, so `(bits, lane)` gives key order with
/// lane-index tie-break — the canonical emission order.
fn heap_due(keys: &[f64], t: f64, strict: bool) -> Vec<u32> {
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = keys
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k.is_finite())
        .map(|(l, &k)| Reverse((k.to_bits(), l as u32)))
        .collect();
    let mut out = Vec::new();
    while let Some(&Reverse((bits, lane))) = heap.peek() {
        let k = f64::from_bits(bits);
        if if strict { k < t } else { k <= t } {
            out.push(lane);
            heap.pop();
        } else {
            break;
        }
    }
    // Key order with lane tie-break → lane order, for the comparison.
    out.sort_unstable();
    out
}

proptest! {
    /// Random op sequences over fleets of up to 48 lanes, with bucket
    /// widths and slot counts drawn adversarially small so the ring
    /// wraps many times: every collected busy set equals both oracles,
    /// and the stored count tracks the live key table.
    ///
    /// Each sampled op tuple decodes by its `kind` field: 0–3 set a
    /// lane's key at now + offset (negative offsets probe the
    /// behind-the-cursor clamp), 4 removes a lane, 5–6 advance the
    /// clock and collect.
    #[test]
    fn calendar_matches_linear_scan_and_heap_oracles(
        n_lanes in 1usize..48,
        width in 0.5f64..30.0,
        n_slots in 1usize..24,
        ops in prop::collection::vec(
            (0u8..7, 0usize..48, -40.0f64..400.0, 0.0f64..120.0, 0u8..2),
            1..120,
        ),
    ) {
        let mut cal = EventCalendar::new();
        cal.reset(n_lanes, width, n_slots);
        // The live key table both oracles read: INFINITY = absent.
        let mut keys = vec![f64::INFINITY; n_lanes];
        let mut now = 0.0f64;
        let mut busy = Vec::new();
        for &(kind, lane, offset, dt, strict) in &ops {
            let lane = lane % n_lanes;
            match kind {
                0..=3 => {
                    let key = (now + offset).max(0.0);
                    cal.set(lane as u32, key);
                    keys[lane] = key;
                }
                4 => {
                    cal.remove(lane as u32);
                    keys[lane] = f64::INFINITY;
                }
                _ => {
                    let strict = strict == 1;
                    now += dt;
                    busy.clear();
                    cal.collect_due(now, strict, &mut busy);
                    let scan = scan_due(&keys, now, strict);
                    let heap = heap_due(&keys, now, strict);
                    prop_assert_eq!(&scan, &heap, "the two oracles disagree");
                    prop_assert_eq!(&busy, &scan,
                        "calendar busy set diverged at t={} strict={}", now, strict);
                    // Collection consumes: clear the emitted lanes.
                    for &l in &busy {
                        keys[l as usize] = f64::INFINITY;
                    }
                }
            }
            prop_assert_eq!(
                cal.len(),
                keys.iter().filter(|k| k.is_finite()).count(),
                "stored count diverged from the live key table"
            );
        }
        // Final drain (the fleet clock's horizon form: inclusive).
        busy.clear();
        cal.collect_due(now, false, &mut busy);
        prop_assert_eq!(&busy, &scan_due(&keys, now, false));
    }
}

/// Equal keys emit in ascending lane order — the tie-break the parallel
/// epoch batch and the serial reference both use, so per-epoch dispatch
/// order is stable across the two selection paths.
#[test]
fn equal_keys_emit_in_lane_index_order() {
    let mut cal = EventCalendar::new();
    cal.reset(16, 5.0, 8);
    // Insert in descending lane order so the emission order cannot be
    // an accident of insertion.
    for lane in (0..16u32).rev() {
        cal.set(lane, 7.5);
    }
    let mut busy = Vec::new();
    cal.collect_due(10.0, true, &mut busy);
    assert_eq!(busy, (0..16).collect::<Vec<u32>>());
}

/// Re-keying a lane repeatedly (the fleet refresh path: every mutation
/// re-derives `next_pending_at`) never duplicates it in a busy set.
#[test]
fn rekeyed_lane_is_emitted_exactly_once() {
    let mut cal = EventCalendar::new();
    cal.reset(4, 2.0, 4);
    for step in 0..40 {
        cal.set(1, 3.0 + (step as f64) * 0.25);
    }
    cal.set(1, 9.0);
    let mut busy = Vec::new();
    cal.collect_due(50.0, true, &mut busy);
    assert_eq!(busy, vec![1]);
}
