//! Streaming long-horizon mode contracts:
//!
//! * streaming differs from the retained mode **only** in what it keeps:
//!   stripping the per-request completion logs from a retained run
//!   yields the streaming run exactly — same fleet sketch bins, same
//!   counters, same migrations, same per-replica summaries — with and
//!   without a fault plan;
//! * the memory bound is real: streaming runs end with zero retained
//!   completion records, retained runs hold one per completion;
//! * the serial reference clock and the calendar/parallel clock remain
//!   bit-identical under streaming.

use gpu_spec::GpuModel;
use workload::chaos::{FaultEvent, FaultPlan};
use workload::cluster::{ClockKind, ClusterConfig, ControllerConfig, RouterKind};
use workload::elastic::{ElasticConfig, ScalingPolicyKind, ThresholdPolicy, WarmPoolConfig};
use workload::trace::TraceConfig;
use workload::SystemKind;

fn short_horizon() -> f64 {
    if cfg!(debug_assertions) {
        1.5e5
    } else {
        4e5
    }
}

fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        vec![
            GpuModel::RtxA2000,
            GpuModel::Gtx1080,
            GpuModel::RtxA2000,
            GpuModel::Gtx1080,
        ],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(2.2).with_bursts(2.0, 0.3);
    cfg.controller = ControllerConfig {
        period_us: 2.5e4,
        breach_ratio: 0.9,
        adaptive_ch_be: true,
        ..Default::default()
    };
    cfg
}

fn run(cfg: &ClusterConfig, router: RouterKind) -> workload::ClusterResult {
    let mut r = router.make(cfg.seed);
    workload::run_cluster(cfg, r.as_mut())
}

/// Erases exactly what streaming mode does not keep: the per-request
/// completion logs and their retained-record count.
fn strip_retained(mut r: workload::ClusterResult) -> workload::ClusterResult {
    r.retained_completions = 0;
    for rep in &mut r.replicas {
        for log in &mut rep.stats.ls_completed {
            log.clear();
        }
    }
    r
}

#[test]
fn streaming_equals_retained_modulo_completion_logs() {
    for router in RouterKind::all() {
        let retained_cfg = base_cfg();
        let mut streaming_cfg = base_cfg();
        streaming_cfg.streaming = true;

        let retained = run(&retained_cfg, router);
        let streaming = run(&streaming_cfg, router);

        assert!(retained.requests > 0, "degenerate scenario");
        assert_eq!(
            retained.retained_completions, retained.requests,
            "retained mode holds one record per completion"
        );
        assert_eq!(
            streaming.retained_completions, 0,
            "streaming mode must not retain completion logs"
        );
        assert_eq!(
            strip_retained(retained),
            streaming,
            "{}: streaming diverged from retained beyond the logs",
            router.name()
        );
    }
}

/// The equivalence survives faults: a crash + recovery mid-run, with
/// requeue/retry traffic and degradation active, still folds to the
/// identical aggregate result.
#[test]
fn streaming_equals_retained_under_chaos() {
    let plan = FaultPlan::new(vec![FaultEvent::crash(
        1,
        0.4 * short_horizon(),
        0.3 * short_horizon(),
    )]);
    let mut retained_cfg = base_cfg();
    retained_cfg.chaos = Some(plan.clone());
    let mut streaming_cfg = retained_cfg.clone();
    streaming_cfg.streaming = true;

    let retained = run(&retained_cfg, RouterKind::P2cSlo);
    let streaming = run(&streaming_cfg, RouterKind::P2cSlo);

    assert!(retained.requeued > 0, "the crash must orphan requests");
    assert_eq!(streaming.retained_completions, 0);
    assert_eq!(strip_retained(retained), streaming);
}

/// Serial reference clock vs calendar/parallel clock, both streaming:
/// bit-identical, so the long-horizon mode does not depend on the
/// clock's selection or dispatch strategy.
#[test]
fn streaming_serial_and_parallel_clocks_agree() {
    let mut cfg = base_cfg();
    cfg.streaming = true;
    for system in [SystemKind::Sgdrc, SystemKind::Tgs] {
        let mut c = cfg.clone();
        c.system = system;
        c.clock = ClockKind::Serial;
        let serial = run(&c, RouterKind::ShortestBacklog);
        c.clock = ClockKind::Parallel;
        let parallel = run(&c, RouterKind::ShortestBacklog);
        assert_eq!(serial, parallel, "{}", system.name());
        assert!(serial.requests > 0);
    }
}

/// Streaming requires a ticking controller (its window bound); the
/// config assert fires otherwise.
#[test]
#[should_panic(expected = "streaming mode needs controller ticks")]
fn streaming_without_controller_is_rejected() {
    let mut cfg = base_cfg();
    cfg.streaming = true;
    cfg.controller.period_us = 0.0;
    let _ = run(&cfg, RouterKind::RoundRobin);
}

/// Elastic membership churn (warm-pool provisions, drains, retires)
/// composes with streaming: stripping the retained run's completion
/// logs still yields the streaming run exactly — scale events, warm
/// hit/miss counters, replica-seconds and all — and both clocks stay
/// bit-identical while lanes join and leave mid-run.
#[test]
fn streaming_equals_retained_under_elasticity() {
    let mut retained_cfg = base_cfg();
    retained_cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    let mut e = ElasticConfig::new(
        WarmPoolConfig {
            provision_delay_us: 5e3,
            provision_jitter: 0.2,
            ..WarmPoolConfig::new(vec![GpuModel::RtxA2000, GpuModel::RtxA2000])
        },
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_backlog: 2.0,
            down_backlog: 6.0,
            ..Default::default()
        }),
    );
    e.min_replicas = 2;
    retained_cfg.elastic = Some(e);
    let mut streaming_cfg = retained_cfg.clone();
    streaming_cfg.streaming = true;

    let retained = run(&retained_cfg, RouterKind::P2cSlo);
    let streaming = run(&streaming_cfg, RouterKind::P2cSlo);

    assert!(
        !retained.scale_events.is_empty(),
        "the scenario must actually exercise membership churn"
    );
    assert_eq!(streaming.retained_completions, 0);
    assert_eq!(strip_retained(retained), streaming);

    for system in [SystemKind::Sgdrc, SystemKind::Tgs] {
        let mut c = streaming_cfg.clone();
        c.system = system;
        c.clock = ClockKind::Serial;
        let serial = run(&c, RouterKind::ShortestBacklog);
        c.clock = ClockKind::Parallel;
        let parallel = run(&c, RouterKind::ShortestBacklog);
        assert_eq!(serial, parallel, "{}", system.name());
    }
}
