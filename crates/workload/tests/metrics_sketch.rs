//! Property test: the log-histogram sketch's percentiles stay within
//! the documented bin-error bound of exact sorted percentiles, for
//! arbitrary latency populations and percentile ranks.

use proptest::prelude::*;
use workload::metrics::{percentile, LatencyHistogram, HIST_REL_ERROR};

proptest! {
    #[test]
    fn sketch_percentiles_within_documented_bound(
        raw in prop::collection::vec((0.1f64..1e7, 0.0f64..6.0), 1..400),
        p in 0.0f64..100.0,
    ) {
        // Spread samples over decades: value × 10^exponent.
        let values: Vec<f64> = raw
            .iter()
            .map(|&(v, e)| (v * 10f64.powf(e)).min(1e9))
            .collect();
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let exact = percentile(&values, p);
        let sketch = h.percentile(p);
        prop_assert!(
            (sketch - exact).abs() <= exact * HIST_REL_ERROR + 1e-12,
            "p{}: sketch {} vs exact {} over {} samples",
            p, sketch, exact, values.len()
        );
    }

    #[test]
    fn sketch_merge_is_exact_on_bins(
        a in prop::collection::vec(0.5f64..1e6, 0..200),
        b in prop::collection::vec(0.5f64..1e6, 0..200),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        if !a.is_empty() || !b.is_empty() {
            prop_assert_eq!(ha.min(), hu.min());
            prop_assert_eq!(ha.max(), hu.max());
            // Same bins → same percentile answers at every rank.
            for p in [1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                prop_assert_eq!(ha.percentile(p).to_bits(), hu.percentile(p).to_bits());
            }
        }
    }
}
