//! RunStats equivalence: the merged-stream, incremental serving path
//! must be indistinguishable from the seed scan path — identical
//! completions, BE progress and preemption counts — for every evaluated
//! system on a fixed Fig. 17-style scenario.

use exec_sim::RateMode;
use gpu_spec::GpuModel;
use sgdrc_core::serving::{run_configured, Scenario, ServingMode};
use std::sync::Arc;
use workload::runner::{cell_trace, Deployment, EndToEndConfig, Load, SystemKind};

#[test]
fn seed_and_fast_serving_paths_agree_for_every_system() {
    let gpu = GpuModel::RtxA2000;
    let dep = Deployment::cached(gpu);
    let mut cfg = EndToEndConfig::new(gpu, Load::Heavy);
    cfg.horizon_us = if cfg!(debug_assertions) { 1.5e5 } else { 4e5 };
    let trace = cell_trace(&dep, &cfg);

    for system in SystemKind::all() {
        if !system.supported_on(&dep.spec) {
            continue;
        }
        for i in 0..dep.be_tasks.len() {
            let scenario = Scenario {
                spec: dep.spec.clone(),
                ls: Arc::clone(&dep.ls_tasks),
                be: dep.be_singleton(i),
                ls_instances: cfg.ls_instances,
                arrivals: Arc::clone(&trace),
                horizon_us: cfg.horizon_us,
            };
            let mut seed_policy = system.make(&dep.spec);
            let seed = run_configured(
                seed_policy.as_mut(),
                &scenario,
                RateMode::Fast,
                ServingMode::Seed,
            );
            let mut fast_policy = system.make(&dep.spec);
            let fast = run_configured(
                fast_policy.as_mut(),
                &scenario,
                RateMode::Fast,
                ServingMode::Fast,
            );
            assert_eq!(
                seed,
                fast,
                "serving paths diverged for {} on BE scenario {i}",
                system.name()
            );
            assert!(seed.engine_events > 0, "scenario actually ran");
        }
    }
}

#[test]
fn deployment_cache_returns_shared_instance() {
    let a = Deployment::cached(GpuModel::RtxA2000);
    let b = Deployment::cached(GpuModel::RtxA2000);
    assert!(Arc::ptr_eq(&a, &b), "cache hit must be an Arc bump");
    // Scenario building blocks are shared, not copied.
    assert!(Arc::ptr_eq(&a.ls_tasks, &b.ls_tasks));
    assert_eq!(a.be_singleton(0).len(), 1);
}
