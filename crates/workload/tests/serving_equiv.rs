//! RunStats equivalence: the merged-stream, incremental serving path
//! must be indistinguishable from the seed scan path — identical
//! completions, BE progress and preemption counts — for every evaluated
//! system on a fixed Fig. 17-style scenario.

use dnn::CompileOptions;
use exec_sim::RateMode;
use gpu_spec::GpuModel;
use sgdrc_core::serving::{run_configured, run_in_context, Scenario, ServingMode, SimContext};
use std::sync::Arc;
use workload::runner::{cell_trace, Deployment, EndToEndConfig, Load, SystemKind};

#[test]
fn seed_and_fast_serving_paths_agree_for_every_system() {
    let gpu = GpuModel::RtxA2000;
    let dep = Deployment::cached(gpu);
    let mut cfg = EndToEndConfig::new(gpu, Load::Heavy);
    cfg.horizon_us = if cfg!(debug_assertions) { 1.5e5 } else { 4e5 };
    let trace = cell_trace(&dep, &cfg);

    for system in SystemKind::all() {
        if !system.supported_on(&dep.spec) {
            continue;
        }
        for i in 0..dep.be_tasks.len() {
            let scenario = Scenario {
                spec: dep.spec.clone(),
                ls: Arc::clone(&dep.ls_tasks),
                be: dep.be_singleton(i),
                ls_instances: cfg.ls_instances,
                arrivals: Arc::clone(&trace),
                horizon_us: cfg.horizon_us,
            };
            let mut seed_policy = system.make(&dep.spec);
            let seed = run_configured(
                seed_policy.as_mut(),
                &scenario,
                RateMode::Fast,
                ServingMode::Seed,
            );
            let mut fast_policy = system.make(&dep.spec);
            let fast = run_configured(
                fast_policy.as_mut(),
                &scenario,
                RateMode::Fast,
                ServingMode::Fast,
            );
            assert_eq!(
                seed,
                fast,
                "serving paths diverged for {} on BE scenario {i}",
                system.name()
            );
            assert!(seed.engine_events > 0, "scenario actually ran");
        }
    }
}

/// A reused `SimContext` (and a reused policy instance) must produce
/// `RunStats` bit-identical to a fresh-allocation run, for every system.
/// The context is deliberately "dirtied" by runs of *other* scenarios
/// between comparisons so leftover state would be caught.
#[test]
fn reused_context_matches_fresh_allocation_for_every_system() {
    let gpu = GpuModel::RtxA2000;
    let dep = Deployment::cached(gpu);
    let mut cfg = EndToEndConfig::new(gpu, Load::Heavy);
    cfg.horizon_us = if cfg!(debug_assertions) { 8e4 } else { 2e5 };
    let trace = cell_trace(&dep, &cfg);
    let scenario_for = |be: usize| Scenario {
        spec: dep.spec.clone(),
        ls: Arc::clone(&dep.ls_tasks),
        be: dep.be_singleton(be),
        ls_instances: cfg.ls_instances,
        arrivals: Arc::clone(&trace),
        horizon_us: cfg.horizon_us,
    };

    for system in SystemKind::all() {
        if !system.supported_on(&dep.spec) {
            continue;
        }
        // One context and one policy instance reused across all three BE
        // scenarios, twice over.
        let mut ctx = SimContext::new();
        let mut reused_policy = system.make(&dep.spec);
        for round in 0..2 {
            for be in 0..dep.be_tasks.len() {
                let scenario = scenario_for(be);
                let reused = run_in_context(reused_policy.as_mut(), &scenario, &mut ctx);
                let mut fresh_policy = system.make(&dep.spec);
                let fresh = sgdrc_core::serving::run(fresh_policy.as_mut(), &scenario);
                assert_eq!(
                    fresh,
                    reused,
                    "context reuse diverged for {} (round {round}, BE {be})",
                    system.name()
                );
                ctx.recycle(reused);
            }
        }
    }
}

/// `Deployment::cached_with_options` is safe under concurrent access:
/// every thread racing the same key ends up with the same shared
/// deployment (the documented loser-adopts-winner behaviour).
#[test]
fn deployment_cache_is_concurrency_safe() {
    let opts = CompileOptions {
        coloring: false,
        ..Default::default()
    };
    let deps: Vec<Arc<Deployment>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || Deployment::cached_with_options(GpuModel::RtxA2000, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for d in &deps[1..] {
        assert!(
            Arc::ptr_eq(&deps[0], d),
            "concurrent callers must share one deployment"
        );
    }
}

/// Two sweeps over the same (GpuModel, CompileOptions) hit the memoized
/// entry: the per-key build counter stays at 1 — asserted structurally,
/// not via wall-clock.
#[test]
fn second_sweep_hits_the_deployment_memo() {
    use workload::sweep::{run_sweep, SweepGrid, SweepOptions};
    // A key no other test uses, so parallel tests cannot interfere.
    let opts = CompileOptions {
        fuse: false,
        coloring: false,
        ..Default::default()
    };
    let grid = SweepGrid {
        gpus: vec![GpuModel::Gtx1080],
        loads: vec![Load::Heavy],
        systems: vec![SystemKind::Sgdrc, SystemKind::Orion],
        be_indices: vec![0],
        replications: 1,
        horizon_us: 4e3,
        ls_instances: 4,
        base_seed: 0xCAFE,
        trace: workload::trace::TraceConfig::apollo_like(),
    };
    let cells = grid.cells();
    let sweep_opts = SweepOptions {
        compile: opts,
        ..Default::default()
    };
    let first = run_sweep(&cells, &sweep_opts);
    assert_eq!(
        Deployment::cached_build_count(GpuModel::Gtx1080, opts),
        1,
        "first sweep builds the deployment exactly once"
    );
    let second = run_sweep(&cells, &sweep_opts);
    assert_eq!(
        Deployment::cached_build_count(GpuModel::Gtx1080, opts),
        1,
        "second sweep must hit the memoized entry, not rebuild"
    );
    assert_eq!(first, second, "identical sweeps produce identical results");
}

#[test]
fn deployment_cache_returns_shared_instance() {
    let a = Deployment::cached(GpuModel::RtxA2000);
    let b = Deployment::cached(GpuModel::RtxA2000);
    assert!(Arc::ptr_eq(&a, &b), "cache hit must be an Arc bump");
    // Scenario building blocks are shared, not copied.
    assert!(Arc::ptr_eq(&a.ls_tasks, &b.ls_tasks));
    assert_eq!(a.be_singleton(0).len(), 1);
}
