//! Fault-injection contracts for the fleet clock.
//!
//! Three pillars:
//! * **bit-identity** — serial and parallel clocks produce identical
//!   `ClusterResult`s (stats, sketches, migrations, resilience
//!   counters) under *any* seeded `FaultPlan`, proptested across
//!   systems, fleet sizes, routers, `advance_order` permutations and
//!   plan seeds (the CI matrix supplies multi-worker pools);
//! * **conservation** — every injected arrival is exactly one of
//!   {completed (possibly after retries), timeout-dropped, shed,
//!   in-flight-at-horizon}, proptested over random fault plans;
//! * **resilience semantics** — crashes requeue to survivors, recovery
//!   restores service, BE jobs evacuate, throttles slow replicas
//!   deterministically, degradation sheds BE before LS, and requeue
//!   beats drop-on-crash on delivered requests.

use gpu_spec::GpuModel;
use proptest::prelude::*;
use workload::chaos::{FaultEvent, FaultKind, FaultPlan};
use workload::cluster::{ClockKind, ClusterConfig, ControllerConfig, RouterKind};
use workload::trace::TraceConfig;
use workload::SystemKind;

fn short_horizon() -> f64 {
    if cfg!(debug_assertions) {
        1e5
    } else {
        2.5e5
    }
}

fn run_with_clock(
    cfg: &ClusterConfig,
    router: RouterKind,
    clock: ClockKind,
) -> workload::ClusterResult {
    let mut cfg = cfg.clone();
    cfg.clock = clock;
    let mut r = router.make(cfg.seed);
    workload::run_cluster(&cfg, r.as_mut())
}

/// A busy two-GPU fleet with a fast controller — the base scenario the
/// unit tests perturb with fault plans.
fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(2.0);
    cfg.controller = ControllerConfig {
        period_us: 1e4,
        breach_ratio: 0.9,
        adaptive_ch_be: true,
        ..Default::default()
    };
    cfg
}

/// The conservation identity every chaos run must satisfy.
fn assert_conserved(r: &workload::ClusterResult) {
    assert_eq!(
        r.arrivals_injected,
        r.requests + r.timeout_drops + r.ls_shed + r.in_flight_at_end,
        "conservation: injected {} != completed {} + dropped {} + shed {} + in-flight {}",
        r.arrivals_injected,
        r.requests,
        r.timeout_drops,
        r.ls_shed,
        r.in_flight_at_end,
    );
}

/// A crash mid-run with a later recovery: queued work requeues to the
/// survivor, resident BE jobs evacuate through the migration path, and
/// the revived replica serves again — all of it conserved.
#[test]
fn crash_requeues_to_survivor_and_recovery_restores_service() {
    let mut cfg = base_cfg();
    let crash_at = cfg.horizon_us * 0.35;
    let down_for = cfg.horizon_us * 0.3;
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0, crash_at, down_for,
    )]));
    let res = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);

    assert_eq!(res.faults_injected, 1);
    assert_eq!(res.faults_recovered, 1);
    assert!(res.requeued > 0, "crash at peak load must orphan requests");
    assert!(
        res.retries > 0,
        "orphaned requests must be re-dispatched to the survivor"
    );
    assert!(
        res.redispatch_hist.count() == res.retries,
        "every successful re-dispatch records its delay"
    );
    // Replica 0 hosted a BE job (round-robin placement) — the crash
    // must have evacuated it.
    assert!(
        res.migrations
            .iter()
            .any(|m| m.from == 0 && m.at_us == crash_at),
        "crash must evacuate replica 0's BE jobs: {:?}",
        res.migrations
    );
    // The revived replica serves again after recovery: it completes
    // more requests than it had at the crash (routing resumes once its
    // heartbeat is fresh).
    assert!(res.replicas[0].requests > 0);
    assert!(res.replicas[1].requests > 0);
    assert_conserved(&res);

    // Against the same fleet without faults: the outage costs goodput.
    let mut happy = cfg.clone();
    happy.chaos = None;
    let base = run_with_clock(&happy, RouterKind::ShortestBacklog, ClockKind::Parallel);
    assert!(
        res.slo_met < base.slo_met,
        "an outage must cost SLO-met completions ({} vs {})",
        res.slo_met,
        base.slo_met
    );
    assert_conserved(&base);
}

/// Requeue-on-crash vs drop-on-crash (`max_retries = 0`), same fault
/// plan otherwise: once the crashed replica recovers and capacity
/// returns, the retry path has delivered strictly more requests and
/// dropped strictly fewer.
#[test]
fn requeue_delivers_more_than_drop_on_crash() {
    let mut cfg = base_cfg();
    let crash_at = cfg.horizon_us * 0.35;
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0,
        crash_at,
        cfg.horizon_us * 0.25,
    )]));

    let requeue = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
    let mut drop_cfg = cfg.clone();
    drop_cfg
        .chaos
        .as_mut()
        .expect("set above")
        .retry
        .max_retries = 0;
    let drop = run_with_clock(&drop_cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);

    // Identical history up to the crash, identical drained set — the
    // retry policy decides its fate.
    assert_eq!(requeue.arrivals_injected, drop.arrivals_injected);
    assert!(
        requeue.requests > drop.requests,
        "requeue must deliver more than drop-on-crash ({} vs {})",
        requeue.requests,
        drop.requests
    );
    assert!(requeue.timeout_drops < drop.timeout_drops);
    assert!(drop.retries == 0 && drop.redispatch_hist.is_empty());
    assert_conserved(&requeue);
    assert_conserved(&drop);
}

/// A permanent near-stall on a single-replica fleet: the clock scale
/// throttles throughput hard, deterministically, and the run still
/// conserves every arrival (no healthy-lane starvation panics).
#[test]
fn throttle_slows_progress_deterministically() {
    let mut cfg = base_cfg();
    cfg.gpus = vec![GpuModel::RtxA2000];
    cfg.be_jobs = vec![0];
    let slow = FaultEvent::slowdown(
        FaultKind::Stall,
        0,
        cfg.horizon_us * 0.2,
        0.05,
        f64::INFINITY,
    );
    cfg.chaos = Some(FaultPlan::new(vec![slow]));
    let throttled = run_with_clock(&cfg, RouterKind::RoundRobin, ClockKind::Serial);
    let again = run_with_clock(&cfg, RouterKind::RoundRobin, ClockKind::Serial);
    assert_eq!(throttled, again, "chaos runs must replay exactly");

    let mut happy = cfg.clone();
    happy.chaos = None;
    let base = run_with_clock(&happy, RouterKind::RoundRobin, ClockKind::Serial);
    assert!(
        throttled.requests < base.requests / 2,
        "a 20×-slowed replica must complete far fewer requests ({} vs {})",
        throttled.requests,
        base.requests
    );
    assert_eq!(throttled.faults_injected, 1);
    assert_eq!(
        throttled.faults_recovered, 0,
        "permanent fault never restores"
    );
    assert_conserved(&throttled);
}

/// With one replica permanently down and aggressive thresholds, the
/// controller sheds BE work first and then pending low-priority LS
/// requests on the overloaded survivor.
#[test]
fn degradation_sheds_be_first_then_low_priority_ls() {
    let mut cfg = base_cfg();
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    let mut plan = FaultPlan::new(vec![FaultEvent::crash(
        0,
        cfg.horizon_us * 0.25,
        f64::INFINITY,
    )]);
    plan.degradation.shed_be_backlog = 4;
    plan.degradation.shed_ls_backlog = 12;
    plan.degradation.ls_shed_per_tick = 8;
    cfg.chaos = Some(plan);
    let res = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
    assert!(
        res.be_shed > 0,
        "survivor overload must park BE work (be_shed = {})",
        res.be_shed
    );
    assert!(
        res.ls_shed > 0,
        "sustained overload must shed pending low-priority LS (ls_shed = {})",
        res.ls_shed
    );
    assert_conserved(&res);
}

/// Regression (tiered-SLO PR audit): `degrade()`'s most-backlogged
/// shed victim must respect elastic membership — a lane that is
/// Draining or Retired is not routable and must never be the LS-shed
/// target, even when it still carries the largest flushing backlog.
/// Breach draining under a crash-driven overload makes the drained
/// lane exactly that hot lane, so a victim filter keyed on backlog
/// alone would pick it.
#[test]
fn shed_victim_skips_draining_lanes() {
    use workload::elastic::{ElasticConfig, ScalingPolicyKind, WarmPoolConfig};
    use workload::telemetry::{EventKind, TelemetryConfig};
    use workload::ScaleEventKind;

    let mut cfg = base_cfg();
    cfg.gpus = vec![GpuModel::RtxA2000, GpuModel::RtxA2000, GpuModel::Gtx1080];
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    let mut plan = FaultPlan::new(vec![FaultEvent::crash(
        0,
        cfg.horizon_us * 0.2,
        f64::INFINITY,
    )]);
    plan.degradation.shed_be_backlog = 4;
    plan.degradation.shed_ls_backlog = 8;
    plan.degradation.ls_shed_per_tick = 16;
    cfg.chaos = Some(plan);
    let mut elastic = ElasticConfig::new(WarmPoolConfig::new(vec![]), ScalingPolicyKind::Hold);
    elastic.min_replicas = 2;
    elastic.max_replicas = cfg.gpus.len();
    elastic.breach_drain_ticks = 1;
    elastic.breach_drain_ratio = 0.5;
    cfg.elastic = Some(elastic);
    cfg.telemetry = Some(TelemetryConfig::default());
    let res = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
    let tel = res.telemetry.as_ref().expect("telemetry on");

    // Reconstruct each lane's non-member window from the scale log.
    let mut drain_start = vec![f64::INFINITY; cfg.gpus.len()];
    for ev in &res.scale_events {
        if matches!(ev.kind, ScaleEventKind::DrainStart { .. }) {
            drain_start[ev.replica] = drain_start[ev.replica].min(ev.at_us);
        }
    }
    assert!(
        drain_start.iter().any(|t| t.is_finite()),
        "scenario must actually drain a lane (got {:?})",
        res.scale_events
    );
    let mut shed_seen = 0u64;
    for e in &tel.events {
        if let EventKind::LsShed { count, .. } = e.kind {
            shed_seen += u64::from(count);
            let lane = e.lane as usize;
            assert!(
                e.at_us < drain_start[lane],
                "LS shed hit lane {lane} at {} but it started draining at {}",
                e.at_us,
                drain_start[lane]
            );
        }
    }
    assert!(shed_seen > 0, "overload must shed LS work for the audit");
    assert_conserved(&res);
}

/// An armed-but-empty fault plan is bit-identical to no plan at all:
/// the resilience machinery must cost nothing on the happy path.
#[test]
fn empty_fault_plan_matches_no_plan_exactly() {
    let mut with_plan = base_cfg();
    with_plan.chaos = Some(FaultPlan::none());
    let mut without = base_cfg();
    without.chaos = None;
    for router in RouterKind::all() {
        let a = run_with_clock(&with_plan, router, ClockKind::Parallel);
        let b = run_with_clock(&without, router, ClockKind::Parallel);
        assert_eq!(a, b, "{}: empty plan diverged from no plan", router.name());
    }
}

/// Deterministic permutation of `0..n` from a seed (Fisher–Yates over a
/// splitmix64 chain).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let split = |z: &mut u64| {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (split(&mut seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    /// The acceptance property: random fleets under random seeded fault
    /// plans — serial and parallel clocks agree bit for bit on every
    /// field, including the resilience counters and the re-dispatch
    /// sketch, for any `advance_order`.
    #[test]
    fn clocks_agree_under_any_fault_plan(
        n_replicas in 1usize..5,
        gpu_bits in 0u64..16,
        system_idx in 0usize..6,
        router_idx in 0usize..3,
        scale in 0.8f64..2.4,
        seed in 0u64..1_000_000,
        fault in (0u64..1_000_000, 0.5f64..2.5),
        perm_seed in 0u64..1_000_000,
    ) {
        let (fault_seed, intensity) = fault;
        let models = [GpuModel::RtxA2000, GpuModel::Gtx1080];
        let gpus: Vec<GpuModel> = (0..n_replicas)
            .map(|r| models[((gpu_bits >> r) & 1) as usize])
            .collect();
        let system = SystemKind::all()[system_idx];
        let router = RouterKind::all()[router_idx];
        let mut cfg = ClusterConfig::new(gpus, system);
        cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
        cfg.trace = TraceConfig::apollo_like().scaled(scale);
        cfg.seed = seed;
        cfg.controller = ControllerConfig {
            period_us: 1.2e4,
            breach_ratio: 0.9,
            adaptive_ch_be: true,
            ..Default::default()
        };
        cfg.chaos = Some(FaultPlan::generate(
            fault_seed,
            n_replicas,
            cfg.horizon_us,
            intensity,
        ));
        cfg.advance_order = permutation(n_replicas, perm_seed);
        let serial = run_with_clock(&cfg, router, ClockKind::Serial);
        let parallel = run_with_clock(&cfg, router, ClockKind::Parallel);
        prop_assert_eq!(serial, parallel);
    }

    /// Conservation under faults: every injected arrival is exactly one
    /// of completed / timeout-dropped / shed / in-flight-at-horizon,
    /// over random fault plans, systems and retry budgets.
    #[test]
    fn arrivals_are_conserved_under_faults(
        n_replicas in 1usize..5,
        system_idx in 0usize..6,
        router_idx in 0usize..3,
        scale in 0.8f64..2.4,
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        intensity in 0.5f64..3.0,
        max_retries in 0u32..6,
    ) {
        let gpus = vec![GpuModel::RtxA2000; n_replicas];
        let system = SystemKind::all()[system_idx];
        let router = RouterKind::all()[router_idx];
        let mut cfg = ClusterConfig::new(gpus, system);
        cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
        cfg.trace = TraceConfig::apollo_like().scaled(scale);
        cfg.seed = seed;
        cfg.controller.period_us = 1.2e4;
        let mut plan = FaultPlan::generate(fault_seed, n_replicas, cfg.horizon_us, intensity);
        plan.retry.max_retries = max_retries;
        // Tight degradation thresholds so the shed paths actually run.
        plan.degradation.shed_be_backlog = 6;
        plan.degradation.shed_ls_backlog = 18;
        cfg.chaos = Some(plan);
        let res = run_with_clock(&cfg, router, ClockKind::Parallel);
        prop_assert_eq!(
            res.arrivals_injected,
            res.requests + res.timeout_drops + res.ls_shed + res.in_flight_at_end,
            "injected {} != completed {} + dropped {} + shed {} + in-flight {}",
            res.arrivals_injected,
            res.requests,
            res.timeout_drops,
            res.ls_shed,
            res.in_flight_at_end
        );
        // Resilience counters are internally consistent, too.
        prop_assert!(res.retries == res.redispatch_hist.count());
        prop_assert!(res.faults_recovered <= res.faults_injected);
    }
}
