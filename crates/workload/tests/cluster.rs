//! Fleet-simulator contracts:
//!
//! * a 1-replica cluster behind round-robin routing is *bit-identical*
//!   to the single-GPU serving loop — per-BE-scenario `RunStats` match
//!   `run_system_scenario_stats` exactly, so the assembled Fig. 17
//!   `SystemResult` is the same number for number;
//! * cluster results are invariant to the fleet clock's replica
//!   iteration order (the multi-GPU analogue of the sweep's chunking
//!   invariance);
//! * fleet-wide percentiles merged from per-replica sketches match the
//!   exact sorted percentile within the documented ≤0.5% bound;
//! * the controller actually migrates BE work off breaching replicas,
//!   through the preempt path, without losing completions.

use gpu_spec::GpuModel;
use proptest::prelude::*;
use sgdrc_core::SgdrcConfig;
use workload::cluster::{ClusterConfig, ClusterCtx, ControllerConfig, RouterKind};
use workload::metrics::{percentile, LatencyHistogram, HIST_REL_ERROR};
use workload::runner::{cell_trace, run_system_scenario_stats, Deployment, EndToEndConfig, Load};
use workload::trace::TraceConfig;
use workload::SystemKind;

fn short_horizon() -> f64 {
    if cfg!(debug_assertions) {
        1.5e5
    } else {
        4e5
    }
}

/// A 1-replica fleet must reproduce the single-GPU batch loop bit for
/// bit: same trace, same BE co-location, same policy → identical
/// `RunStats` (every completion timestamp, preemption and event count),
/// for every system. The fleet controller runs (ticking, reading
/// windows) and must not perturb anything.
#[test]
fn one_replica_cluster_is_bit_identical_to_single_gpu_run() {
    let gpu = GpuModel::RtxA2000;
    let dep = Deployment::cached(gpu);
    let mut e2e = EndToEndConfig::new(gpu, Load::Heavy);
    e2e.horizon_us = short_horizon();
    let trace = cell_trace(&dep, &e2e);

    for system in SystemKind::all() {
        if !system.supported_on(&dep.spec) {
            continue;
        }
        let single = run_system_scenario_stats(&dep, &e2e, system, &trace);
        for (be, single_stats) in single.iter().enumerate() {
            let mut cfg = ClusterConfig::new(vec![gpu], system);
            cfg.trace = TraceConfig::apollo_like().scaled(e2e.load.scale());
            cfg.horizon_us = e2e.horizon_us;
            cfg.ls_instances = e2e.ls_instances;
            cfg.seed = e2e.seed;
            cfg.be_jobs = vec![be];
            cfg.sgdrc = SgdrcConfig::default();
            let mut router = RouterKind::RoundRobin.make(cfg.seed);
            let fleet = workload::run_cluster(&cfg, router.as_mut());
            assert_eq!(fleet.replicas.len(), 1);
            assert_eq!(
                &fleet.replicas[0].stats,
                single_stats,
                "{} BE scenario {be}: fleet diverged from the single-GPU run",
                system.name()
            );
            assert_eq!(
                fleet.replicas[0].routed as usize,
                trace
                    .per_task()
                    .iter()
                    .map(|v| v.iter().filter(|&&t| t <= cfg.horizon_us).count())
                    .sum::<usize>(),
                "every in-horizon request routes to the only replica"
            );
        }
    }
}

/// The fleet clock may quiesce replicas in any order: replicas interact
/// only through router/controller decisions taken at quiesced instants,
/// so every permutation must give the same `ClusterResult` — including
/// every completion timestamp, migration and histogram bin.
#[test]
fn results_are_invariant_to_replica_iteration_order() {
    let gpus = vec![
        GpuModel::RtxA2000,
        GpuModel::Gtx1080,
        GpuModel::RtxA2000,
        GpuModel::TeslaP40,
    ];
    for router_kind in RouterKind::all() {
        let mut cfg = ClusterConfig::new(gpus.clone(), SystemKind::Sgdrc);
        cfg.horizon_us = short_horizon();
        // Load the fleet enough that queues build and the controller
        // has something to do.
        cfg.trace = TraceConfig::apollo_like()
            .scaled(2.5)
            .with_diurnal(0.3, 0.4);
        cfg.controller.period_us = 2.5e4;
        cfg.controller.adaptive_ch_be = true;
        let mut baseline_router = router_kind.make(cfg.seed);
        let baseline = workload::run_cluster(&cfg, baseline_router.as_mut());
        for order in [vec![3, 1, 0, 2], vec![2, 3, 1, 0], vec![1, 0, 3, 2]] {
            let mut cfg2 = cfg.clone();
            cfg2.advance_order = order.clone();
            let mut router = router_kind.make(cfg.seed);
            let permuted = workload::run_cluster(&cfg2, router.as_mut());
            assert_eq!(
                baseline,
                permuted,
                "{}: order {order:?} changed the fleet result",
                router_kind.name()
            );
        }
    }
}

/// Reused contexts across fleet runs must not change results (the
/// cluster analogue of the sweep's reused-`SimContext` equivalence).
#[test]
fn reused_contexts_match_fresh_runs() {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon() / 2.0;
    cfg.trace = TraceConfig::apollo_like().scaled(1.5);
    let mut ctxs = ClusterCtx::new();
    let mut first_router = RouterKind::ShortestBacklog.make(cfg.seed);
    let first = workload::run_cluster_in(&cfg, first_router.as_mut(), &mut ctxs);
    // Dirty the contexts with a different fleet, then re-run the first.
    let mut other = cfg.clone();
    other.trace = TraceConfig::apollo_like().scaled(0.5);
    other.seed ^= 0xDEAD;
    let mut other_router = RouterKind::P2cSlo.make(other.seed);
    let _ = workload::run_cluster_in(&other, other_router.as_mut(), &mut ctxs);
    let mut again_router = RouterKind::ShortestBacklog.make(cfg.seed);
    let again = workload::run_cluster_in(&cfg, again_router.as_mut(), &mut ctxs);
    assert_eq!(first, again);
}

/// Overload one replica of a 3-replica fleet (skewed routing is forced
/// by a tiny custom router), and the controller must migrate BE work
/// away from it via the preempt path — and fleet BE completions keep
/// accumulating on the destinations.
#[test]
fn controller_migrates_be_work_off_breaching_replicas() {
    struct Skewed;
    impl workload::RoutingPolicy for Skewed {
        fn name(&self) -> &'static str {
            "skewed"
        }
        fn route(&mut self, _views: &[workload::ReplicaView], _task: usize, at_us: f64) -> usize {
            // 2 of 3 requests hammer replica 0.
            if (at_us as u64) % 3 < 2 {
                0
            } else {
                1 + (at_us as u64 % 2) as usize
            }
        }
    }
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::Gtx1080, GpuModel::RtxA2000, GpuModel::RtxA2000],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = if cfg!(debug_assertions) { 4e5 } else { 8e5 };
    cfg.trace = TraceConfig::apollo_like().scaled(2.0);
    cfg.controller = ControllerConfig {
        period_us: 5e4,
        breach_ratio: 0.9,
        headroom_ratio: 1.5,
        adaptive_ch_be: true,
    };
    let mut router = Skewed;
    let fleet = workload::run_cluster(&cfg, &mut router);
    assert!(
        !fleet.migrations.is_empty(),
        "controller never migrated BE work"
    );
    assert!(
        fleet.migrations.iter().any(|m| m.from == 0),
        "the hammered replica shed no BE job: {:?}",
        fleet.migrations
    );
    assert!(fleet.be_completed > 0, "fleet BE work starved");
    assert!(fleet.be_preemptions > 0, "migration never evicted a kernel");
    assert!(fleet.requests > 0);
    // Conservation: fleet totals are the sum of replica totals.
    assert_eq!(
        fleet.requests,
        fleet.replicas.iter().map(|r| r.requests).sum::<u64>()
    );
    assert_eq!(
        fleet.fleet_hist.count(),
        fleet.requests,
        "fleet sketch covers every completion exactly once"
    );
}

/// Heterogeneous fleets under bursty load: backlog-aware routing must
/// not lose or duplicate requests, and every routed request either
/// completes or is still in flight at the horizon.
#[test]
fn routed_requests_are_conserved() {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::TeslaP40, GpuModel::Gtx1080],
        SystemKind::Orion,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(2.0).with_bursts(2.5, 0.2);
    for kind in RouterKind::all() {
        let mut router = kind.make(cfg.seed);
        let fleet = workload::run_cluster(&cfg, router.as_mut());
        let routed: u64 = fleet.replicas.iter().map(|r| r.routed).sum();
        assert!(fleet.requests <= routed, "{}", kind.name());
        assert!(
            fleet.requests * 10 >= routed * 5,
            "{}: suspiciously few completions ({} of {routed})",
            kind.name(),
            fleet.requests
        );
    }
}

proptest! {
    /// Fleet-wide percentiles via per-replica sketch merging equal the
    /// exact sorted percentile over the union population within the
    /// documented ≤0.5% relative bound — for arbitrary per-replica
    /// latency populations and split points.
    #[test]
    fn merged_fleet_percentiles_match_exact_sort(
        raw in prop::collection::vec((1.0f64..1e6, 0u8..8), 1..500),
        p in 0.0f64..100.0,
    ) {
        // Distribute each sample onto one of up to 8 "replicas".
        let mut replica_hists: Vec<LatencyHistogram> =
            (0..8).map(|_| LatencyHistogram::new()).collect();
        let mut union: Vec<f64> = Vec::with_capacity(raw.len());
        for &(v, r) in &raw {
            replica_hists[r as usize].record(v);
            union.push(v);
        }
        let mut fleet = LatencyHistogram::new();
        for h in &replica_hists {
            fleet.merge(h);
        }
        prop_assert_eq!(fleet.count() as usize, union.len());
        let exact = percentile(&union, p);
        let sketch = fleet.percentile(p);
        prop_assert!(
            (sketch - exact).abs() <= exact * HIST_REL_ERROR + 1e-12,
            "p{}: merged sketch {} vs exact {}",
            p, sketch, exact
        );
    }
}
