//! Flight-recorder contracts for the fleet clock.
//!
//! Three pillars:
//! * **feature-off-free** — enabling the recorder never perturbs the
//!   simulation: a recorder-on run with its `telemetry` field stripped
//!   is bit-identical to the recorder-off run, across random fault
//!   plans × scaling policies × systems × clocks × ring capacities;
//! * **clock-independent streams** — serial and parallel clocks agree
//!   bit for bit on the *entire* result including the merged event
//!   stream and sampled series (wall-clock `ClockProfile` numbers are
//!   excluded from equality by construction);
//! * **stream/counter consistency** — the merged stream is sorted and
//!   uniquely sequenced, `Completed` events reconcile exactly with the
//!   fleet counters when no history was overwritten, and the per-lane
//!   requeue/retry attribution sums to the fleet totals.

use gpu_spec::GpuModel;
use proptest::prelude::*;
use workload::chaos::FaultPlan;
use workload::cluster::{ClockKind, ClusterConfig, ControllerConfig, RouterKind};
use workload::elastic::{ElasticConfig, ScalingPolicyKind, ThresholdPolicy, WarmPoolConfig};
use workload::trace::TraceConfig;
use workload::{ClusterResult, EventKind, SystemKind, TelemetryConfig};

fn short_horizon() -> f64 {
    if cfg!(debug_assertions) {
        2.5e4
    } else {
        6e4
    }
}

fn run_with(
    cfg: &ClusterConfig,
    router: RouterKind,
    clock: ClockKind,
    telemetry: Option<TelemetryConfig>,
) -> ClusterResult {
    let mut cfg = cfg.clone();
    cfg.clock = clock;
    cfg.telemetry = telemetry;
    let mut r = router.make(cfg.seed);
    workload::run_cluster(&cfg, r.as_mut())
}

/// Drops the recorder's own output so a recorder-on run can be compared
/// bit for bit against a recorder-off run.
fn stripped(mut r: ClusterResult) -> ClusterResult {
    r.telemetry = None;
    r
}

/// A busy chaotic fleet: two dissimilar GPUs, a warm lane, threshold
/// scaling, and a generated fault plan — every event family fires.
fn chaos_cfg(fault_seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(2.5).with_bursts(2.0, 0.4);
    cfg.controller = ControllerConfig {
        period_us: 1e4,
        breach_ratio: 0.9,
        adaptive_ch_be: true,
        ..Default::default()
    };
    let mut e = ElasticConfig::new(
        WarmPoolConfig {
            provision_delay_us: 5e3,
            provision_jitter: 0.2,
            ..WarmPoolConfig::new(vec![GpuModel::RtxA2000])
        },
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_backlog: 2.0,
            ..Default::default()
        }),
    );
    e.min_replicas = 1;
    e.replace_after_us = 8e3;
    cfg.elastic = Some(e);
    cfg.chaos = Some(FaultPlan::generate(fault_seed, 3, cfg.horizon_us, 1.5));
    cfg
}

/// The merged stream is canonically ordered: non-decreasing in time,
/// globally unique sequence numbers, strictly increasing at equal
/// instants.
fn assert_canonical_order(tel: &workload::TelemetryResult) {
    let mut seen = std::collections::HashSet::new();
    for pair in tel.events.windows(2) {
        assert!(
            pair[0].at_us <= pair[1].at_us
                || (pair[0].at_us == pair[1].at_us && pair[0].seq < pair[1].seq),
            "merged stream out of order: {:?} before {:?}",
            pair[0],
            pair[1]
        );
        if pair[0].at_us == pair[1].at_us {
            assert!(pair[0].seq < pair[1].seq, "ties must sort by seq");
        }
    }
    for e in &tel.events {
        assert!(
            seen.insert(e.seq),
            "duplicate seq {} in merged stream",
            e.seq
        );
    }
}

/// Recorder on vs off on the chaos scenario: stripped results are
/// bit-identical on both clocks, and the recorded stream reconciles
/// with the fleet counters (`Completed` events == completions, SLO-ok
/// events == `slo_met`, per lane and fleet-wide) when nothing was
/// overwritten.
#[test]
fn recorder_is_invisible_and_reconciles_with_counters() {
    let cfg = chaos_cfg(42);
    for clock in [ClockKind::Serial, ClockKind::Parallel] {
        let off = run_with(&cfg, RouterKind::ShortestBacklog, clock, None);
        let on = run_with(
            &cfg,
            RouterKind::ShortestBacklog,
            clock,
            Some(TelemetryConfig::default()),
        );
        let tel = on.telemetry.clone().expect("recorder was enabled");
        assert_eq!(
            stripped(on.clone()),
            off,
            "{clock:?}: recorder perturbed the run"
        );

        assert_canonical_order(&tel);
        assert_eq!(
            tel.dropped_events, 0,
            "default ring must hold this scenario"
        );
        let completed: Vec<_> = tel
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Completed { slo_ok, .. } => Some((e.lane, slo_ok)),
                _ => None,
            })
            .collect();
        assert_eq!(completed.len() as u64, on.requests);
        assert_eq!(
            completed.iter().filter(|(_, ok)| *ok).count() as u64,
            on.slo_met
        );
        for (r, lane) in on.replicas.iter().enumerate() {
            assert_eq!(
                completed.iter().filter(|(l, _)| *l == r as u32).count() as u64,
                lane.requests,
                "lane {r} completion events disagree with its counter"
            );
        }
        assert!(
            tel.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::FaultOnset { .. })),
            "the fault plan must leave onset events in the stream"
        );
        assert!(!tel.tick_us.is_empty(), "controller ticks must sample");
        assert!(!tel.series.is_empty(), "series registry must populate");
    }
}

/// Per-lane requeue/retry attribution sums to the fleet totals under
/// chaos: `requeued == Σ lane.requeued + refused_arrivals` and
/// `retries == Σ lane.retries`.
#[test]
fn requeue_attribution_sums_to_fleet_totals() {
    for fault_seed in [7u64, 1234, 98765] {
        let cfg = chaos_cfg(fault_seed);
        let res = run_with(
            &cfg,
            RouterKind::P2cSlo,
            ClockKind::Parallel,
            Some(TelemetryConfig::default()),
        );
        let lane_requeued: u64 = res.replicas.iter().map(|l| l.requeued).sum();
        let lane_retries: u64 = res.replicas.iter().map(|l| l.retries).sum();
        assert_eq!(
            res.requeued,
            lane_requeued + res.refused_arrivals,
            "seed {fault_seed}: requeue attribution leaks"
        );
        assert_eq!(
            res.retries, lane_retries,
            "seed {fault_seed}: retry attribution leaks"
        );
    }
}

/// A deliberately tiny ring overwrites its oldest events (flight
/// recorders keep the most recent window), reports the loss in
/// `dropped_events`, and still never perturbs the simulation.
#[test]
fn tiny_ring_overwrites_oldest_and_stays_invisible() {
    let cfg = chaos_cfg(42);
    let off = run_with(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel, None);
    let on = run_with(
        &cfg,
        RouterKind::ShortestBacklog,
        ClockKind::Parallel,
        Some(TelemetryConfig {
            ring_capacity: 8,
            profile: false,
        }),
    );
    let tel = on.telemetry.clone().expect("recorder was enabled");
    assert_eq!(stripped(on), off, "ring pressure perturbed the run");
    assert!(tel.dropped_events > 0, "an 8-slot ring must overwrite here");
    // n lanes + the fleet track, 8 slots each.
    let tracks = cfg.gpus.len() + cfg.elastic.as_ref().map_or(0, |e| e.warm_pool.gpus.len()) + 1;
    assert!(
        tel.events.len() <= 8 * tracks,
        "{} events retained from {} rings of 8",
        tel.events.len(),
        tracks
    );
    assert_canonical_order(&tel);
    // The retained window is the *tail*: every ring's survivors are the
    // most recent events, so the earliest retained instant is later than
    // it would be with an unbounded ring.
    assert!(
        tel.events.iter().all(|e| e.at_us <= cfg.horizon_us * 1.01),
        "events past the horizon"
    );
}

/// Deterministic permutation of `0..n` from a seed (Fisher–Yates over a
/// splitmix64 chain).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let split = |z: &mut u64| {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (split(&mut seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A random-but-valid elastic config over `n_init` configured lanes and
/// `warm` warm lanes (mirrors the elastic suite's generator).
fn random_elastic(n_init: usize, warm: usize, bits: u64) -> ElasticConfig {
    let pool = WarmPoolConfig {
        provision_delay_us: 2e3 + (bits % 7) as f64 * 3e3,
        provision_jitter: 0.25,
        ..WarmPoolConfig::new(vec![GpuModel::RtxA2000; warm])
    };
    let policy = if bits & 1 == 0 {
        ScalingPolicyKind::Hold
    } else {
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_ratio: 0.6 + (bits >> 1 & 3) as f64 * 0.3,
            down_ratio: 0.3,
            up_backlog: 1.0 + (bits >> 3 & 7) as f64,
            down_backlog: 2.0,
            step: 1 + (bits >> 6 & 1) as usize,
        })
    };
    let mut e = ElasticConfig::new(pool, policy);
    e.min_replicas = 1 + (bits >> 7) as usize % n_init.max(1);
    e.max_replicas = n_init + warm;
    e.up_cooldown_us = (bits >> 9 & 1) as f64 * 1.5e4;
    e.down_cooldown_us = (bits >> 10 & 1) as f64 * 1.5e4;
    if bits >> 11 & 1 == 1 {
        e.breach_drain_ticks = 2;
        e.breach_drain_ratio = 0.8;
    }
    if bits >> 12 & 1 == 1 {
        e.replace_after_us = 8e3;
    }
    e
}

/// A random cluster config shared by both acceptance properties.
#[allow(clippy::too_many_arguments)]
fn random_cfg(
    n_replicas: usize,
    warm: usize,
    elastic_bits: u64,
    system_idx: usize,
    scale: f64,
    seed: u64,
    fault_seed: u64,
    intensity: f64,
    perm_seed: u64,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000; n_replicas],
        SystemKind::all()[system_idx],
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(scale);
    cfg.seed = seed;
    cfg.controller = ControllerConfig {
        period_us: 1.2e4,
        breach_ratio: 0.9,
        adaptive_ch_be: true,
        ..Default::default()
    };
    cfg.elastic = Some(random_elastic(n_replicas, warm, elastic_bits));
    cfg.chaos = Some(FaultPlan::generate(
        fault_seed,
        n_replicas + warm,
        cfg.horizon_us,
        intensity,
    ));
    cfg.advance_order = permutation(n_replicas + warm, perm_seed);
    cfg
}

/// Ring capacities spanning heavy-overwrite to lossless.
const RING_CAPS: [usize; 3] = [16, 256, 4096];

proptest! {
    /// The acceptance property: enabling the recorder never changes the
    /// simulation. Across random fault plans × scaling policies ×
    /// systems × clocks × routers × ring capacities, a recorder-on run
    /// with its `telemetry` field stripped is bit-identical to the
    /// recorder-off run.
    #[test]
    fn recorder_presence_never_perturbs_the_simulation(
        n_replicas in 1usize..4,
        pool in (0usize..3, 0u64..8192),
        system_idx in 0usize..6,
        mode in (0usize..3, 0usize..2, 0usize..3),
        scale in 0.8f64..2.4,
        seed in 0u64..1_000_000,
        fault in (0u64..1_000_000, 0.5f64..2.0),
        perm_seed in 0u64..1_000_000,
    ) {
        let (warm, elastic_bits) = pool;
        let (router_idx, clock_idx, ring_idx) = mode;
        let clock_serial = clock_idx == 1;
        let (fault_seed, intensity) = fault;
        let cfg = random_cfg(
            n_replicas, warm, elastic_bits, system_idx, scale, seed,
            fault_seed, intensity, perm_seed,
        );
        let router = RouterKind::all()[router_idx];
        let clock = if clock_serial { ClockKind::Serial } else { ClockKind::Parallel };
        let tcfg = TelemetryConfig {
            ring_capacity: RING_CAPS[ring_idx],
            profile: ring_idx != 1,
        };
        let off = run_with(&cfg, router, clock, None);
        let on = run_with(&cfg, router, clock, Some(tcfg));
        prop_assert!(on.telemetry.is_some());
        prop_assert_eq!(stripped(on), off);
    }

    /// Serial and parallel clocks agree bit for bit on the *entire*
    /// recorder-on result — merged event stream, dropped counts,
    /// sampled series — under random fault plans and scaling policies.
    /// (Wall-clock profile numbers compare equal by construction: they
    /// are measurements, not simulation state.)
    #[test]
    fn clocks_agree_on_merged_event_streams(
        n_replicas in 1usize..4,
        pool in (0usize..3, 0u64..8192),
        system_idx in 0usize..6,
        mode in (0usize..3, 0usize..3),
        scale in 0.8f64..2.4,
        seed in 0u64..1_000_000,
        fault in (0u64..1_000_000, 0.5f64..2.0),
        perm_seed in 0u64..1_000_000,
    ) {
        let (warm, elastic_bits) = pool;
        let (router_idx, ring_idx) = mode;
        let (fault_seed, intensity) = fault;
        let cfg = random_cfg(
            n_replicas, warm, elastic_bits, system_idx, scale, seed,
            fault_seed, intensity, perm_seed,
        );
        let router = RouterKind::all()[router_idx];
        let tcfg = TelemetryConfig {
            ring_capacity: RING_CAPS[ring_idx],
            profile: true,
        };
        let serial = run_with(&cfg, router, ClockKind::Serial, Some(tcfg.clone()));
        let parallel = run_with(&cfg, router, ClockKind::Parallel, Some(tcfg));
        let stream = serial.telemetry.as_ref().expect("recorder on");
        assert_canonical_order(stream);
        prop_assert_eq!(serial, parallel);
    }
}
