//! Tiered-SLO contracts for the fleet clock.
//!
//! Four pillars:
//! * **inertness** — attaching [`TiersConfig::inert`] (one Guaranteed
//!   tier mirroring the fleet `RetryConfig`, ladder thresholds
//!   unreachable) produces results equal to `tiers: None` up to the
//!   tier-only report fields, for every `SystemKind` × router × clock —
//!   the tier machinery rides the same code path as the legacy one and
//!   the no-tiers default is proven bit-identical to pre-tiers
//!   behavior;
//! * **bit-identity** — serial and parallel clocks agree on every
//!   `ClusterResult` field (including `tier_outcomes`) under random
//!   tier maps × fault plans × scaling policies × systems × routers ×
//!   `advance_order` permutations;
//! * **conservation** — globally, `injected = completed + dropped +
//!   shed + refused + in-flight`, and per tier via
//!   [`TierOutcome::assert_conserved`], with the tier ledgers summing
//!   back to the global counters;
//! * **brownout semantics** — under crash-driven overload the ladder
//!   refuses best-effort work first and never touches the Guaranteed
//!   tier, queued admissions drain after recovery, and zero-retry
//!   tiers drop crash-orphaned work immediately.

use gpu_spec::GpuModel;
use proptest::prelude::*;
use workload::chaos::{FaultEvent, FaultPlan};
use workload::cluster::{ClockKind, ClusterConfig, ControllerConfig, RouterKind};
use workload::elastic::{ElasticConfig, ScalingPolicyKind, ThresholdPolicy, WarmPoolConfig};
use workload::trace::TraceConfig;
use workload::{AdmissionClass, SystemKind, TierConfig, TierOutcome, TiersConfig};

fn short_horizon() -> f64 {
    if cfg!(debug_assertions) {
        1e5
    } else {
        2.5e5
    }
}

fn run_with_clock(
    cfg: &ClusterConfig,
    router: RouterKind,
    clock: ClockKind,
) -> workload::ClusterResult {
    let mut cfg = cfg.clone();
    cfg.clock = clock;
    let mut r = router.make(cfg.seed);
    workload::run_cluster(&cfg, r.as_mut())
}

/// A busy two-GPU fleet with a fast controller — the base scenario the
/// unit tests perturb with tier configs and fault plans.
fn base_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        vec![GpuModel::RtxA2000, GpuModel::Gtx1080],
        SystemKind::Sgdrc,
    );
    cfg.horizon_us = short_horizon();
    cfg.trace = TraceConfig::apollo_like().scaled(2.0);
    cfg.controller = ControllerConfig {
        period_us: 1e4,
        breach_ratio: 0.9,
        adaptive_ch_be: true,
        ..Default::default()
    };
    cfg
}

/// Number of LS services every replica deploys (the length a tier map
/// must match), read off a prepared instance of the base scenario.
fn n_ls() -> usize {
    base_cfg().prepare().n_ls()
}

/// The canonical three-class tier map the behavior tests use: service 0
/// Guaranteed (weight 8), services 1..n/2 Burstable (weight 3), the
/// rest BestEffort (weight 1), with an aggressive ladder so short test
/// horizons reach the queue and shed rungs.
fn three_class_tiers(n_ls: usize) -> TiersConfig {
    let mut cfg = TiersConfig::new(
        (0..n_ls)
            .map(|task| {
                if task == 0 {
                    TierConfig::guaranteed(8.0)
                } else if task < n_ls / 2 {
                    TierConfig::burstable(2, 3.0)
                } else {
                    TierConfig::best_effort(3, 1.0)
                }
            })
            .collect(),
    );
    cfg.enter_backlog = 4;
    cfg.exit_backlog = 2;
    cfg.hold_ticks = 2;
    cfg.queue_capacity = 8;
    cfg.shed_per_tick = 16;
    cfg
}

/// A random-but-valid tier map over `n_ls` services: per-service class
/// drawn from the seed bits (tier id, weight, deadlines and retry
/// budget are canonical per class so shared-tier consistency holds),
/// ladder knobs drawn from the high bits.
fn random_tiers(n_ls: usize, bits: u64) -> TiersConfig {
    let mut cfg = TiersConfig::new(
        (0..n_ls)
            .map(|task| match (bits >> (2 * task)) & 3 {
                0 | 1 => TierConfig::guaranteed(8.0),
                2 => TierConfig::burstable(2, 3.0),
                _ => TierConfig::best_effort(3, 1.0),
            })
            .collect(),
    );
    cfg.enter_backlog = 2 + (bits >> 48 & 15) as usize;
    cfg.exit_backlog = cfg.enter_backlog.min(1 + (bits >> 52 & 7) as usize);
    cfg.hold_ticks = 1 + (bits >> 55 & 3) as u32;
    cfg.queue_capacity = 4 + (bits >> 57 & 31) as usize;
    cfg.shed_per_tick = 4 + (bits >> 62 & 1) as usize * 16;
    cfg
}

/// A random-but-valid elastic config (subset of the cluster_elastic
/// generator) so the tier proptests also cross scaling policies.
fn random_elastic(n_init: usize, warm: usize, bits: u64) -> ElasticConfig {
    let pool = WarmPoolConfig {
        provision_delay_us: 2e3 + (bits % 7) as f64 * 3e3,
        provision_jitter: 0.25,
        ..WarmPoolConfig::new(vec![GpuModel::RtxA2000; warm])
    };
    let policy = if bits & 1 == 0 {
        ScalingPolicyKind::Hold
    } else {
        ScalingPolicyKind::Threshold(ThresholdPolicy {
            up_ratio: 0.6 + (bits >> 1 & 3) as f64 * 0.3,
            down_ratio: 0.3,
            up_backlog: 1.0 + (bits >> 3 & 7) as f64,
            down_backlog: 2.0,
            step: 1 + (bits >> 6 & 1) as usize,
        })
    };
    let mut e = ElasticConfig::new(pool, policy);
    e.min_replicas = 1 + (bits >> 7) as usize % n_init.max(1);
    e.max_replicas = n_init + warm;
    if bits >> 11 & 1 == 1 {
        e.breach_drain_ticks = 2;
        e.breach_drain_ratio = 0.8;
    }
    if bits >> 12 & 1 == 1 {
        e.replace_after_us = 8e3;
    }
    e
}

/// Deterministic index permutation for `advance_order` (seeded
/// splitmix64 chain).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let split = |z: &mut u64| {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (split(&mut seed) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// The conservation identity every tiered run must satisfy: globally
/// with the refused-admission term, per tier exactly, and the tier
/// ledgers must sum back to the global counters.
fn assert_conserved_tiered(r: &workload::ClusterResult) {
    assert_eq!(
        r.arrivals_injected,
        r.requests + r.timeout_drops + r.ls_shed + r.refused_admission + r.in_flight_at_end,
        "conservation: injected {} != completed {} + dropped {} + shed {} + refused {} \
         + in-flight {}",
        r.arrivals_injected,
        r.requests,
        r.timeout_drops,
        r.ls_shed,
        r.refused_admission,
        r.in_flight_at_end,
    );
    for o in &r.tier_outcomes {
        o.assert_conserved();
        assert_eq!(
            o.arrivals,
            o.admitted + o.queued + o.refused(),
            "tier {}: every arrival is admitted, queued or refused",
            o.tier
        );
    }
    let sum = |f: fn(&TierOutcome) -> u64| r.tier_outcomes.iter().map(f).sum::<u64>();
    assert_eq!(sum(|o| o.arrivals), r.arrivals_injected);
    assert_eq!(sum(|o| o.completed), r.requests);
    assert_eq!(sum(|o| o.timeout_drops), r.timeout_drops);
    assert_eq!(sum(|o| o.shed), r.ls_shed);
    assert_eq!(sum(|o| o.refused()), r.refused_admission);
    assert_eq!(sum(|o| o.in_flight_at_end), r.in_flight_at_end);
}

/// An inert tier config must be a true no-op: equal to `tiers: None`
/// on every report field except the tier-only ledger, for every
/// system, router and clock. This is also the proof that the no-tiers
/// default is bit-identical to pre-tiers behavior — both arms run the
/// mirrored `TierRt` runtime, and the `None` arm is the default path.
#[test]
fn inert_tiers_match_disabled_exactly() {
    let n_ls = n_ls();
    for system in SystemKind::all() {
        for router in RouterKind::all() {
            for clock in [ClockKind::Serial, ClockKind::Parallel] {
                let mut cfg = base_cfg();
                cfg.system = system;
                cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
                let plain = run_with_clock(&cfg, router, clock);
                cfg.tiers = Some(TiersConfig::inert(n_ls, 4, 250_000.0));
                let mut inert = run_with_clock(&cfg, router, clock);
                assert_eq!(
                    inert.tier_outcomes.len(),
                    1,
                    "inert config reports its single Guaranteed tier"
                );
                inert.tier_outcomes[0].assert_conserved();
                assert_eq!(inert.tier_outcomes[0].refused(), 0);
                inert.tier_outcomes.clear();
                assert_eq!(
                    plain, inert,
                    "inert tiers diverged from tiers: None \
                     ({system:?} / {router:?} / {clock:?})"
                );
            }
        }
    }
}

/// Crash-driven overload on the canonical three-class map: the ladder
/// refuses and/or queues best-effort work, the Guaranteed tier is
/// never refused, queued or shed, and since the bursty trace has calm
/// windows the browned tiers are re-admitted and still complete work.
#[test]
fn overload_refuses_best_effort_first_and_recovers() {
    let mut cfg = base_cfg();
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    cfg.tiers = Some(three_class_tiers(n_ls()));
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0,
        cfg.horizon_us * 0.25,
        f64::INFINITY,
    )]));
    let res = run_with_clock(&cfg, RouterKind::ShortestBacklog, ClockKind::Parallel);
    assert_conserved_tiered(&res);

    let by_class = |class: AdmissionClass| {
        res.tier_outcomes
            .iter()
            .find(|o| o.class == class)
            .unwrap_or_else(|| panic!("{} tier present", class.name()))
    };
    let g = by_class(AdmissionClass::Guaranteed);
    let be = by_class(AdmissionClass::BestEffort);
    assert_eq!(
        (g.refused(), g.queued, g.shed),
        (0, 0, 0),
        "Guaranteed tier must never be refused, queued or shed"
    );
    assert!(
        res.refused_admission > 0,
        "sustained overload must refuse admission (refused = 0)"
    );
    assert!(
        be.refused() + be.queued > 0,
        "brownout must hit the best-effort tier first (refused {} queued {})",
        be.refused(),
        be.queued,
    );
    assert!(
        be.completed > 0,
        "calm windows must re-admit the browned tier (BE completed = 0)"
    );
    assert!(
        res.weighted_goodput_hz > 0.0,
        "weighted goodput must be reported"
    );
    let horizon_s = cfg.horizon_us / 1e6;
    let from_tiers: f64 = res
        .tier_outcomes
        .iter()
        .map(|o| o.slo_met as f64 * o.weight / horizon_s)
        .sum();
    assert!(
        (res.weighted_goodput_hz - from_tiers).abs() < 1e-9 * from_tiers.max(1.0),
        "weighted goodput {} must equal the tier-ledger sum {}",
        res.weighted_goodput_hz,
        from_tiers
    );
}

/// Deadline-aware retry budgets: a zero-retry best-effort tier drops
/// its crash-orphaned work immediately instead of burning survivor
/// capacity on retries, while the Guaranteed tier keeps its budget.
#[test]
fn zero_retry_tier_drops_orphans_immediately() {
    let mut cfg = base_cfg();
    cfg.trace = TraceConfig::apollo_like().scaled(3.0).with_bursts(2.0, 0.4);
    cfg.tiers = Some(three_class_tiers(n_ls()));
    cfg.chaos = Some(FaultPlan::new(vec![FaultEvent::crash(
        0,
        cfg.horizon_us * 0.25,
        f64::INFINITY,
    )]));
    let res = run_with_clock(&cfg, RouterKind::P2cSlo, ClockKind::Parallel);
    assert_conserved_tiered(&res);
    let be = res
        .tier_outcomes
        .iter()
        .find(|o| o.class == AdmissionClass::BestEffort)
        .expect("best-effort tier present");
    assert!(
        be.timeout_drops > 0,
        "crash must orphan some zero-retry BE work into immediate drops"
    );
}

proptest! {
    /// The acceptance property: serial and parallel clocks agree bit
    /// for bit — tier outcomes included — under random tier maps ×
    /// fault plans × scaling policies × systems × routers ×
    /// `advance_order` permutations.
    #[test]
    fn clocks_agree_under_any_tier_config(
        n_replicas in 1usize..4,
        pool in (0usize..3, 0u64..8192),
        system_idx in 0usize..6,
        router_idx in 0usize..3,
        scale in 0.8f64..2.8,
        seeds in (0u64..1_000_000, 0u64..u64::MAX),
        fault in (0u64..1_000_000, 0.5f64..2.0),
        perm_seed in 0u64..1_000_000,
    ) {
        let (warm, elastic_bits) = pool;
        let (seed, tier_bits) = seeds;
        let (fault_seed, intensity) = fault;
        let system = SystemKind::all()[system_idx];
        let router = RouterKind::all()[router_idx];
        let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; n_replicas], system);
        cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
        cfg.trace = TraceConfig::apollo_like().scaled(scale);
        cfg.seed = seed;
        cfg.controller = ControllerConfig {
            period_us: 1.2e4,
            breach_ratio: 0.9,
            adaptive_ch_be: true,
            ..Default::default()
        };
        cfg.tiers = Some(random_tiers(cfg.prepare().n_ls(), tier_bits));
        cfg.elastic = Some(random_elastic(n_replicas, warm, elastic_bits));
        cfg.chaos = Some(FaultPlan::generate(
            fault_seed,
            n_replicas + warm,
            cfg.horizon_us,
            intensity,
        ));
        cfg.advance_order = permutation(n_replicas + warm, perm_seed);
        let serial = run_with_clock(&cfg, router, ClockKind::Serial);
        let parallel = run_with_clock(&cfg, router, ClockKind::Parallel);
        prop_assert_eq!(serial, parallel);
    }

    /// Conservation under tiers: every injected arrival is exactly one
    /// of {completed, timeout-dropped, shed, refused,
    /// in-flight-at-horizon}, per tier and globally, with the tier
    /// ledgers summing back to the global counters — across random
    /// tier maps, fault plans, scaling policies, systems and both
    /// clocks.
    #[test]
    fn tiers_are_conserved(
        n_replicas in 1usize..4,
        pool in (0usize..3, 0u64..8192),
        system_idx in 0usize..6,
        router_idx in 0usize..3,
        mode_bits in 0u64..4,
        scale in 0.8f64..2.8,
        seeds in (0u64..1_000_000, 0u64..u64::MAX),
        fault_seed in 0u64..1_000_000,
    ) {
        let (warm, elastic_bits) = pool;
        let (seed, tier_bits) = seeds;
        let system = SystemKind::all()[system_idx];
        let router = RouterKind::all()[router_idx];
        let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; n_replicas], system);
        cfg.horizon_us = if cfg!(debug_assertions) { 2.5e4 } else { 6e4 };
        cfg.trace = TraceConfig::apollo_like().scaled(scale);
        cfg.seed = seed;
        cfg.controller.period_us = 1.2e4;
        cfg.tiers = Some(random_tiers(cfg.prepare().n_ls(), tier_bits));
        cfg.elastic = Some(random_elastic(n_replicas, warm, elastic_bits));
        if mode_bits & 2 == 2 {
            cfg.chaos = Some(FaultPlan::generate(
                fault_seed,
                n_replicas + warm,
                cfg.horizon_us,
                1.5,
            ));
        }
        let clock = if mode_bits & 1 == 1 {
            ClockKind::Serial
        } else {
            ClockKind::Parallel
        };
        let res = run_with_clock(&cfg, router, clock);
        assert_conserved_tiered(&res);
    }
}
