//! Sweep-engine equivalence and determinism.
//!
//! * every cell run through the reusable per-worker contexts must match
//!   the naive fresh-everything evaluation: exact counts bit-identical,
//!   sketch p99 within the histogram's documented error of the exact
//!   sorted p99;
//! * the sweep's output must be independent of chunking (and therefore
//!   of worker count — workers only decide which chunk runs where).

use workload::metrics::HIST_REL_ERROR;
use workload::runner::Deployment;
use workload::sweep::{cell_seed, naive_cell_summary, run_sweep, SweepGrid, SweepOptions};

/// A one-replication Fig. 17-style grid, short horizon: every GPU ×
/// load × supported system × BE co-location.
fn small_grid() -> SweepGrid {
    SweepGrid::fig17_style(if cfg!(debug_assertions) { 6e3 } else { 1.2e4 }, 1)
}

#[test]
fn sweep_matches_naive_per_cell_evaluation() {
    let cells = small_grid().cells();
    let result = run_sweep(&cells, &SweepOptions::default());
    assert_eq!(result.cells.len(), cells.len());
    for (cell, swept) in cells.iter().zip(&result.cells) {
        let dep = Deployment::cached(cell.gpu);
        let naive = naive_cell_summary(swept.index, cell, &dep);
        // Exact fields must be bit-identical: the reused context and the
        // reused policies may not change a single completion.
        assert_eq!(naive.ls_requests, swept.ls_requests, "{cell:?}");
        assert_eq!(naive.slo_met, swept.slo_met, "{cell:?}");
        assert_eq!(naive.be_completed, swept.be_completed, "{cell:?}");
        assert_eq!(naive.be_preemptions, swept.be_preemptions, "{cell:?}");
        assert_eq!(naive.engine_events, swept.engine_events, "{cell:?}");
        assert_eq!(
            naive.slo_attainment.to_bits(),
            swept.slo_attainment.to_bits()
        );
        assert_eq!(
            naive.mean_latency_us.to_bits(),
            swept.mean_latency_us.to_bits()
        );
        assert_eq!(naive.goodput_hz.to_bits(), swept.goodput_hz.to_bits());
        assert_eq!(
            naive.be_throughput_hz.to_bits(),
            swept.be_throughput_hz.to_bits()
        );
        // The sketch percentile tracks the exact sorted percentile
        // within the documented bin error.
        assert!(
            (naive.worst_p99_us - swept.worst_p99_us).abs()
                <= naive.worst_p99_us * HIST_REL_ERROR + 1e-9,
            "{cell:?}: exact p99 {} vs sketch {}",
            naive.worst_p99_us,
            swept.worst_p99_us
        );
    }
    assert_eq!(
        result.total_requests,
        result.cells.iter().map(|c| c.ls_requests).sum::<u64>()
    );
    assert_eq!(result.latency_hist.count(), result.total_requests);
}

#[test]
fn sweep_results_are_chunking_invariant() {
    let grid = SweepGrid {
        replications: 2,
        ..small_grid()
    };
    let cells = grid.cells();
    let opts = |chunk| SweepOptions {
        chunk_size: chunk,
        ..Default::default()
    };
    let a = run_sweep(&cells, &opts(1));
    let b = run_sweep(&cells, &opts(7));
    let c = run_sweep(&cells, &opts(0)); // auto
    for other in [&b, &c] {
        // Per-cell summaries are bit-identical under any chunking.
        assert_eq!(a.cells, other.cells);
        assert_eq!(a.total_events, other.total_events);
        assert_eq!(a.total_requests, other.total_requests);
        // Histogram bin contents and extremes are exact integers/maxima
        // and thus chunking-invariant; the running f64 `sum` may differ
        // in the last ulp with merge grouping (documented).
        assert_eq!(a.latency_hist.count(), other.latency_hist.count());
        assert_eq!(
            a.latency_hist.percentile(50.0).to_bits(),
            other.latency_hist.percentile(50.0).to_bits()
        );
        assert_eq!(
            a.latency_hist.percentile(99.0).to_bits(),
            other.latency_hist.percentile(99.0).to_bits()
        );
        assert_eq!(a.latency_hist.min(), other.latency_hist.min());
        assert_eq!(a.latency_hist.max(), other.latency_hist.max());
        let (sa, sb) = (a.latency_hist.sum(), other.latency_hist.sum());
        assert!((sa - sb).abs() <= sa.abs() * 1e-12);
    }
}

#[test]
fn slice_sketches_partition_the_grid_population() {
    let grid = small_grid();
    let cells = grid.cells();
    let result = run_sweep(&cells, &SweepOptions::default());
    // Every (gpu, system) pair the grid ran has a slice; the slices
    // partition the grid-wide population exactly.
    let mut total = 0u64;
    for slice in &result.slices {
        let expected: u64 = result
            .cells
            .iter()
            .filter(|c| c.cell.gpu == slice.gpu && c.cell.system == slice.system)
            .map(|c| c.ls_requests)
            .sum();
        assert_eq!(
            slice.hist.count(),
            expected,
            "slice ({}, {})",
            slice.gpu.name(),
            slice.system.name()
        );
        assert!(
            result.slice(slice.gpu, slice.system).is_some(),
            "lookup misses a present slice"
        );
        total += slice.hist.count();
    }
    assert_eq!(total, result.latency_hist.count());
    // Merging all slices reproduces the grid-wide bins exactly.
    let mut merged = workload::LatencyHistogram::new();
    for slice in &result.slices {
        merged.merge(&slice.hist);
    }
    assert_eq!(merged.count(), result.latency_hist.count());
    for p in [50.0, 90.0, 99.0] {
        assert_eq!(
            merged.percentile(p).to_bits(),
            result.latency_hist.percentile(p).to_bits()
        );
    }
    // Slices are chunking-invariant like everything else.
    let rechunked = run_sweep(
        &cells,
        &SweepOptions {
            chunk_size: 5,
            ..Default::default()
        },
    );
    assert_eq!(result.slices.len(), rechunked.slices.len());
    for (a, b) in result.slices.iter().zip(&rechunked.slices) {
        assert_eq!((a.gpu, a.system), (b.gpu, b.system));
        assert_eq!(a.hist.count(), b.hist.count());
        assert_eq!(
            a.hist.percentile(99.0).to_bits(),
            b.hist.percentile(99.0).to_bits()
        );
    }
}

#[test]
fn cell_seeds_are_stable_pure_functions() {
    // The seed assignment is part of the reproducibility contract:
    // pin the derivation so a refactor cannot silently reshuffle every
    // published sweep.
    assert_eq!(cell_seed(0xA110C, 0), cell_seed(0xA110C, 0));
    assert_ne!(cell_seed(0xA110C, 0), cell_seed(0xA110C, 1));
    assert_ne!(cell_seed(0xA110C, 0), cell_seed(0xB200D, 0));
    // Grids with the same parameters produce the same cells.
    let a = small_grid().cells();
    let b = small_grid().cells();
    assert_eq!(a, b);
    // MPS is skipped on the P40, as in Fig. 17.
    assert!(a
        .iter()
        .all(|c| c.system != workload::SystemKind::Mps || c.gpu != gpu_spec::GpuModel::TeslaP40));
}
