//! Zero-steady-state-allocation contract for the fleet clock's epoch
//! path, enforced with a counting global allocator.
//!
//! The method isolates *per-epoch* cost from *per-run* cost: two
//! prepared configs differing only in horizon (H and 2H) run on a
//! warmed [`ClusterCtx`]; the 2H run executes roughly twice the epochs
//! (arrivals, quiesces, controller ticks) of the H run, so any
//! allocation on the epoch path — busy-set collection, router views,
//! lane refresh, injection, tick drains — would show up thousands of
//! times in the difference. Per-run setup (lane boxes, placement
//! clones, summaries) is identical on both sides and cancels. The small
//! slack absorbs data-dependent growth that is O(log) or
//! O(replicas)-bounded per run: histogram touched-list doubling and the
//! migration log.

use gpu_spec::GpuModel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use workload::cluster::{ClusterConfig, ClusterCtx, RouterKind};
use workload::runner::Deployment;
use workload::trace::TraceConfig;
use workload::{SystemKind, TelemetryConfig};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn fleet_cfg(horizon_us: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(vec![GpuModel::RtxA2000; 64], SystemKind::Sgdrc);
    cfg.horizon_us = horizon_us;
    cfg.trace = TraceConfig::apollo_like().scaled(0.9 * 64.0);
    cfg.controller.period_us = 5e4;
    cfg.streaming = true;
    cfg
}

/// A 64-replica streaming fleet run at horizon 2H allocates no more
/// than a run at horizon H plus a small data-dependent slack — i.e. the
/// doubled epoch count adds (essentially) zero allocations.
#[test]
fn epoch_path_allocates_nothing_in_steady_state() {
    if rayon::current_pool_workers() > 1 {
        // The pool's batch dispatch may allocate when it actually fans
        // out; the zero-alloc contract targets the clock itself.
        // CI's default (1-worker) run enforces the gate.
        eprintln!("skipping: pool has >1 worker; epoch batches may allocate in dispatch");
        return;
    }
    if cfg!(debug_assertions) {
        // Debug builds run the retained linear-scan oracle every epoch
        // (it materializes its expected busy set) plus the engine's own
        // debug-assert scaffolding — millions of intentional
        // allocations that exist only to check the fast path. The
        // zero-alloc contract is a release-build property; CI runs this
        // test under `--release` explicitly.
        eprintln!("skipping: debug_assertions oracle allocates by design; run under --release");
        return;
    }
    let h = 2e5;
    let _ = Deployment::cached(GpuModel::RtxA2000);
    let prep_short = fleet_cfg(h).prepare();
    let prep_long = fleet_cfg(2.0 * h).prepare();
    let mut ctx = ClusterCtx::new();

    // Warm every capacity high-water mark with the longer run first,
    // then the short one.
    for prep in [&prep_long, &prep_short] {
        let mut router = RouterKind::ShortestBacklog.make(prep.config().seed);
        let r = workload::run_cluster_prepared(prep, router.as_mut(), &mut ctx);
        assert!(r.requests > 0, "degenerate scenario");
    }

    let measure = |prep: &workload::PreparedCluster, ctx: &mut ClusterCtx| {
        let mut router = RouterKind::ShortestBacklog.make(prep.config().seed);
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let r = workload::run_cluster_prepared(prep, router.as_mut(), ctx);
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(r.retained_completions, 0, "streaming retained logs");
        (after - before, r.requests)
    };

    let (allocs_short, req_short) = measure(&prep_short, &mut ctx);
    let (allocs_long, req_long) = measure(&prep_long, &mut ctx);
    assert!(
        req_long > req_short + 1000,
        "the long run must execute materially more epochs ({req_short} vs {req_long})"
    );

    // Per-epoch allocations would appear ~req_short times here; the
    // slack only covers amortized-doubling tails and the migration log.
    let delta = allocs_long.saturating_sub(allocs_short);
    assert!(
        delta <= 256,
        "doubling the horizon added {delta} allocations \
         ({allocs_short} at H, {allocs_long} at 2H) — the epoch path allocates"
    );
}

/// The *enabled* flight recorder allocates only at ring/series creation,
/// never per event: with telemetry on, the 2H run records roughly twice
/// the events of the H run (every completion, route, and tick sample
/// lands in a ring), yet the allocation-call counts differ only by the
/// same slack as the recorder-off contract. Creation cost — one call
/// per ring and per reserved series, identical on both sides — cancels
/// in the difference; only a per-event allocation could show up tens of
/// thousands of times here.
#[test]
fn enabled_recorder_allocates_only_at_creation() {
    if rayon::current_pool_workers() > 1 {
        eprintln!("skipping: pool has >1 worker; epoch batches may allocate in dispatch");
        return;
    }
    if cfg!(debug_assertions) {
        eprintln!("skipping: debug_assertions oracle allocates by design; run under --release");
        return;
    }
    let telemetry_cfg = |horizon_us: f64| {
        let mut cfg = fleet_cfg(horizon_us);
        // Small rings force steady-state overwrites — the hot path is
        // exercised far past capacity on both sides.
        cfg.telemetry = Some(TelemetryConfig {
            ring_capacity: 256,
            profile: true,
        });
        cfg
    };
    let h = 2e5;
    let _ = Deployment::cached(GpuModel::RtxA2000);
    let prep_short = telemetry_cfg(h).prepare();
    let prep_long = telemetry_cfg(2.0 * h).prepare();
    let mut ctx = ClusterCtx::new();

    for prep in [&prep_long, &prep_short] {
        let mut router = RouterKind::ShortestBacklog.make(prep.config().seed);
        let r = workload::run_cluster_prepared(prep, router.as_mut(), &mut ctx);
        assert!(r.requests > 0, "degenerate scenario");
    }

    let measure = |prep: &workload::PreparedCluster, ctx: &mut ClusterCtx| {
        let mut router = RouterKind::ShortestBacklog.make(prep.config().seed);
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let r = workload::run_cluster_prepared(prep, router.as_mut(), ctx);
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        let tel = r.telemetry.expect("recorder was enabled");
        assert!(
            tel.dropped_events > 0,
            "rings must overwrite in steady state"
        );
        (
            after - before,
            r.requests,
            tel.events.len() as u64 + tel.dropped_events,
        )
    };

    let (allocs_short, req_short, recorded_short) = measure(&prep_short, &mut ctx);
    let (allocs_long, req_long, recorded_long) = measure(&prep_long, &mut ctx);
    assert!(
        req_long > req_short + 1000,
        "the long run must execute materially more epochs ({req_short} vs {req_long})"
    );
    assert!(
        recorded_long > recorded_short + 1000,
        "the long run must record materially more events ({recorded_short} vs {recorded_long})"
    );

    // A per-event allocation would appear ~recorded_short extra times
    // here; creation-time allocations are identical per run and cancel.
    let delta = allocs_long.saturating_sub(allocs_short);
    assert!(
        delta <= 256,
        "doubling the horizon with the recorder on added {delta} allocations \
         ({allocs_short} at H, {allocs_long} at 2H) — the recorder allocates per event"
    );
}
