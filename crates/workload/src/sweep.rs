//! Cluster-scale what-if sweeps: thousands of short co-location cells.
//!
//! The Fig. 17 grid is a handful of long cells; capacity planning asks
//! the opposite question — *many* short cells over GPU models × loads ×
//! BE mixes × trace seeds. At that scale the per-cell costs the long-cell
//! path shrugs off start to dominate: rebuilding the engine and serving
//! queues per cell, regenerating and re-merging the arrival trace,
//! reconstructing policies, and collect-then-sort percentile queries.
//!
//! This module runs a cell grid through **reusable simulation
//! contexts**, one per fan-out chunk:
//!
//! * each chunk of cells (a worker's unit of work; sized by default so
//!   a worker handles a few large chunks and per-chunk setup amortizes
//!   to noise) owns one [`SimContext`] (engine + queue + statistics
//!   storage, reset in place per cell — zero steady-state allocation
//!   across the chunk's cells), one reconfigurable [`Sgdrc`] instance,
//!   one boxed policy per baseline, and a memo of arrival traces keyed
//!   by (seed, load, horizon) so cells replaying the same trace share
//!   one `Arc`;
//! * deployments come from [`Deployment::cached_with_options`] — the
//!   compile+profile of a GPU's model zoo happens once per sweep, not
//!   once per cell;
//! * latency percentiles stream through the mergeable
//!   [`LatencyHistogram`] sketch instead of collect-then-sort, and merge
//!   across cells without re-sorting;
//! * the grid fans out in contiguous chunks over `rayon`'s persistent
//!   work-stealing pool (`par_chunks` — no thread spawn per sweep), and
//!   every cell's seed is a pure function of the grid ([`cell_seed`]), so
//!   per-cell summaries and histogram bin contents are bit-identical
//!   regardless of worker count or chunking (enforced by
//!   `tests/sweep.rs`; the merged histogram's floating-point `sum` may
//!   differ in the final ulp with merge grouping).
//!
//! [`naive_cell_summary`] preserves the one-cell-at-a-time evaluation
//! (fresh everything, exact sorted percentiles) as the equivalence
//! oracle and the `BENCH_sweep` baseline.

use crate::metrics::{percentile, slo_for, LatencyHistogram};
use crate::runner::{Deployment, Load, SystemKind};
use crate::trace::{per_service_traces, TraceConfig};
use dnn::CompileOptions;
use gpu_spec::GpuModel;
use rayon::prelude::*;
use sgdrc_core::serving::{
    run_in_context, ArrivalTrace, CompletedRequest, Policy, RunStats, Scenario, SimContext,
};
use sgdrc_core::{Sgdrc, SgdrcConfig};
use std::sync::Arc;

/// One short co-location cell of a sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    pub gpu: GpuModel,
    pub load: Load,
    pub system: SystemKind,
    /// Which BE model co-locates (index into the deployment's BE set).
    pub be_index: usize,
    /// Simulated horizon (µs) — short by design.
    pub horizon_us: f64,
    /// In-flight inference slots per LS model (§9.2: 4).
    pub ls_instances: usize,
    /// Trace seed; cells sharing a seed (and trace shape/horizon) replay
    /// the same arrival trace.
    pub seed: u64,
    /// Per-service arrival shape before the load scaling — trace-shape
    /// sensitivity grids vary the burst/diurnal knobs here.
    pub trace: TraceConfig,
}

/// SplitMix64 — the standard 64-bit finalizer used for seed derivation.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic cell→seed assignment: a pure function of the sweep's
/// base seed and the replication index, independent of cell order,
/// chunking and worker count — the property that makes sweep results
/// reproducible under any parallel schedule.
pub fn cell_seed(base_seed: u64, replication: u64) -> u64 {
    splitmix64(base_seed ^ splitmix64(replication))
}

/// A rectangular sweep grid; [`SweepGrid::cells`] flattens it into the
/// cell list [`run_sweep`] consumes.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    pub gpus: Vec<GpuModel>,
    pub loads: Vec<Load>,
    pub systems: Vec<SystemKind>,
    /// BE co-location indices (the paper rotates 3 BE models).
    pub be_indices: Vec<usize>,
    /// Independent trace replications (each gets its own derived seed).
    pub replications: usize,
    pub horizon_us: f64,
    pub ls_instances: usize,
    pub base_seed: u64,
    /// Per-service arrival shape (before load scaling), copied into every
    /// cell — vary the burst/diurnal knobs here for trace-shape
    /// sensitivity grids.
    pub trace: TraceConfig,
}

impl SweepGrid {
    /// The Fig. 17-shaped grid: every GPU model × both loads × every
    /// supported system × all three BE co-locations, replicated
    /// `replications` times at a short horizon.
    pub fn fig17_style(horizon_us: f64, replications: usize) -> Self {
        Self {
            gpus: GpuModel::all().to_vec(),
            loads: vec![Load::Heavy, Load::Light],
            systems: SystemKind::all().to_vec(),
            be_indices: vec![0, 1, 2],
            replications,
            horizon_us,
            ls_instances: 4,
            base_seed: 0xA110C,
            trace: TraceConfig::apollo_like(),
        }
    }

    /// Flattens the grid into cells, ordered so cells sharing an arrival
    /// trace (same replication + load) are contiguous — the layout the
    /// per-worker trace memo exploits. Systems a GPU cannot run (MPS on
    /// the P40) are skipped, as in Fig. 17.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::new();
        for rep in 0..self.replications {
            let seed = cell_seed(self.base_seed, rep as u64);
            for &load in &self.loads {
                for &gpu in &self.gpus {
                    let spec = gpu.spec();
                    for &system in &self.systems {
                        if !system.supported_on(&spec) {
                            continue;
                        }
                        for &be_index in &self.be_indices {
                            out.push(CellSpec {
                                gpu,
                                load,
                                system,
                                be_index,
                                horizon_us: self.horizon_us,
                                ls_instances: self.ls_instances,
                                seed,
                                trace: self.trace,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Compact per-cell result: exact counts, streaming-sketch percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Position in the sweep's cell list.
    pub index: usize,
    pub cell: CellSpec,
    /// Completed LS requests (exact).
    pub ls_requests: u64,
    /// Requests that met their per-service SLO (exact).
    pub slo_met: u64,
    /// `slo_met / ls_requests` (0 when no requests completed).
    pub slo_attainment: f64,
    /// Exact mean end-to-end latency (µs; 0 when no requests).
    pub mean_latency_us: f64,
    /// Max over LS services of the per-service p99 latency (µs). Sketch
    /// percentile in the sweep path, exact in [`naive_cell_summary`];
    /// the two agree within [`crate::metrics::HIST_REL_ERROR`].
    pub worst_p99_us: f64,
    /// SLO-meeting completions per second.
    pub goodput_hz: f64,
    /// Whole BE inferences completed (exact).
    pub be_completed: u64,
    /// BE samples/second (batch × inferences / horizon).
    pub be_throughput_hz: f64,
    pub be_preemptions: u64,
    pub engine_events: u64,
}

/// Sweep tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Cells per fan-out chunk; 0 picks a size that amortizes per-chunk
    /// context setup while keeping a few chunks per worker for balance.
    pub chunk_size: usize,
    /// Compile options for every deployment in the sweep.
    pub compile: CompileOptions,
}

/// The merged latency sketch of one (GPU, system) slice of a sweep grid
/// — the per-slice percentile surface the grid-wide histogram cannot
/// answer (and exactly what a cluster merges per replica).
#[derive(Debug, Clone, PartialEq)]
pub struct SliceHist {
    pub gpu: GpuModel,
    pub system: SystemKind,
    pub hist: LatencyHistogram,
}

/// Aggregate sweep output.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// One summary per cell, in cell-list order.
    pub cells: Vec<CellSummary>,
    /// Every LS latency of the sweep, merged across cells without
    /// re-sorting — grid-wide percentiles come from here.
    pub latency_hist: LatencyHistogram,
    /// The same population broken out per (GPU, system) slice, in
    /// `GpuModel::all` × `SystemKind::all` order (slices the grid never
    /// ran are absent). Bin contents are chunking-invariant like the
    /// grid-wide histogram's.
    pub slices: Vec<SliceHist>,
    pub total_events: u64,
    pub total_requests: u64,
    /// The chunk size actually used.
    pub chunk_size: usize,
}

impl SweepResult {
    /// The merged sketch of one (GPU, system) slice, if the grid ran it.
    pub fn slice(&self, gpu: GpuModel, system: SystemKind) -> Option<&LatencyHistogram> {
        self.slices
            .iter()
            .find(|s| s.gpu == gpu && s.system == system)
            .map(|s| &s.hist)
    }
}

/// Canonical slice ordering: position in `GpuModel::all` ×
/// `SystemKind::all` — gives the slice list an order independent of
/// which chunk touched a slice first.
fn slice_rank(gpu: GpuModel, system: SystemKind) -> usize {
    let g = GpuModel::all().iter().position(|&m| m == gpu).unwrap_or(0);
    let s = SystemKind::all()
        .iter()
        .position(|&k| k == system)
        .unwrap_or(0);
    g * SystemKind::all().len() + s
}

/// Per-chunk reusable state: simulation storage, policies, deployments
/// and the arrival-trace memo. Everything a cell needs that is not the
/// cell's own result lives here and is reused across the chunk's cells,
/// not reallocated. Small `chunk_size` overrides trade this reuse for
/// scheduling granularity (`chunk_size: 1` rebuilds it per cell).
struct Worker {
    ctx: SimContext,
    compile: CompileOptions,
    deployments: Vec<(GpuModel, Arc<Deployment>)>,
    traces: Vec<(TraceKey, Arc<ArrivalTrace>)>,
    /// GPU-independent baseline policies, constructed on first use.
    baselines: Vec<(SystemKind, Box<dyn Policy>)>,
    /// One reconfigurable SGDRC instance per variant — re-targeted in
    /// place when the cell's GPU changes (keeps the window buffer).
    sgdrc: Option<(GpuModel, Sgdrc)>,
    sgdrc_static: Option<(GpuModel, Sgdrc)>,
    /// Per-service percentile scratch, reset per service.
    task_hist: LatencyHistogram,
    /// All LS latencies this worker has seen (merged into the result).
    merged_hist: LatencyHistogram,
    /// The same latencies broken out per (GPU, system) slice.
    slice_hists: Vec<((GpuModel, SystemKind), LatencyHistogram)>,
}

/// Arrival traces are determined by (seed, horizon, #LS services) plus
/// the full load-scaled trace shape; two cells agreeing on the key
/// replay the identical trace.
type TraceKey = (u64, u64, usize, [u64; 6]);

fn trace_key(cell: &CellSpec, num_tasks: usize) -> TraceKey {
    let cfg = cell.trace.scaled(cell.load.scale());
    (
        cell.seed,
        cell.horizon_us.to_bits(),
        num_tasks,
        [
            cfg.mean_rate_hz.to_bits(),
            cfg.burst_factor.to_bits(),
            cfg.burst_period_s.to_bits(),
            cfg.burst_duty.to_bits(),
            cfg.diurnal_depth.to_bits(),
            cfg.diurnal_period_s.to_bits(),
        ],
    )
}

impl Worker {
    fn new(compile: CompileOptions) -> Self {
        Self {
            ctx: SimContext::new(),
            compile,
            deployments: Vec::new(),
            traces: Vec::new(),
            baselines: Vec::new(),
            sgdrc: None,
            sgdrc_static: None,
            task_hist: LatencyHistogram::new(),
            merged_hist: LatencyHistogram::new(),
            slice_hists: Vec::new(),
        }
    }

    fn deployment(&mut self, gpu: GpuModel) -> Arc<Deployment> {
        if let Some((_, dep)) = self.deployments.iter().find(|(g, _)| *g == gpu) {
            return Arc::clone(dep);
        }
        let dep = Deployment::cached_with_options(gpu, self.compile);
        self.deployments.push((gpu, Arc::clone(&dep)));
        dep
    }

    fn trace(&mut self, cell: &CellSpec, num_tasks: usize) -> Arc<ArrivalTrace> {
        let key = trace_key(cell, num_tasks);
        if let Some((_, tr)) = self.traces.iter().find(|(k, _)| *k == key) {
            return Arc::clone(tr);
        }
        let tr = Arc::new(ArrivalTrace::new(per_service_traces(
            &cell.trace.scaled(cell.load.scale()),
            num_tasks,
            cell.horizon_us,
            cell.seed,
        )));
        // Build the merged stream once, up front, so every cell sharing
        // the trace consumes a ready-made stream.
        let _ = tr.merged();
        self.traces.push((key, Arc::clone(&tr)));
        tr
    }

    fn run_cell(&mut self, index: usize, cell: &CellSpec) -> CellSummary {
        let dep = self.deployment(cell.gpu);
        let trace = self.trace(cell, dep.ls_tasks.len());
        let scenario = Scenario {
            spec: dep.spec.clone(),
            ls: Arc::clone(&dep.ls_tasks),
            be: dep.be_singleton(cell.be_index),
            ls_instances: cell.ls_instances,
            arrivals: trace,
            horizon_us: cell.horizon_us,
        };
        let stats = {
            let ctx = &mut self.ctx;
            // Policy lookup inline so the borrows stay field-disjoint
            // from the context: one reconfigurable SGDRC per variant
            // (re-targeted when the GPU changes, window buffer kept),
            // one boxed instance per GPU-independent baseline. Policies
            // reset per run via `Policy::on_run_start`.
            let policy = match cell.system {
                SystemKind::Sgdrc | SystemKind::SgdrcStatic => {
                    let cfg = SgdrcConfig {
                        static_partition: cell.system == SystemKind::SgdrcStatic,
                        ..Default::default()
                    };
                    let slot = if cell.system == SystemKind::Sgdrc {
                        &mut self.sgdrc
                    } else {
                        &mut self.sgdrc_static
                    };
                    match slot {
                        Some((g, policy)) => {
                            if *g != cell.gpu {
                                policy.reconfigure(&dep.spec, cfg);
                                *g = cell.gpu;
                            }
                            policy as &mut dyn Policy
                        }
                        None => {
                            *slot = Some((cell.gpu, Sgdrc::new(&dep.spec, cfg)));
                            &mut slot.as_mut().expect("just set").1 as &mut dyn Policy
                        }
                    }
                }
                other => {
                    if let Some(i) = self.baselines.iter().position(|(s, _)| *s == other) {
                        self.baselines[i].1.as_mut()
                    } else {
                        self.baselines.push((other, other.make(&dep.spec)));
                        self.baselines.last_mut().expect("just pushed").1.as_mut()
                    }
                }
            };
            run_in_context(policy, &scenario, ctx)
        };
        let slice_key = (cell.gpu, cell.system);
        let si = match self.slice_hists.iter().position(|(k, _)| *k == slice_key) {
            Some(i) => i,
            None => {
                self.slice_hists.push((slice_key, LatencyHistogram::new()));
                self.slice_hists.len() - 1
            }
        };
        let task_hist = &mut self.task_hist;
        let merged_hist = &mut self.merged_hist;
        let slice_hist = &mut self.slice_hists[si].1;
        let summary = summarize(index, cell, &dep, &stats, |_, reqs| {
            task_hist.reset();
            for r in reqs {
                let lat = r.latency_us();
                task_hist.record(lat);
                merged_hist.record(lat);
                slice_hist.record(lat);
            }
            task_hist.percentile(99.0)
        });
        self.ctx.recycle(stats);
        summary
    }
}

/// Builds a [`CellSummary`] from run statistics; the per-service p99
/// comes from `p99_of`, letting the sweep path use the streaming sketch
/// and the naive path an exact sort over the same populations.
fn summarize(
    index: usize,
    cell: &CellSpec,
    dep: &Deployment,
    stats: &RunStats,
    mut p99_of: impl FnMut(usize, &[CompletedRequest]) -> f64,
) -> CellSummary {
    let n_services = dep.ls_tasks.len() + 1;
    let horizon_s = cell.horizon_us / 1e6;
    let mut requests = 0u64;
    let mut met = 0u64;
    let mut latency_sum = 0.0;
    let mut worst_p99 = f64::NEG_INFINITY;
    for (t, reqs) in stats.ls_completed.iter().enumerate() {
        let slo = slo_for(dep.ls_tasks[t].profile.isolated_e2e_us, n_services);
        for r in reqs {
            let lat = r.latency_us();
            latency_sum += lat;
            requests += 1;
            if lat <= slo {
                met += 1;
            }
        }
        // NaN from an empty service never wins the max.
        worst_p99 = worst_p99.max(p99_of(t, reqs));
    }
    let be_task = &dep.be_tasks[cell.be_index];
    let be_samples = stats.be_completed[0] * be_task.model.batch as u64;
    CellSummary {
        index,
        cell: *cell,
        ls_requests: requests,
        slo_met: met,
        slo_attainment: met as f64 / requests.max(1) as f64,
        mean_latency_us: if requests == 0 {
            0.0
        } else {
            latency_sum / requests as f64
        },
        worst_p99_us: if worst_p99.is_finite() {
            worst_p99
        } else {
            0.0
        },
        goodput_hz: met as f64 / horizon_s,
        be_completed: stats.be_completed[0],
        be_throughput_hz: be_samples as f64 / horizon_s,
        be_preemptions: stats.be_preemptions,
        engine_events: stats.engine_events,
    }
}

/// One cell evaluated the way a naive per-cell loop evaluates it:
/// caller-supplied deployment, freshly generated trace, fresh policy,
/// fresh simulation storage, and exact collect-then-sort percentiles.
/// The sweep engine must reproduce its counts exactly and its p99
/// within the sketch's documented error — `tests/sweep.rs` and
/// `bench_sweep` both enforce that.
pub fn naive_cell_summary(index: usize, cell: &CellSpec, dep: &Deployment) -> CellSummary {
    let trace = Arc::new(ArrivalTrace::new(per_service_traces(
        &cell.trace.scaled(cell.load.scale()),
        dep.ls_tasks.len(),
        cell.horizon_us,
        cell.seed,
    )));
    let scenario = Scenario {
        spec: dep.spec.clone(),
        ls: Arc::clone(&dep.ls_tasks),
        be: dep.be_singleton(cell.be_index),
        ls_instances: cell.ls_instances,
        arrivals: trace,
        horizon_us: cell.horizon_us,
    };
    let mut policy = cell.system.make(&dep.spec);
    let stats = sgdrc_core::serving::run(policy.as_mut(), &scenario);
    let mut lat_buf: Vec<f64> = Vec::new();
    summarize(index, cell, dep, &stats, |_, reqs| {
        lat_buf.clear();
        lat_buf.extend(reqs.iter().map(|r| r.latency_us()));
        percentile(&lat_buf, 99.0)
    })
}

/// Runs a cell grid through reusable per-chunk contexts with a chunked
/// parallel fan-out. Per-cell summaries and histogram bin contents are
/// identical for any worker count and any chunk size: chunks are mapped
/// in order, summaries keep cell-list order, and per-cell behaviour
/// depends only on the cell itself. (The merged histogram's
/// floating-point `sum` may differ in the final ulp when chunk
/// boundaries regroup its additions.)
pub fn run_sweep(cells: &[CellSpec], opts: &SweepOptions) -> SweepResult {
    // Compile every deployment up front so parallel workers never race
    // (or duplicate) a multi-millisecond compile+profile inside the
    // measured fan-out.
    let mut gpus: Vec<GpuModel> = Vec::new();
    for c in cells {
        if !gpus.contains(&c.gpu) {
            gpus.push(c.gpu);
            Deployment::cached_with_options(c.gpu, opts.compile);
        }
    }
    // Size chunks for the pool that will actually execute them (fixed
    // at pool build), not the live env value — the two differ if
    // `SGDRC_THREADS` changes after the first parallel call.
    let workers = rayon::current_pool_workers();
    let chunk_size = if opts.chunk_size > 0 {
        opts.chunk_size
    } else {
        // A few chunks per worker for load balance, but chunks big
        // enough that per-chunk context setup amortizes to noise.
        cells
            .len()
            .div_ceil(workers.max(1) * 4)
            .clamp(16, cells.len().max(16))
    };
    type ChunkOut = (
        Vec<CellSummary>,
        LatencyHistogram,
        Vec<((GpuModel, SystemKind), LatencyHistogram)>,
    );
    // One persistent-pool batch over the contiguous chunks; the chunk
    // index recovers each cell's position in the grid-wide list.
    let per_chunk: Vec<ChunkOut> = cells
        .par_chunks(chunk_size)
        .enumerate()
        .map(|(ci, chunk)| {
            let start = ci * chunk_size;
            let mut w = Worker::new(opts.compile);
            let summaries: Vec<CellSummary> = chunk
                .iter()
                .enumerate()
                .map(|(off, cell)| w.run_cell(start + off, cell))
                .collect();
            (summaries, w.merged_hist, w.slice_hists)
        })
        .collect();
    let mut result = SweepResult {
        cells: Vec::with_capacity(cells.len()),
        latency_hist: LatencyHistogram::new(),
        slices: Vec::new(),
        total_events: 0,
        total_requests: 0,
        chunk_size,
    };
    // In-order fold: deterministic f64 merge order regardless of which
    // worker finished first.
    for (summaries, hist, slice_hists) in per_chunk {
        for s in &summaries {
            result.total_events += s.engine_events;
            result.total_requests += s.ls_requests;
        }
        result.cells.extend(summaries);
        result.latency_hist.merge(&hist);
        for ((gpu, system), h) in slice_hists {
            match result
                .slices
                .iter_mut()
                .find(|s| s.gpu == gpu && s.system == system)
            {
                Some(s) => s.hist.merge(&h),
                None => result.slices.push(SliceHist {
                    gpu,
                    system,
                    hist: h,
                }),
            }
        }
    }
    // Canonical slice order, independent of which chunk saw a slice
    // first.
    result.slices.sort_by_key(|s| slice_rank(s.gpu, s.system));
    result
}
