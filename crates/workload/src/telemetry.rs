//! # telemetry — the fleet flight recorder
//!
//! A deterministic, low-overhead observability layer threaded through
//! the fleet clock ([`crate::cluster`]): per-lane fixed-capacity ring
//! buffers of structured [`FlightEvent`]s, a metrics time-series
//! registry sampled at controller ticks, and wall-clock phase profiling
//! of the clock itself.
//!
//! Design contract (enforced by `workload/tests/cluster_telemetry.rs`
//! and `workload/tests/cluster_alloc.rs`):
//!
//! * **Feature-off-free.** `ClusterConfig.telemetry = None` records
//!   nothing, allocates nothing on the epoch path, and produces
//!   bit-identical [`crate::ClusterResult`]s (modulo the `telemetry`
//!   field itself, which is `None`).
//! * **Deterministic.** Every event is recorded at a decision point of
//!   the fleet clock (fault < scale < tick < retry < arrival), which
//!   both the serial and the epoch-parallel clocks execute in the same
//!   canonical order — so the merged event streams and sampled series
//!   are bit-identical across clocks and worker counts. Wall-clock
//!   [`ClockProfile`] numbers are *measurements*, not simulation state:
//!   they are excluded from equality.
//! * **Allocation at creation only.** Rings are allocated once per run
//!   at their configured capacity and overwrite their oldest event when
//!   full (`dropped_events` counts the overwrites); series reserve
//!   their tick capacity up front. Steady-state recording never
//!   allocates (counting-allocator tested).

use crate::chaos::FaultKind;
use crate::elastic::{ScaleEvent, ScaleEventKind};
use std::time::Instant;

/// Lane index used for fleet-scoped events (arrival refusals, timeout
/// drops of requests whose origin lane is unknown): the merged stream
/// and the Perfetto exporter give these their own track.
pub const FLEET_TRACK: u32 = u32::MAX;

/// Knobs for the flight recorder. `ClusterConfig.telemetry = None`
/// disables recording entirely (the zero-overhead default).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Events retained per lane (plus one fleet track). When a ring is
    /// full the oldest event is overwritten — a flight recorder keeps
    /// the *most recent* window, and `dropped_events` reports how much
    /// history was lost.
    pub ring_capacity: usize,
    /// Measure wall-clock time per clock phase (collect-due / advance /
    /// route / tick / merge) with `std::time::Instant`. Timing is
    /// observational only and never affects simulation state.
    pub profile: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 4096,
            profile: true,
        }
    }
}

/// Why a request was handed back to the retry machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequeueCause {
    /// Drained out of a crashed lane.
    Crash,
    /// Drained out of a gracefully draining lane (scale-down / breach).
    Drain,
    /// Routed at a lane that looked healthy but was already dead
    /// (stale heartbeat) — the request bounced.
    DeadRoute,
    /// No routable lane looked healthy at arrival time.
    NoHealthy,
}

impl RequeueCause {
    pub fn name(&self) -> &'static str {
        match self {
            RequeueCause::Crash => "crash",
            RequeueCause::Drain => "drain",
            RequeueCause::DeadRoute => "dead_route",
            RequeueCause::NoHealthy => "no_healthy",
        }
    }
}

/// Why the tiered admission controller refused an arrival outright
/// (recorded on the [`FLEET_TRACK`] as [`EventKind::Refused`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// The request's tier sat at its brownout *shed* level: the fleet
    /// was measured overloaded and this tier is no longer admitted.
    Overload,
    /// The tier sat at its *queue* level but its bounded admission
    /// queue was already full.
    QueueFull,
}

impl RefusalReason {
    pub fn name(&self) -> &'static str {
        match self {
            RefusalReason::Overload => "overload",
            RefusalReason::QueueFull => "queue_full",
        }
    }
}

/// One structured flight-recorder event. Fixed-size and `Copy` so ring
/// writes are a store, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The router picked this lane for a fresh arrival.
    Routed { task: u32 },
    /// A request finished on this lane (observed at the next controller
    /// tick; `at_us` is the completion instant, not the tick).
    Completed {
        task: u32,
        latency_us: f64,
        slo_ok: bool,
    },
    /// A request left this lane for the retry queue.
    Requeued { task: u32, cause: RequeueCause },
    /// The retry machinery re-dispatched a request into this lane.
    RetryDispatched { task: u32, attempt: u32 },
    /// A requeued request exhausted its budget and was dropped.
    TimeoutDropped { task: u32 },
    /// The tiered admission controller refused an arrival outright
    /// (fleet-scoped: always on the [`FLEET_TRACK`]).
    Refused {
        task: u32,
        tier: u32,
        reason: RefusalReason,
    },
    /// Graceful degradation shed pending LS work from this lane.
    LsShed { task: u32, count: u32 },
    /// Graceful degradation parked this lane's resident BE jobs.
    BeParked { count: u32 },
    /// A fault began on this lane (crash or slowdown onset).
    FaultOnset { kind: FaultKind },
    /// A fault ended on this lane (revival or slowdown recovery).
    FaultRecovered { kind: FaultKind },
    /// A BE job migrated off this lane.
    MigrationOut { job: u32, to: u32 },
    /// A BE job migrated onto this lane.
    MigrationIn { job: u32, from: u32 },
    /// An elastic membership event (provision / activate / drain /
    /// cancel / retire) — mirrors [`crate::elastic::ScaleEvent`].
    Scale(ScaleEventKind),
    /// The controller's per-lane view at a tick: the windowed p99/SLO
    /// ratio and queue depths it based this tick's verdicts on.
    TickVerdict {
        window_p99_ratio: f64,
        backlog: u32,
        inflight: u32,
        resident_be: u32,
    },
}

impl EventKind {
    /// Stable short name (Perfetto event name, postmortem listings).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Routed { .. } => "routed",
            EventKind::Completed { .. } => "completed",
            EventKind::Requeued { .. } => "requeued",
            EventKind::RetryDispatched { .. } => "retry_dispatched",
            EventKind::TimeoutDropped { .. } => "timeout_dropped",
            EventKind::Refused { .. } => "refused",
            EventKind::LsShed { .. } => "ls_shed",
            EventKind::BeParked { .. } => "be_parked",
            EventKind::FaultOnset { .. } => "fault_onset",
            EventKind::FaultRecovered { .. } => "fault_recovered",
            EventKind::MigrationOut { .. } => "migration_out",
            EventKind::MigrationIn { .. } => "migration_in",
            EventKind::Scale(k) => match k {
                ScaleEventKind::Provision { .. } => "provision",
                ScaleEventKind::Activate => "activate",
                ScaleEventKind::DrainStart { .. } => "drain_start",
                ScaleEventKind::CancelProvision => "cancel_provision",
                ScaleEventKind::Retire => "retire",
            },
            EventKind::TickVerdict { .. } => "tick_verdict",
        }
    }
}

/// A recorded event: simulation time, decision-point sequence number
/// (globally unique, monotone in the canonical decision order of the
/// clock — ties in `at_us` are broken by `seq`), lane ([`FLEET_TRACK`]
/// for fleet-scoped events), and payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    pub at_us: f64,
    pub seq: u64,
    pub lane: u32,
    pub kind: EventKind,
}

/// A fixed-capacity ring of [`FlightEvent`]s. Allocates exactly once
/// (at creation); a push into a full ring overwrites the oldest event.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<FlightEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl EventRing {
    pub fn with_capacity(cap: usize) -> EventRing {
        assert!(cap > 0, "telemetry ring capacity must be positive");
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            start: 0,
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: FlightEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &FlightEvent> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

/// One named time series sampled at controller ticks. `values` is
/// parallel to [`TelemetryResult::tick_us`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    pub name: &'static str,
    /// `Some(lane)` for per-lane gauges, `None` for fleet-wide ones.
    pub lane: Option<u32>,
    pub values: Vec<f64>,
}

/// Wall-clock phase timings of the fleet clock, self-measured with
/// `std::time::Instant` when [`TelemetryConfig::profile`] is on.
///
/// These are *measurements of the host machine*, not simulation state:
/// two bit-identical runs will report different nanosecond counts. The
/// manual `PartialEq` therefore treats every profile as equal, so
/// whole-`ClusterResult` equality (the serial-vs-parallel and
/// recorder-on/off contracts) keeps comparing only deterministic state.
#[derive(Debug, Clone, Default)]
pub struct ClockProfile {
    /// Decision-point epochs executed (quiesce calls).
    pub epochs: u64,
    /// Total lane-advance invocations across all epochs.
    pub lanes_advanced: u64,
    /// Time selecting due lanes (calendar `collect_due` or the serial
    /// scan's busy filter).
    pub collect_ns: u64,
    /// Time advancing due lanes (pool batch or inline loop) plus
    /// mirror refreshes.
    pub advance_ns: u64,
    /// Time routing arrivals (router decision + injection).
    pub route_ns: u64,
    /// Time in controller ticks (window drains, elastic step,
    /// rebalancing, degradation).
    pub tick_ns: u64,
    /// Time merging the per-lane event rings into the canonical stream
    /// at run end.
    pub merge_ns: u64,
    /// Time spent in the recorder's tick sampling — the telemetry
    /// layer's self-measured overhead on the decision path.
    pub telemetry_ns: u64,
    /// Wall time from clock start through the end-of-run drain.
    pub total_ns: u64,
}

impl PartialEq for ClockProfile {
    /// Always equal: wall-clock timings are observational, not state.
    fn eq(&self, _: &ClockProfile) -> bool {
        true
    }
}

/// The recorder's output, surfaced as `ClusterResult.telemetry`.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryResult {
    /// The canonical merged event stream: every lane's retained ring
    /// contents, globally ordered by `(at_us, seq)`. Within one lane
    /// timestamps are monotone non-decreasing.
    pub events: Vec<FlightEvent>,
    /// Events lost to ring overwrites across all lanes.
    pub dropped_events: u64,
    /// The per-lane ring capacity the run recorded with.
    pub ring_capacity: usize,
    /// Controller tick instants the series were sampled at.
    pub tick_us: Vec<f64>,
    /// Per-lane and fleet-wide gauge series (values parallel to
    /// `tick_us`).
    pub series: Vec<MetricSeries>,
    /// Wall-clock phase profile (excluded from equality).
    pub profile: ClockProfile,
}

impl TelemetryResult {
    /// The series named `name` for `lane` (`None` = fleet-wide).
    pub fn series(&self, name: &str, lane: Option<u32>) -> Option<&MetricSeries> {
        self.series
            .iter()
            .find(|s| s.name == name && s.lane == lane)
    }

    /// Events on one lane, in stream order.
    pub fn lane_events(&self, lane: u32) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter().filter(move |e| e.lane == lane)
    }
}

/// Per-lane gauge names sampled at every controller tick.
pub const LANE_SERIES: [&str; 4] = ["backlog", "window_p99_ratio", "inflight", "resident_be"];
/// Fleet-wide gauge names sampled at every controller tick.
pub const FLEET_SERIES: [&str; 4] = [
    "warm_pool_depth",
    "retry_queue_depth",
    "active_lanes",
    "provisioning_lanes",
];
/// Per-tier gauge names sampled at every controller tick when the run
/// has a tier config (the `lane` field of these series carries the
/// *tier rank*, 0 = highest-priority tier): total backlog of the
/// tier's services (in-lane plus admission queue), cumulative weighted
/// on-SLO completions, and cumulative admission refusals.
pub const TIER_SERIES: [&str; 3] = ["tier_backlog", "tier_goodput_w", "tier_refused"];

/// The run-side recorder the fleet clock threads through its decision
/// points. `TelemetryRt::off()` is the disabled recorder: no rings, no
/// series, no `Instant` reads — every `record` call is one predictable
/// branch.
pub(crate) struct TelemetryRt {
    enabled: bool,
    profile: bool,
    seq: u64,
    ring_capacity: usize,
    /// One ring per lane plus the trailing fleet track.
    rings: Vec<EventRing>,
    /// Cursor into the elastic scale-event log (mirrored lazily).
    scale_seen: usize,
    /// Cursor into the migration log (mirrored lazily).
    mig_seen: usize,
    n_lanes: usize,
    /// Distinct tiers sampled per tick (0 when the run has no tier
    /// config — the series layout is then identical to a tier-blind
    /// recorder).
    n_tiers: usize,
    tick_us: Vec<f64>,
    series: Vec<MetricSeries>,
    pub(crate) prof: ClockProfile,
}

impl TelemetryRt {
    /// The disabled recorder: allocation-free and branch-cheap.
    pub(crate) fn off() -> TelemetryRt {
        TelemetryRt {
            enabled: false,
            profile: false,
            seq: 0,
            ring_capacity: 0,
            rings: Vec::new(),
            scale_seen: 0,
            mig_seen: 0,
            n_lanes: 0,
            n_tiers: 0,
            tick_us: Vec::new(),
            series: Vec::new(),
            prof: ClockProfile::default(),
        }
    }

    /// An enabled recorder for `n_lanes` lanes and `n_tiers` SLO tiers
    /// (0 without a tier config) expecting roughly `expected_ticks`
    /// controller ticks. All allocation happens here: rings at full
    /// capacity, series at tick capacity.
    pub(crate) fn new(
        cfg: &TelemetryConfig,
        n_lanes: usize,
        n_tiers: usize,
        expected_ticks: usize,
    ) -> TelemetryRt {
        let cap_ticks = expected_ticks + 2;
        let mut rings = Vec::with_capacity(n_lanes + 1);
        for _ in 0..n_lanes + 1 {
            rings.push(EventRing::with_capacity(cfg.ring_capacity));
        }
        let mut series = Vec::with_capacity(
            n_lanes * LANE_SERIES.len() + FLEET_SERIES.len() + n_tiers * TIER_SERIES.len(),
        );
        for lane in 0..n_lanes {
            for name in LANE_SERIES {
                series.push(MetricSeries {
                    name,
                    lane: Some(lane as u32),
                    values: Vec::with_capacity(cap_ticks),
                });
            }
        }
        for name in FLEET_SERIES {
            series.push(MetricSeries {
                name,
                lane: None,
                values: Vec::with_capacity(cap_ticks),
            });
        }
        for rank in 0..n_tiers {
            for name in TIER_SERIES {
                series.push(MetricSeries {
                    name,
                    lane: Some(rank as u32),
                    values: Vec::with_capacity(cap_ticks),
                });
            }
        }
        TelemetryRt {
            enabled: true,
            profile: cfg.profile,
            seq: 0,
            ring_capacity: cfg.ring_capacity,
            rings,
            scale_seen: 0,
            mig_seen: 0,
            n_lanes,
            n_tiers,
            tick_us: Vec::with_capacity(cap_ticks),
            series,
            prof: ClockProfile::default(),
        }
    }

    #[inline]
    pub(crate) fn is_on(&self) -> bool {
        self.enabled
    }

    /// Records one event at simulation time `at_us` on `lane`
    /// ([`FLEET_TRACK`] for fleet-scoped events). A no-op when
    /// disabled.
    #[inline]
    pub(crate) fn record(&mut self, at_us: f64, lane: u32, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.seq += 1;
        let idx = if lane == FLEET_TRACK {
            self.n_lanes
        } else {
            lane as usize
        };
        self.rings[idx].push(FlightEvent {
            at_us,
            seq: self.seq,
            lane,
            kind,
        });
    }

    /// Mirrors freshly appended migration and elastic scale events into
    /// the rings. Called after every decision point that can grow the
    /// logs; cursors keep each entry recorded exactly once.
    pub(crate) fn sync_logs(
        &mut self,
        migrations: &[crate::cluster::Migration],
        scale_events: &[ScaleEvent],
    ) {
        if !self.enabled {
            return;
        }
        while self.mig_seen < migrations.len() {
            let m = migrations[self.mig_seen];
            self.mig_seen += 1;
            self.record(
                m.at_us,
                m.from as u32,
                EventKind::MigrationOut {
                    job: m.job as u32,
                    to: m.to as u32,
                },
            );
            self.record(
                m.at_us,
                m.to as u32,
                EventKind::MigrationIn {
                    job: m.job as u32,
                    from: m.from as u32,
                },
            );
        }
        while self.scale_seen < scale_events.len() {
            let ev = scale_events[self.scale_seen];
            self.scale_seen += 1;
            self.record(ev.at_us, ev.replica as u32, EventKind::Scale(ev.kind));
        }
    }

    /// Opens a tick sample row at `at_us`. Followed by one
    /// [`sample_lane`](Self::sample_lane) per lane (in lane order) and
    /// one [`sample_fleet`](Self::sample_fleet).
    #[inline]
    pub(crate) fn begin_tick(&mut self, at_us: f64) {
        if !self.enabled {
            return;
        }
        self.tick_us.push(at_us);
    }

    #[inline]
    pub(crate) fn sample_lane(
        &mut self,
        lane: usize,
        backlog: f64,
        window_p99_ratio: f64,
        inflight: f64,
        resident_be: f64,
    ) {
        if !self.enabled {
            return;
        }
        let base = lane * LANE_SERIES.len();
        self.series[base].values.push(backlog);
        self.series[base + 1].values.push(window_p99_ratio);
        self.series[base + 2].values.push(inflight);
        self.series[base + 3].values.push(resident_be);
    }

    #[inline]
    pub(crate) fn sample_fleet(
        &mut self,
        warm_depth: f64,
        retry_depth: f64,
        active: f64,
        provisioning: f64,
    ) {
        if !self.enabled {
            return;
        }
        let base = self.n_lanes * LANE_SERIES.len();
        self.series[base].values.push(warm_depth);
        self.series[base + 1].values.push(retry_depth);
        self.series[base + 2].values.push(active);
        self.series[base + 3].values.push(provisioning);
    }

    /// Samples one tier's gauges for the current tick row (called once
    /// per tier rank, in rank order, after [`sample_fleet`](Self::sample_fleet)).
    #[inline]
    pub(crate) fn sample_tier(&mut self, rank: usize, backlog: f64, goodput_w: f64, refused: f64) {
        if !self.enabled {
            return;
        }
        debug_assert!(rank < self.n_tiers, "tier rank out of range");
        let base = self.n_lanes * LANE_SERIES.len() + FLEET_SERIES.len() + rank * TIER_SERIES.len();
        self.series[base].values.push(backlog);
        self.series[base + 1].values.push(goodput_w);
        self.series[base + 2].values.push(refused);
    }

    /// Starts a wall-clock phase measurement (None when profiling is
    /// off — the disabled recorder never reads the clock).
    #[inline]
    pub(crate) fn clk(&self) -> Option<Instant> {
        if self.profile {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Elapsed nanoseconds since [`clk`](Self::clk), 0 when off.
    #[inline]
    pub(crate) fn lap(t0: Option<Instant>) -> u64 {
        t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
    }

    /// Merges the rings into the canonical stream and closes the run.
    /// Returns `None` for the disabled recorder.
    pub(crate) fn finish(mut self) -> Option<TelemetryResult> {
        if !self.enabled {
            return None;
        }
        let t0 = self.clk();
        let total: usize = self.rings.iter().map(|r| r.len()).sum();
        let dropped: u64 = self.rings.iter().map(|r| r.dropped()).sum();
        let mut events = Vec::with_capacity(total);
        for ring in &self.rings {
            events.extend(ring.iter_in_order().copied());
        }
        // `seq` is globally unique, so the order is total and the
        // unstable (allocation-free) sort is deterministic.
        events.sort_unstable_by(|a, b| {
            a.at_us
                .partial_cmp(&b.at_us)
                .expect("event timestamps are finite")
                .then(a.seq.cmp(&b.seq))
        });
        self.prof.merge_ns += Self::lap(t0);
        Some(TelemetryResult {
            events,
            dropped_events: dropped,
            ring_capacity: self.ring_capacity,
            tick_us: self.tick_us,
            series: self.series,
            profile: self.prof,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: f64, seq: u64) -> FlightEvent {
        FlightEvent {
            at_us,
            seq,
            lane: 0,
            kind: EventKind::Routed { task: 0 },
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let mut ring = EventRing::with_capacity(3);
        for i in 0..5 {
            ring.push(ev(i as f64, i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.iter_in_order().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest events are overwritten first");
    }

    #[test]
    fn ring_never_reallocates_past_creation() {
        let mut ring = EventRing::with_capacity(8);
        let ptr = ring.buf.as_ptr();
        for i in 0..100 {
            ring.push(ev(i as f64, i));
        }
        assert_eq!(ring.buf.as_ptr(), ptr, "ring storage must be stable");
        assert_eq!(ring.buf.capacity(), 8);
    }

    #[test]
    fn profiles_never_break_equality() {
        let a = ClockProfile {
            epochs: 10,
            advance_ns: 12345,
            ..Default::default()
        };
        let b = ClockProfile::default();
        assert_eq!(a, b, "wall-clock profiles are observational");
    }

    #[test]
    fn tier_series_layout_follows_fleet_block() {
        let cfg = TelemetryConfig {
            ring_capacity: 8,
            profile: false,
        };
        let mut rt = TelemetryRt::new(&cfg, 2, 2, 4);
        rt.begin_tick(1.0);
        for lane in 0..2 {
            rt.sample_lane(lane, 1.0, 0.5, 0.0, 0.0);
        }
        rt.sample_fleet(0.0, 0.0, 2.0, 0.0);
        rt.sample_tier(0, 3.0, 8.0, 0.0);
        rt.sample_tier(1, 5.0, 1.0, 2.0);
        let out = rt.finish().expect("enabled recorder yields a result");
        assert_eq!(
            out.series("tier_backlog", Some(1)).expect("rank 1").values,
            vec![5.0]
        );
        assert_eq!(
            out.series("tier_goodput_w", Some(0))
                .expect("rank 0")
                .values,
            vec![8.0]
        );
        assert_eq!(
            out.series("tier_refused", Some(1)).expect("rank 1").values,
            vec![2.0]
        );
        // The lane/fleet blocks are untouched by the tier extension.
        assert_eq!(
            out.series("backlog", Some(0)).expect("lane 0").values,
            vec![1.0]
        );
        assert_eq!(
            out.series("active_lanes", None).expect("fleet").values,
            vec![2.0]
        );
    }

    #[test]
    fn merged_stream_orders_by_time_then_seq() {
        let cfg = TelemetryConfig {
            ring_capacity: 16,
            profile: false,
        };
        let mut rt = TelemetryRt::new(&cfg, 2, 0, 4);
        rt.record(5.0, 1, EventKind::Routed { task: 0 });
        rt.record(1.0, 0, EventKind::Routed { task: 1 });
        rt.record(5.0, 0, EventKind::Routed { task: 2 });
        rt.record(5.0, FLEET_TRACK, EventKind::TimeoutDropped { task: 3 });
        let out = rt.finish().expect("enabled recorder yields a result");
        let order: Vec<(f64, u64)> = out.events.iter().map(|e| (e.at_us, e.seq)).collect();
        assert_eq!(order, vec![(1.0, 2), (5.0, 1), (5.0, 3), (5.0, 4)]);
        // Per-lane streams stay monotone in time.
        for lane in [0, 1, FLEET_TRACK] {
            let times: Vec<f64> = out.lane_events(lane).map(|e| e.at_us).collect();
            let mut sorted = times.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(times, sorted);
        }
    }
}
