//! End-to-end experiment runner (paper §9.2/§9.3, Fig. 17).
//!
//! Deploys the 8 LS models (A–H) plus one BE model (I–K) per scenario,
//! replays the Apollo-like trace against every evaluated system, and
//! aggregates p99 latency, SLO attainment, BE throughput and overall
//! throughput. BE tasks rotate round-robin across scenarios exactly as in
//! the paper ("BE tasks are co-located with LS services in a round-robin
//! manner"), so each system runs once per BE model and LS populations are
//! merged.

use crate::metrics::{ls_metrics, slo_for, LsMetrics, SystemResult};
use crate::trace::{per_service_traces, TraceConfig};
use baselines::{Mps, MultiStreaming, Orion, Tgs};
use dnn::zoo::{build, ModelId};
use dnn::CompileOptions;
use gpu_spec::{GpuModel, GpuSpec};
use rayon::prelude::*;
use sgdrc_core::serving::{run, ArrivalTrace, CompletedRequest, Policy, RunStats, Scenario, Task};
use sgdrc_core::{Sgdrc, SgdrcConfig};
use std::sync::{Arc, Mutex, RwLock};

/// The systems of Fig. 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    MultiStreaming,
    Tgs,
    Mps,
    Orion,
    SgdrcStatic,
    Sgdrc,
}

impl SystemKind {
    pub fn all() -> [SystemKind; 6] {
        [
            SystemKind::MultiStreaming,
            SystemKind::Tgs,
            SystemKind::Mps,
            SystemKind::Orion,
            SystemKind::SgdrcStatic,
            SystemKind::Sgdrc,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            SystemKind::MultiStreaming => "Multi-streaming",
            SystemKind::Tgs => "TGS",
            SystemKind::Mps => "MPS",
            SystemKind::Orion => "Orion",
            SystemKind::SgdrcStatic => "SGDRC (Static)",
            SystemKind::Sgdrc => "SGDRC",
        }
    }

    /// §9.3 note: "MPS is no longer supported on P40".
    pub fn supported_on(self, spec: &GpuSpec) -> bool {
        self != SystemKind::Mps || spec.mps_support
    }

    /// Instantiates the policy.
    pub fn make(self, spec: &GpuSpec) -> Box<dyn Policy> {
        match self {
            SystemKind::MultiStreaming => Box::new(MultiStreaming),
            SystemKind::Tgs => Box::new(Tgs::default()),
            SystemKind::Mps => Box::new(Mps::default()),
            SystemKind::Orion => Box::new(Orion::default()),
            SystemKind::SgdrcStatic => Box::new(Sgdrc::new(
                spec,
                SgdrcConfig {
                    static_partition: true,
                    ..Default::default()
                },
            )),
            SystemKind::Sgdrc => Box::new(Sgdrc::new(spec, SgdrcConfig::default())),
        }
    }
}

/// Workload intensity (§9.2 testing scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// Apollo trace scaled to half its average rate.
    Light,
    /// The original trace.
    Heavy,
}

impl Load {
    pub fn scale(self) -> f64 {
        match self {
            Load::Light => 0.5,
            Load::Heavy => 1.0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Load::Light => "light",
            Load::Heavy => "heavy",
        }
    }
}

/// End-to-end experiment configuration.
#[derive(Debug, Clone)]
pub struct EndToEndConfig {
    pub gpu: GpuModel,
    pub load: Load,
    pub horizon_us: f64,
    pub seed: u64,
    /// LS instances per model (§9.2: 4).
    pub ls_instances: usize,
    /// Policy tuning for SGDRC runs.
    pub sgdrc: SgdrcConfig,
    /// Per-service arrival shape before the load scaling — the Apollo
    /// profile by default; trace-shape sensitivity studies swap in other
    /// burst/diurnal parameters.
    pub trace: TraceConfig,
}

impl EndToEndConfig {
    pub fn new(gpu: GpuModel, load: Load) -> Self {
        Self {
            gpu,
            load,
            horizon_us: 8e6,
            seed: 0xA110C,
            ls_instances: 4,
            sgdrc: SgdrcConfig::default(),
            trace: TraceConfig::apollo_like(),
        }
    }
}

/// Compiled-and-profiled model sets for one GPU (reused across systems).
///
/// Task sets live behind `Arc`s so scenario construction shares them by
/// pointer bump; [`Deployment::cached`] additionally memoizes the whole
/// (compile + profile) build per (GPU, compile options).
pub struct Deployment {
    pub spec: GpuSpec,
    pub ls_tasks: Arc<[Task]>,
    pub be_tasks: Arc<[Task]>,
    /// One-element task slices, one per BE model, so building the i-th
    /// BE co-location scenario is an `Arc` bump rather than a deep copy
    /// of the compiled model, profile and kernel list.
    be_singletons: Vec<Arc<[Task]>>,
}

impl Deployment {
    pub fn new(gpu: GpuModel) -> Self {
        Self::with_options(gpu, CompileOptions::default())
    }

    pub fn with_options(gpu: GpuModel, opts: CompileOptions) -> Self {
        let spec = gpu.spec();
        let ls_tasks: Arc<[Task]> = ModelId::ls_models()
            .iter()
            .map(|&id| Task::new(dnn::compile(build(id), &spec, opts), &spec))
            .collect();
        let be_tasks: Arc<[Task]> = ModelId::be_models()
            .iter()
            .map(|&id| Task::new(dnn::compile(build(id), &spec, opts), &spec))
            .collect();
        let be_singletons = be_tasks
            .iter()
            .map(|t| Arc::from(vec![t.clone()]))
            .collect();
        Self {
            spec,
            ls_tasks,
            be_tasks,
            be_singletons,
        }
    }

    /// The single-task BE set for the i-th co-location scenario.
    pub fn be_singleton(&self, i: usize) -> Arc<[Task]> {
        Arc::clone(&self.be_singletons[i])
    }

    /// Memoized [`Deployment::new`]: compiling and profiling the 11-model
    /// zoo dominates short sweeps, and every `run_cell` caller and bench
    /// binary needs the same deployment — hits are `Arc` bumps.
    pub fn cached(gpu: GpuModel) -> Arc<Deployment> {
        Self::cached_with_options(gpu, CompileOptions::default())
    }

    /// [`Deployment::cached`] keyed by (GPU, compile options). The hit
    /// path takes the memo's **read** lock only: parallel fleets ask for
    /// the same handful of deployments from every worker at once, and
    /// readers must not serialize behind each other (they did when the
    /// memo was a `Mutex`).
    pub fn cached_with_options(gpu: GpuModel, opts: CompileOptions) -> Arc<Deployment> {
        let key = cache_key(gpu, opts);
        if let Some((_, dep)) = deployment_cache()
            .read()
            .expect("deployment cache")
            .iter()
            .find(|(k, _)| *k == key)
        {
            return Arc::clone(dep);
        }
        // Build outside any lock so concurrent callers wanting *other*
        // keys aren't serialized behind a multi-second compile. Two racing
        // builders of the same key are harmless: the loser adopts the
        // winner's entry. Every build is tallied (before the re-check, so
        // race losers count too) — the counter tracks work actually done,
        // independent of the cache's own lookup logic.
        count_build(key);
        let built = Arc::new(Self::with_options(gpu, opts));
        let mut cache = deployment_cache().write().expect("deployment cache");
        if let Some((_, dep)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(dep);
        }
        cache.push((key, Arc::clone(&built)));
        built
    }

    /// How many compile+profile builds [`Deployment::cached_with_options`]
    /// has actually performed for this key (0 = never requested). A cache
    /// that works stays at 1 no matter how many sweeps request the key —
    /// which is what the cache tests assert, rather than racy wall-clock
    /// comparisons. (Benign construction races can push it above 1; a
    /// *hit* never increments it.)
    pub fn cached_build_count(gpu: GpuModel, opts: CompileOptions) -> u64 {
        let key = cache_key(gpu, opts);
        build_counters()
            .lock()
            .expect("deployment build counters")
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, builds)| *builds)
    }
}

type CacheKey = (GpuModel, bool, bool, bool);

fn cache_key(gpu: GpuModel, opts: CompileOptions) -> CacheKey {
    (gpu, opts.fuse, opts.persistent_threads, opts.coloring)
}

/// The (GPU, compile options) → deployment memo. An `RwLock` so the
/// steady-state lookup (every replica of every fleet run) is a shared
/// read; the write lock is only ever held for the O(keys) insert scan,
/// never across a build.
fn deployment_cache() -> &'static RwLock<Vec<(CacheKey, Arc<Deployment>)>> {
    static CACHE: RwLock<Vec<(CacheKey, Arc<Deployment>)>> = RwLock::new(Vec::new());
    &CACHE
}

/// Per-key tally of builds performed through the memoized entry point.
/// Kept separate from the cache so a broken cache lookup cannot also
/// break the accounting that would expose it.
fn build_counters() -> &'static Mutex<Vec<(CacheKey, u64)>> {
    static COUNTERS: Mutex<Vec<(CacheKey, u64)>> = Mutex::new(Vec::new());
    &COUNTERS
}

fn count_build(key: CacheKey) {
    let mut counters = build_counters().lock().expect("deployment build counters");
    match counters.iter_mut().find(|(k, _)| *k == key) {
        Some((_, n)) => *n += 1,
        None => counters.push((key, 1)),
    }
}

/// The shared arrival trace for one (GPU, load) cell: generated once and
/// handed to every (system × BE co-location) scenario by `Arc`.
pub fn cell_trace(dep: &Deployment, cfg: &EndToEndConfig) -> Arc<ArrivalTrace> {
    let trace_cfg = cfg.trace.scaled(cfg.load.scale());
    Arc::new(ArrivalTrace::new(per_service_traces(
        &trace_cfg,
        dep.ls_tasks.len(),
        cfg.horizon_us,
        cfg.seed,
    )))
}

/// Runs one system across the three BE-model scenarios and aggregates.
pub fn run_system(dep: &Deployment, cfg: &EndToEndConfig, system: SystemKind) -> SystemResult {
    run_system_with_trace(dep, cfg, system, &cell_trace(dep, cfg))
}

/// [`run_system`] with the arrival trace supplied by the caller, so a
/// whole cell (every system) replays one shared trace instead of
/// regenerating and copying it per system.
pub fn run_system_with_trace(
    dep: &Deployment,
    cfg: &EndToEndConfig,
    system: SystemKind,
    trace: &Arc<ArrivalTrace>,
) -> SystemResult {
    let stats = run_system_scenario_stats(dep, cfg, system, trace);
    system_result_from_stats(dep, cfg, system, &stats)
}

/// The raw per-scenario statistics behind [`run_system_with_trace`]: one
/// [`RunStats`] per BE co-location, in BE-model order. Exposed so the
/// cluster's 1-replica equivalence test can compare bit-for-bit against
/// the exact populations the Fig. 17 aggregation consumes.
pub fn run_system_scenario_stats(
    dep: &Deployment,
    cfg: &EndToEndConfig,
    system: SystemKind,
    trace: &Arc<ArrivalTrace>,
) -> Vec<RunStats> {
    // The BE co-location scenarios are independent runs — sweep them in
    // parallel (each is a multi-second simulation; `run_cell` additionally
    // parallelizes over systems). Scenario construction is pointer bumps:
    // the task sets and the trace are shared, never cloned.
    (0..dep.be_tasks.len())
        .into_par_iter()
        .map(|i| {
            let scenario = Scenario {
                spec: dep.spec.clone(),
                ls: Arc::clone(&dep.ls_tasks),
                be: dep.be_singleton(i),
                ls_instances: cfg.ls_instances,
                arrivals: Arc::clone(trace),
                horizon_us: cfg.horizon_us,
            };
            let mut policy = match system {
                SystemKind::Sgdrc => {
                    Box::new(Sgdrc::new(&dep.spec, cfg.sgdrc.clone())) as Box<dyn Policy>
                }
                other => other.make(&dep.spec),
            };
            run(policy.as_mut(), &scenario)
        })
        .collect()
}

/// Aggregates per-BE-scenario statistics into the Fig. 17
/// [`SystemResult`] (merged LS populations, per-BE-model throughput).
pub fn system_result_from_stats(
    dep: &Deployment,
    cfg: &EndToEndConfig,
    system: SystemKind,
    scenario_stats: &[RunStats],
) -> SystemResult {
    // §9.2's SLO multiplier: 8 LS services + 1 BE task on the GPU.
    let n_services = dep.ls_tasks.len() + 1;
    let mut merged: Vec<Vec<CompletedRequest>> = vec![Vec::new(); dep.ls_tasks.len()];
    let mut be_throughput = Vec::new();
    for (be_task, stats) in dep.be_tasks.iter().zip(scenario_stats) {
        for (t, reqs) in stats.ls_completed.iter().enumerate() {
            merged[t].extend_from_slice(reqs);
        }
        let samples = stats.be_completed[0] * be_task.model.batch as u64;
        be_throughput.push((
            be_task.model.id.name().to_string(),
            samples as f64 / (cfg.horizon_us / 1e6),
        ));
    }

    let ls: Vec<LsMetrics> = dep
        .ls_tasks
        .iter()
        .zip(&merged)
        .map(|(task, reqs)| {
            let slo = slo_for(task.profile.isolated_e2e_us, n_services);
            // Latency population spans the 3 BE scenarios; the effective
            // horizon for goodput is 3× the per-run horizon.
            ls_metrics(
                task.model.id.name(),
                reqs,
                slo,
                cfg.horizon_us * dep.be_tasks.len() as f64,
            )
        })
        .collect();

    let goodput: f64 = ls.iter().map(|m| m.goodput_hz).sum();
    let be_total: f64 =
        be_throughput.iter().map(|(_, t)| t).sum::<f64>() / dep.be_tasks.len() as f64;
    SystemResult {
        system: system.name().to_string(),
        gpu: dep.spec.name.to_string(),
        load: cfg.load.name().to_string(),
        overall_throughput_hz: goodput + be_total,
        ls,
        be_throughput_hz: be_throughput,
    }
}

/// Runs every supported system for one (GPU, load) cell of Fig. 17.
pub fn run_cell(dep: &Deployment, cfg: &EndToEndConfig) -> Vec<SystemResult> {
    let trace = cell_trace(dep, cfg);
    SystemKind::all()
        .into_par_iter()
        .filter(|s| s.supported_on(&dep.spec))
        .map(|s| run_system_with_trace(dep, cfg, s, &trace))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One smallish end-to-end cell; asserts the paper's headline ordering.
    /// This is the heaviest test in the workspace (a few seconds).
    #[test]
    fn fig17_shape_on_a2000_heavy() {
        let dep = Deployment::new(GpuModel::RtxA2000);
        let mut cfg = EndToEndConfig::new(GpuModel::RtxA2000, Load::Heavy);
        cfg.horizon_us = if cfg!(debug_assertions) { 1.2e6 } else { 2.5e6 };
        let results = run_cell(&dep, &cfg);
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.system == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let sgdrc = get("SGDRC");
        let orion = get("Orion");
        let ms = get("Multi-streaming");
        let tgs = get("TGS");

        // Headline 1: SGDRC has the highest SLO attainment.
        for r in &results {
            assert!(
                sgdrc.mean_slo_attainment() >= r.mean_slo_attainment() - 0.02,
                "SGDRC ({:.3}) vs {} ({:.3})",
                sgdrc.mean_slo_attainment(),
                r.system,
                r.mean_slo_attainment()
            );
        }
        assert!(
            sgdrc.mean_slo_attainment() > 0.90,
            "SGDRC attainment {:.3}",
            sgdrc.mean_slo_attainment()
        );
        // Headline 2: SGDRC beats Orion on BE throughput.
        assert!(
            sgdrc.total_be_throughput() > orion.total_be_throughput(),
            "SGDRC {} vs Orion {}",
            sgdrc.total_be_throughput(),
            orion.total_be_throughput()
        );
        // Multi-streaming sacrifices SLO attainment (Fig. 17b).
        assert!(ms.mean_slo_attainment() < sgdrc.mean_slo_attainment());
        // TGS has the lowest overall throughput (§9.3).
        for r in &results {
            assert!(
                tgs.overall_throughput_hz <= r.overall_throughput_hz + 1.0,
                "TGS ({:.1}) vs {} ({:.1})",
                tgs.overall_throughput_hz,
                r.system,
                r.overall_throughput_hz
            );
        }
    }
}
