//! Evaluation metrics (paper §9.2).
//!
//! * **p99 latency** including queueing delay;
//! * **SLO attainment rate**: the SLO of an LS service is
//!   `n × p99-isolated-runtime`, with `n` the number of DNN services
//!   concurrently running on the GPU (following refs [6, 8]);
//! * **throughput** (samples/s) and **goodput** (SLO-meeting LS
//!   requests/s).

use sgdrc_core::serving::CompletedRequest;

/// Percentile of a latency population (p in 0..=100).
pub fn percentile(latencies: &[f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return f64::NAN;
    }
    let mut v = latencies.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((v.len() as f64 * p / 100.0).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

/// Documented relative accuracy of [`LatencyHistogram`] percentiles:
/// every reported percentile is within ±0.5% of the exact
/// sorted-population percentile (same rank convention as
/// [`percentile`]), for values inside the histogram's range.
pub const HIST_REL_ERROR: f64 = 0.005;

/// Geometric bin-width ratio: `(1 + HIST_REL_ERROR)²`, so a bin's
/// geometric midpoint is within `×/÷ (1 + HIST_REL_ERROR)` of every
/// value in the bin.
pub const HIST_GAMMA: f64 = (1.0 + HIST_REL_ERROR) * (1.0 + HIST_REL_ERROR);

/// Lower edge of the first bin (µs). Latencies below it clamp into bin 0
/// (sub-0.1µs end-to-end latencies do not occur in this simulator).
pub const HIST_MIN_US: f64 = 0.1;

/// Number of log-spaced bins. Covers `HIST_MIN_US × HIST_GAMMA^2560`
/// ≈ 1.2e10 µs (~3.4 hours) — far beyond any simulated horizon; larger
/// values clamp into the last bin.
pub const HIST_BINS: usize = 2560;

/// A mergeable fixed-bin log-histogram sketch of a latency population.
///
/// Percentile queries over a sweep's latency populations are the
/// collect-then-sort hot spot once cells get short: every cell pays an
/// `O(n log n)` sort per LS service, and cross-cell aggregation has to
/// re-sort the union. This sketch records each latency into one of
/// [`HIST_BINS`] geometrically spaced bins (`O(1)`, allocation-free in
/// steady state), merges across cells by element-wise addition (never
/// re-sorting), and answers any percentile within a documented
/// ±[`HIST_REL_ERROR`] relative error of the exact sorted answer —
/// `count`, `sum`, `min` and `max` stay exact.
///
/// A touched-bin list keeps the sparse operations proportional to the
/// number of *occupied* bins rather than [`HIST_BINS`]: short cells
/// touch tens of bins, so per-cell `reset`/`merge`/`==` cost tens of
/// reads and writes, not a 20 KiB memset or full-array walk. The bin
/// array itself is allocated lazily on the first `record`/`merge`, so a
/// fleet of mostly-idle sketches (512 replicas × per-task windows)
/// costs O(occupied sketches), not 20 KiB per sketch up front.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Lazily allocated to [`HIST_BINS`]; empty until first use.
    counts: Vec<u64>,
    /// Indices of non-zero bins, in first-touch order.
    touched: Vec<u32>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Two sketches are equal when they describe the same population:
/// identical bin contents and exact aggregates. The internal touch
/// order (a record/merge history artefact) does not participate.
///
/// The bin comparison is sparse — O(occupied bins), not [`HIST_BINS`]:
/// the touched list is exactly the set of non-zero bins (bins enter it
/// on the 0→non-zero transition and leave only on `reset`), so equal
/// list lengths plus every self-touched bin matching in `other` implies
/// the non-zero bin *sets* coincide, and with them every bin.
impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.touched.len() == other.touched.len()
            && self.touched.iter().all(|&i| {
                let i = i as usize;
                self.counts[i] == other.counts.get(i).copied().unwrap_or(0)
            })
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            touched: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Allocates the bin array on first use; a no-op once allocated
    /// (`reset` keeps the storage, so warmed sketches never re-pay it).
    #[inline]
    fn ensure_bins(&mut self) {
        if self.counts.is_empty() {
            self.counts.resize(HIST_BINS, 0);
        }
    }

    /// Empties the sketch, retaining its storage. Cost is proportional
    /// to the number of occupied bins.
    pub fn reset(&mut self) {
        for &i in &self.touched {
            self.counts[i as usize] = 0;
        }
        self.touched.clear();
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Bin index of a value (clamped into the covered range).
    #[inline]
    fn bin_of(v: f64) -> usize {
        if v <= HIST_MIN_US {
            return 0;
        }
        let idx = ((v / HIST_MIN_US).ln() / HIST_GAMMA.ln()) as usize;
        idx.min(HIST_BINS - 1)
    }

    /// Records one latency sample (µs). O(1); allocates only when a
    /// never-before-touched bin first appears.
    #[inline]
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "latency must be finite, got {v}");
        self.ensure_bins();
        let bin = Self::bin_of(v);
        if self.counts[bin] == 0 {
            self.touched.push(bin as u32);
        }
        self.counts[bin] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another sketch into this one — the cross-cell aggregation
    /// path. Cost is proportional to the other sketch's occupied bins;
    /// no re-sorting.
    ///
    /// An empty `other` — e.g. the never-touched sketch of a replica that
    /// crashed before serving anything — is a guaranteed no-op: its
    /// `min`/`max` sentinels (`+∞`/`−∞`) must not leak into this sketch's
    /// exact extremes, so the merge returns before touching them.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.ensure_bins();
        for &i in &other.touched {
            let i = i as usize;
            if self.counts[i] == 0 {
                self.touched.push(i as u32);
            }
            self.counts[i] += other.counts[i];
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values (µs).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.sum / self.count as f64
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Percentile (p in 0..=100) with the same rank convention as
    /// [`percentile`]: the value whose sorted rank is
    /// `clamp(ceil(count × p / 100), 1, count)`. The answer is the
    /// geometric midpoint of the rank's bin, clamped into the exact
    /// observed `[min, max]`, and therefore within ±[`HIST_REL_ERROR`]
    /// relative of the exact sorted-population percentile.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((self.count as f64 * p / 100.0).ceil() as u64).clamp(1, self.count);
        // Every occupied bin lies in [bin_of(min), bin_of(max)] — walk
        // only that window, not all HIST_BINS.
        let lo = Self::bin_of(self.min);
        let hi = Self::bin_of(self.max);
        let mut seen = 0u64;
        for (i, &c) in self.counts[lo..=hi].iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of the bin: HIST_MIN_US × γ^(i+0.5).
                let mid = HIST_MIN_US * HIST_GAMMA.powf((lo + i) as f64 + 0.5);
                // Clamping to the exact extremes never increases the
                // error (the true value lies in [min, max]).
                return mid.clamp(self.min, self.max);
            }
        }
        unreachable!("rank {rank} ≤ count {} must be reached", self.count)
    }
}

/// Aggregated metrics of one LS service in one run.
#[derive(Debug, Clone)]
pub struct LsMetrics {
    pub model: String,
    pub requests: usize,
    pub p99_latency_us: f64,
    pub mean_latency_us: f64,
    pub slo_us: f64,
    pub slo_attainment: f64,
    /// SLO-meeting completions per second.
    pub goodput_hz: f64,
}

/// Computes LS metrics from completed requests.
pub fn ls_metrics(
    model: &str,
    completed: &[CompletedRequest],
    slo_us: f64,
    horizon_us: f64,
) -> LsMetrics {
    let lat: Vec<f64> = completed.iter().map(|r| r.latency_us()).collect();
    let met = lat.iter().filter(|&&l| l <= slo_us).count();
    LsMetrics {
        model: model.to_string(),
        requests: completed.len(),
        p99_latency_us: percentile(&lat, 99.0),
        mean_latency_us: lat.iter().sum::<f64>() / lat.len().max(1) as f64,
        slo_us,
        slo_attainment: met as f64 / lat.len().max(1) as f64,
        goodput_hz: met as f64 / (horizon_us / 1e6),
    }
}

/// §9.2's SLO: `n ×` the model's isolated p99 runtime.
pub fn slo_for(isolated_p99_us: f64, services_on_gpu: usize) -> f64 {
    isolated_p99_us * services_on_gpu as f64
}

/// Aggregated result of a full system run (one GPU, one load, one system).
#[derive(Debug, Clone)]
pub struct SystemResult {
    pub system: String,
    pub gpu: String,
    pub load: String,
    pub ls: Vec<LsMetrics>,
    /// Samples/s per BE model (batch × inferences / horizon).
    pub be_throughput_hz: Vec<(String, f64)>,
    /// LS goodput + BE throughput (paper's "overall throughput").
    pub overall_throughput_hz: f64,
}

impl SystemResult {
    /// Mean SLO attainment over LS services.
    pub fn mean_slo_attainment(&self) -> f64 {
        if self.ls.is_empty() {
            return f64::NAN;
        }
        self.ls.iter().map(|m| m.slo_attainment).sum::<f64>() / self.ls.len() as f64
    }

    /// Total BE samples/s.
    pub fn total_be_throughput(&self) -> f64 {
        self.be_throughput_hz.iter().map(|(_, t)| t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, done: f64) -> CompletedRequest {
        CompletedRequest {
            arrival_us: arrival,
            done_us: done,
        }
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!(percentile(&[], 99.0).is_nan());
    }

    #[test]
    fn percentile_handles_single_sample() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn ls_metrics_attainment() {
        let completed: Vec<CompletedRequest> = (0..100)
            .map(|i| req(0.0, if i < 90 { 100.0 } else { 1000.0 }))
            .collect();
        let m = ls_metrics("test", &completed, 500.0, 1e6);
        assert!((m.slo_attainment - 0.9).abs() < 1e-9);
        assert_eq!(m.requests, 100);
        assert!((m.goodput_hz - 90.0).abs() < 1e-9);
        assert_eq!(m.p99_latency_us, 1000.0);
    }

    #[test]
    fn slo_scales_with_colocation_degree() {
        assert_eq!(slo_for(1000.0, 9), 9000.0);
    }

    #[test]
    fn histogram_percentiles_track_exact_sort() {
        let v: Vec<f64> = (1..=10_000).map(|i| i as f64 * 3.7).collect();
        let mut h = LatencyHistogram::new();
        for &x in &v {
            h.record(x);
        }
        for p in [0.0, 1.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let exact = percentile(&v, p);
            let sketch = h.percentile(p);
            assert!(
                (sketch - exact).abs() <= exact * HIST_REL_ERROR,
                "p{p}: sketch {sketch} vs exact {exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 3.7);
        assert_eq!(h.max(), 37_000.0);
        assert!((h.mean() - v.iter().sum::<f64>() / 1e4).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_equals_recording_the_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for i in 0..500 {
            let x = 10.0 + i as f64 * 13.3;
            a.record(x);
            union.record(x);
        }
        for i in 0..300 {
            let x = 5_000.0 + i as f64 * 101.0;
            b.record(x);
            union.record(x);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    /// Satellite regression: a replica that dies before serving anything
    /// hands the fleet aggregation a never-touched sketch whose min/max
    /// are still the `±∞` sentinels. Merging it — in either direction —
    /// must not corrupt the exact extremes or the percentile window.
    #[test]
    fn merging_a_dead_replica_sketch_is_a_no_op() {
        let mut fleet = LatencyHistogram::new();
        for i in 0..100 {
            fleet.record(50.0 + i as f64 * 7.0);
        }
        let before = fleet.clone();
        let dead = LatencyHistogram::new();
        fleet.merge(&dead);
        assert_eq!(fleet, before, "empty merge must be a no-op");
        assert_eq!(fleet.min(), 50.0);
        assert_eq!(fleet.max(), 50.0 + 99.0 * 7.0);
        assert!(fleet.percentile(99.0).is_finite());

        // The other direction: folding live sketches into a fresh fleet
        // accumulator that starts out never-touched (the aggregation
        // loop's first iteration when replica 0 is the dead one).
        let mut agg = LatencyHistogram::new();
        agg.merge(&dead);
        assert!(agg.is_empty());
        assert!(agg.percentile(50.0).is_nan());
        agg.merge(&before);
        assert_eq!(agg, before);

        // All-dead fleet: the merged sketch stays empty and NaN-safe.
        let mut all_dead = LatencyHistogram::new();
        all_dead.merge(&LatencyHistogram::new());
        all_dead.merge(&LatencyHistogram::new());
        assert!(all_dead.is_empty());
        assert!(all_dead.percentile(99.0).is_nan());
    }

    /// The sparse `==` walks only touched bins. Two sketches with
    /// identical exact aggregates but different bin contents must still
    /// compare unequal (in both directions — the walk is over `self`'s
    /// touched list), and lazily-unallocated sketches must behave like
    /// empty ones.
    #[test]
    fn sparse_eq_distinguishes_distributions_with_equal_aggregates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [100.0, 400.0, 500.0, 1000.0] {
            a.record(v);
        }
        for v in [100.0, 200.0, 700.0, 1000.0] {
            b.record(v);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_ne!(a, b);
        assert_ne!(b, a);

        // A never-recorded sketch (bins unallocated) equals an empty
        // reset one (bins allocated but all zero).
        let fresh = LatencyHistogram::new();
        let mut cleared = LatencyHistogram::new();
        cleared.record(42.0);
        cleared.reset();
        assert_eq!(fresh, cleared);
        assert_eq!(cleared, fresh);
    }

    #[test]
    fn histogram_empty_and_reset() {
        let mut h = LatencyHistogram::new();
        assert!(h.percentile(99.0).is_nan());
        assert!(h.is_empty());
        h.record(42.0);
        assert_eq!(h.count(), 1);
        // A single sample reports (clamped) exactly itself.
        assert_eq!(h.percentile(99.0), 42.0);
        h.reset();
        assert!(h.is_empty());
        assert!(h.percentile(50.0).is_nan());
    }

    #[test]
    fn histogram_clamps_out_of_range_values() {
        let mut h = LatencyHistogram::new();
        h.record(1e-6); // below the first bin edge
        h.record(1e12); // beyond the last bin edge
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1e-6);
        assert_eq!(h.max(), 1e12);
        // Percentiles stay inside the exact observed range.
        assert!(h.percentile(1.0) >= 1e-6);
        assert!(h.percentile(100.0) <= 1e12);
    }
}
