//! Evaluation metrics (paper §9.2).
//!
//! * **p99 latency** including queueing delay;
//! * **SLO attainment rate**: the SLO of an LS service is
//!   `n × p99-isolated-runtime`, with `n` the number of DNN services
//!   concurrently running on the GPU (following refs [6, 8]);
//! * **throughput** (samples/s) and **goodput** (SLO-meeting LS
//!   requests/s).

use sgdrc_core::serving::CompletedRequest;

/// Percentile of a latency population (p in 0..=100).
pub fn percentile(latencies: &[f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return f64::NAN;
    }
    let mut v = latencies.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((v.len() as f64 * p / 100.0).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

/// Aggregated metrics of one LS service in one run.
#[derive(Debug, Clone)]
pub struct LsMetrics {
    pub model: String,
    pub requests: usize,
    pub p99_latency_us: f64,
    pub mean_latency_us: f64,
    pub slo_us: f64,
    pub slo_attainment: f64,
    /// SLO-meeting completions per second.
    pub goodput_hz: f64,
}

/// Computes LS metrics from completed requests.
pub fn ls_metrics(
    model: &str,
    completed: &[CompletedRequest],
    slo_us: f64,
    horizon_us: f64,
) -> LsMetrics {
    let lat: Vec<f64> = completed.iter().map(|r| r.latency_us()).collect();
    let met = lat.iter().filter(|&&l| l <= slo_us).count();
    LsMetrics {
        model: model.to_string(),
        requests: completed.len(),
        p99_latency_us: percentile(&lat, 99.0),
        mean_latency_us: lat.iter().sum::<f64>() / lat.len().max(1) as f64,
        slo_us,
        slo_attainment: met as f64 / lat.len().max(1) as f64,
        goodput_hz: met as f64 / (horizon_us / 1e6),
    }
}

/// §9.2's SLO: `n ×` the model's isolated p99 runtime.
pub fn slo_for(isolated_p99_us: f64, services_on_gpu: usize) -> f64 {
    isolated_p99_us * services_on_gpu as f64
}

/// Aggregated result of a full system run (one GPU, one load, one system).
#[derive(Debug, Clone)]
pub struct SystemResult {
    pub system: String,
    pub gpu: String,
    pub load: String,
    pub ls: Vec<LsMetrics>,
    /// Samples/s per BE model (batch × inferences / horizon).
    pub be_throughput_hz: Vec<(String, f64)>,
    /// LS goodput + BE throughput (paper's "overall throughput").
    pub overall_throughput_hz: f64,
}

impl SystemResult {
    /// Mean SLO attainment over LS services.
    pub fn mean_slo_attainment(&self) -> f64 {
        if self.ls.is_empty() {
            return f64::NAN;
        }
        self.ls.iter().map(|m| m.slo_attainment).sum::<f64>() / self.ls.len() as f64
    }

    /// Total BE samples/s.
    pub fn total_be_throughput(&self) -> f64 {
        self.be_throughput_hz.iter().map(|(_, t)| t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, done: f64) -> CompletedRequest {
        CompletedRequest {
            arrival_us: arrival,
            done_us: done,
        }
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!(percentile(&[], 99.0).is_nan());
    }

    #[test]
    fn percentile_handles_single_sample() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn ls_metrics_attainment() {
        let completed: Vec<CompletedRequest> = (0..100)
            .map(|i| req(0.0, if i < 90 { 100.0 } else { 1000.0 }))
            .collect();
        let m = ls_metrics("test", &completed, 500.0, 1e6);
        assert!((m.slo_attainment - 0.9).abs() < 1e-9);
        assert_eq!(m.requests, 100);
        assert!((m.goodput_hz - 90.0).abs() < 1e-9);
        assert_eq!(m.p99_latency_us, 1000.0);
    }

    #[test]
    fn slo_scales_with_colocation_degree() {
        assert_eq!(slo_for(1000.0, 9), 9000.0);
    }
}
