//! Calendar queue over fleet lanes keyed by next-pending-event time.
//!
//! The fleet clock's epoch step needs "every lane whose next pending
//! event falls before instant `t`" — the busy set. A linear scan over
//! all lanes costs O(replicas) per epoch, which dominates once fleets
//! reach hundreds of replicas with sparse per-epoch activity. This
//! queue buckets lanes into a ring of time slots of fixed `width_us`
//! and sweeps only the buckets the clock actually crosses, so an epoch
//! pays O(touched lanes + crossed buckets) instead of O(replicas).
//!
//! Design notes, chosen for exact equivalence with the linear scan the
//! tests retain as the oracle:
//!
//! - **Eager removal.** `set` moves a lane between buckets immediately
//!   (no lazy tombstones), so every slot entry is live and a sweep
//!   never has to re-validate stale duplicates. `pos_of` gives O(1)
//!   swap-removal from a bucket.
//! - **Monotonic cursor.** `cursor_abs` is the absolute bucket index
//!   (bucket id, not ring slot) the sweep has reached. Keys in the past
//!   relative to the cursor are clamped into the cursor's bucket on
//!   insert, so a lane that became ready "behind" the clock is still
//!   found by the next sweep. The cluster clock only moves forward, so
//!   sweep thresholds are non-decreasing.
//! - **Ring revolutions.** The slot ring is fixed-size; bucket `b`
//!   lives at ring index `b % n_slots`. A full-bucket drain keeps
//!   entries whose `abs_of` belongs to a future revolution of the same
//!   ring slot.
//! - **Canonical emission order.** The collected busy set is sorted
//!   ascending by lane index before returning — identical to the order
//!   the linear-scan oracle produces — so parallel-epoch dispatch and
//!   the debug-assert comparison are both order-stable.

/// Sentinel in `pos_of` marking a lane as absent from the calendar.
const ABSENT: u32 = u32::MAX;

/// Incremental bucket queue mapping lane index -> next-event key (µs).
///
/// Lanes with no pending event (key = `f64::INFINITY`) are simply not
/// stored. All storage is reusable across runs via [`reset`]: slot
/// vectors keep their capacity, so a warmed calendar allocates nothing
/// in steady state.
///
/// [`reset`]: EventCalendar::reset
#[derive(Debug, Default)]
pub struct EventCalendar {
    width_us: f64,
    /// `1.0 / width_us`, so the hot bucket-id computation multiplies
    /// instead of divides. See [`abs_for`](Self::abs_for) for why the
    /// rounding difference cannot affect correctness.
    inv_width: f64,
    /// Ring of buckets; each holds the lanes currently keyed into it.
    slots: Vec<Vec<u32>>,
    /// Absolute bucket id each present lane is stored under.
    abs_of: Vec<u64>,
    /// Index of each lane within its bucket vec (`ABSENT` when not stored).
    pos_of: Vec<u32>,
    /// The lane's current key, for the per-entry test in the threshold bucket.
    key_of: Vec<f64>,
    /// Absolute bucket id the sweep has reached (never retreats).
    cursor_abs: u64,
    /// Number of lanes currently stored, so sweeps across long empty
    /// stretches can jump the cursor instead of visiting every bucket.
    stored: usize,
}

impl EventCalendar {
    /// Creates an empty calendar; call [`reset`](Self::reset) to size it.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)initializes for `n_lanes` lanes with `n_slots` ring buckets of
    /// `width_us` microseconds each, retaining prior heap capacity.
    pub fn reset(&mut self, n_lanes: usize, width_us: f64, n_slots: usize) {
        assert!(
            width_us.is_finite() && width_us > 0.0,
            "bucket width must be positive"
        );
        assert!(n_slots > 0, "calendar needs at least one slot");
        self.width_us = width_us;
        self.inv_width = width_us.recip();
        self.cursor_abs = 0;
        if self.slots.len() > n_slots {
            self.slots.truncate(n_slots);
        }
        for s in &mut self.slots {
            s.clear();
        }
        self.slots.resize_with(n_slots, Vec::new);
        self.abs_of.clear();
        self.abs_of.resize(n_lanes, 0);
        self.pos_of.clear();
        self.pos_of.resize(n_lanes, ABSENT);
        self.key_of.clear();
        self.key_of.resize(n_lanes, f64::INFINITY);
        self.stored = 0;
    }

    /// Number of lanes currently stored (present keys).
    pub fn len(&self) -> usize {
        self.stored
    }

    /// True when no lane has a finite key stored.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// The key currently stored for `lane` (`INFINITY` when absent).
    pub fn key_of(&self, lane: usize) -> f64 {
        if self.pos_of[lane] == ABSENT {
            f64::INFINITY
        } else {
            self.key_of[lane]
        }
    }

    /// Bucket id for `key`. Uses the precomputed reciprocal: `k *
    /// (1/w)` can differ from `k / w` by an ulp, landing a key one
    /// bucket off its "true" quotient — which is harmless, because
    /// correctness only needs the bucket map to be *monotone
    /// non-decreasing* in the key (`f(k) < f(t)` ⇒ `k < t`, so
    /// earlier-bucket entries during a sweep are genuinely due), and
    /// `x * c` with `c > 0` rounds monotonically. Same-bucket entries
    /// are always filtered by the per-entry key test in the threshold
    /// bucket, never by bucket id.
    fn abs_for(&self, key: f64) -> u64 {
        debug_assert!(key.is_finite() && key >= 0.0);
        (key * self.inv_width) as u64
    }

    /// Sets `lane`'s key, moving it between buckets as needed. A
    /// non-finite key removes the lane (idle / dead — nothing pending).
    /// Keys behind the sweep cursor are clamped into the cursor's
    /// bucket so the next sweep still finds them.
    pub fn set(&mut self, lane: u32, key: f64) {
        let l = lane as usize;
        if !key.is_finite() {
            self.remove(lane);
            return;
        }
        let abs = self.abs_for(key).max(self.cursor_abs);
        self.key_of[l] = key;
        if self.pos_of[l] != ABSENT {
            if self.abs_of[l] == abs {
                return; // same bucket; only the key needed refreshing
            }
            self.remove(lane);
            self.key_of[l] = key; // remove() leaves key_of untouched, keep it
        }
        self.abs_of[l] = abs;
        let si = (abs % self.slots.len() as u64) as usize;
        self.pos_of[l] = self.slots[si].len() as u32;
        self.slots[si].push(lane);
        self.stored += 1;
    }

    /// Removes `lane` from its bucket (no-op when absent).
    pub fn remove(&mut self, lane: u32) {
        let l = lane as usize;
        let pos = self.pos_of[l];
        if pos == ABSENT {
            return;
        }
        let si = (self.abs_of[l] % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[si];
        let i = pos as usize;
        slot.swap_remove(i);
        if i < slot.len() {
            self.pos_of[slot[i] as usize] = pos;
        }
        self.pos_of[l] = ABSENT;
        self.stored -= 1;
    }

    /// Collects every stored lane whose key is due at threshold `t` —
    /// `key < t` when `strict`, `key <= t` otherwise (the final-drain
    /// form) — removing them from the calendar and appending them to
    /// `out` in ascending lane order. Advances the sweep cursor to
    /// `t`'s bucket; thresholds must be non-decreasing across calls.
    pub fn collect_due(&mut self, t: f64, strict: bool, out: &mut Vec<u32>) {
        let start = out.len();
        if !t.is_finite() {
            // Infinite threshold: everything stored is due.
            for slot in &mut self.slots {
                for &lane in slot.iter() {
                    self.pos_of[lane as usize] = ABSENT;
                    out.push(lane);
                }
                slot.clear();
            }
            self.stored = 0;
            out[start..].sort_unstable();
            return;
        }
        let target_abs = self.abs_for(t.max(0.0)).max(self.cursor_abs);
        let n_slots = self.slots.len() as u64;
        // Buckets strictly below the threshold's bucket hold only keys
        // < t (clamped keys are smaller than their bucket start, never
        // larger): drain them whole, keeping future-revolution entries.
        while self.cursor_abs < target_abs {
            if self.stored == 0 {
                self.cursor_abs = target_abs;
                break;
            }
            let b = self.cursor_abs;
            let si = (b % n_slots) as usize;
            let slot = &mut self.slots[si];
            let mut i = 0;
            while i < slot.len() {
                let lane = slot[i];
                if self.abs_of[lane as usize] == b {
                    out.push(lane);
                    slot.swap_remove(i);
                    self.pos_of[lane as usize] = ABSENT;
                    self.stored -= 1;
                    if i < slot.len() {
                        self.pos_of[slot[i] as usize] = i as u32;
                    }
                } else {
                    i += 1;
                }
            }
            self.cursor_abs += 1;
        }
        // The threshold's own bucket mixes due and not-yet-due keys:
        // test each entry individually and leave the rest in place.
        let si = (target_abs % n_slots) as usize;
        let slot = &mut self.slots[si];
        let mut i = 0;
        while i < slot.len() {
            let lane = slot[i];
            let l = lane as usize;
            let due = self.abs_of[l] == target_abs
                && if strict {
                    self.key_of[l] < t
                } else {
                    self.key_of[l] <= t
                };
            if due {
                out.push(lane);
                slot.swap_remove(i);
                self.pos_of[l] = ABSENT;
                self.stored -= 1;
                if i < slot.len() {
                    self.pos_of[slot[i] as usize] = i as u32;
                }
            } else {
                i += 1;
            }
        }
        out[start..].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cal: &mut EventCalendar, t: f64, strict: bool) -> Vec<u32> {
        let mut out = Vec::new();
        cal.collect_due(t, strict, &mut out);
        out
    }

    #[test]
    fn basic_set_collect() {
        let mut cal = EventCalendar::new();
        cal.reset(4, 10.0, 8);
        cal.set(0, 5.0);
        cal.set(1, 25.0);
        cal.set(2, 14.9);
        assert_eq!(cal.len(), 3);
        assert_eq!(collect(&mut cal, 15.0, true), vec![0, 2]);
        assert_eq!(collect(&mut cal, 25.0, true), vec![]);
        assert_eq!(collect(&mut cal, 25.0, false), vec![1]);
        assert!(cal.is_empty());
    }

    #[test]
    fn infinity_removes_and_past_keys_are_found() {
        let mut cal = EventCalendar::new();
        cal.reset(3, 10.0, 4);
        cal.set(0, 7.0);
        cal.set(0, f64::INFINITY);
        assert!(cal.is_empty());
        assert_eq!(collect(&mut cal, 100.0, true), vec![]);
        // cursor now at bucket 10; a key far in the past clamps there
        cal.set(1, 3.0);
        assert_eq!(cal.key_of(1), 3.0);
        assert_eq!(collect(&mut cal, 100.5, true), vec![1]);
    }

    #[test]
    fn rekey_within_and_across_buckets() {
        let mut cal = EventCalendar::new();
        cal.reset(2, 10.0, 4);
        cal.set(0, 12.0);
        cal.set(0, 18.0); // same bucket, key must still update
        assert_eq!(collect(&mut cal, 15.0, true), vec![]);
        assert_eq!(collect(&mut cal, 18.1, true), vec![0]);
        cal.set(1, 21.0);
        cal.set(1, 55.0); // cross-bucket move
        assert_eq!(collect(&mut cal, 30.0, true), vec![]);
        assert_eq!(collect(&mut cal, 56.0, true), vec![1]);
    }

    #[test]
    fn ring_revolutions_do_not_leak_future_entries() {
        let mut cal = EventCalendar::new();
        cal.reset(3, 1.0, 2); // tiny ring: bucket b at slot b % 2
        cal.set(0, 0.5); // bucket 0, slot 0
        cal.set(1, 2.5); // bucket 2, slot 0 (same ring slot, later revolution)
        cal.set(2, 1.5); // bucket 1, slot 1
        assert_eq!(collect(&mut cal, 1.0, true), vec![0]);
        assert_eq!(collect(&mut cal, 2.0, true), vec![2]);
        assert_eq!(collect(&mut cal, 3.0, true), vec![1]);
    }

    #[test]
    fn final_drain_is_inclusive() {
        let mut cal = EventCalendar::new();
        cal.reset(2, 10.0, 4);
        cal.set(0, 30.0);
        cal.set(1, 29.999);
        assert_eq!(collect(&mut cal, 30.0, true), vec![1]);
        assert_eq!(collect(&mut cal, 30.0, false), vec![0]);
    }
}
