//! Multi-GPU fleet simulator: SLO-aware request routing + dynamic BE
//! placement across spatially-shared replicas.
//!
//! The paper's evaluation stops at one GPU, but its deployment target is
//! cloud inference serving — fleets of GPUs, each spatially shared
//! between LS services and BE jobs, behind a request router. This module
//! builds that layer on the per-GPU machinery the workspace already has:
//!
//! * every **replica** is one [`ReplicaSim`] — the exact fast serving
//!   loop (engine + policy + queues), run through a reusable
//!   [`SimContext`] so repeated fleet runs are allocation-free in steady
//!   state. A 1-replica fleet is *bit-identical* to a single-GPU
//!   [`sgdrc_core::serving::run`] (enforced by `tests/cluster.rs`);
//! * a **router** consumes one merged cluster-wide arrival stream and
//!   dispatches each LS request to a replica via a pluggable
//!   [`RoutingPolicy`] — round-robin, join-shortest-backlog over the
//!   O(1) `ls_backlog` counters, or SLO-aware power-of-two-choices;
//! * a **fleet controller** ticks on a fixed period, reads each
//!   replica's *windowed* p99-to-SLO ratio from a per-replica
//!   [`LatencyHistogram`], and migrates BE jobs off breaching replicas
//!   onto underloaded ones — parking a job raises the eviction flag on
//!   its running kernel (the §7.1 preempt path) and, optionally,
//!   retunes the destination's `Ch_BE` via [`Sgdrc::reconfigure`];
//! * replicas are **heterogeneous** ([`Deployment::cached`] per
//!   [`GpuModel`]) and fully independent between router decisions, so
//!   the cluster clock can interleave their event loops in *any* order
//!   — or run them **in parallel**: the default [`ClockKind::Parallel`]
//!   epoch clock advances every busy replica concurrently on the
//!   persistent work-stealing pool between decision points, and results
//!   are bit-identical for every replica iteration order, worker count
//!   and clock kind (enforced by `tests/cluster.rs` and
//!   `tests/cluster_parallel.rs`, mirroring the sweep's chunking
//!   invariance). Seeds derive via splitmix64 ([`cell_seed`]) like the
//!   sweep's;
//! * per-replica latency sketches **merge** into fleet-wide percentiles
//!   without re-sorting — the same [`LatencyHistogram`] path the sweep's
//!   per-slice output uses.

use crate::chaos::{DegradationConfig, FaultOp, FaultPlan, RetryConfig, ScheduledFault};
use crate::metrics::{slo_for, LatencyHistogram};
use crate::runner::Deployment;
use crate::sweep::{cell_seed, splitmix64};
use crate::trace::{per_service_traces, TraceConfig};
use crate::SystemKind;
use dnn::CompileOptions;
use gpu_spec::GpuModel;
use rayon::prelude::*;
use sgdrc_core::serving::{ArrivalTrace, Policy, ReplicaSim, RunStats, Scenario, SimContext, Task};
use sgdrc_core::{Sgdrc, SgdrcConfig};
use std::sync::Arc;

/// Fleet-controller tunables.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Rebalance tick period (µs); 0 disables the controller entirely
    /// (no windowed-p99 snapshots, no migrations).
    pub period_us: f64,
    /// A replica whose windowed p99/SLO ratio exceeds this is overloaded
    /// — a migration source (1.0 = the SLO itself).
    pub breach_ratio: f64,
    /// A replica may receive BE work only while its windowed ratio stays
    /// below this.
    pub headroom_ratio: f64,
    /// Retune `Ch_BE` through [`Sgdrc::reconfigure`] whenever a
    /// migration changes a replica's resident-BE count (SGDRC replicas
    /// only): more resident BE jobs → a proportionally larger BE channel
    /// subset, capped at half the channels.
    pub adaptive_ch_be: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            period_us: 100_000.0,
            breach_ratio: 1.0,
            headroom_ratio: 0.75,
            adaptive_ch_be: false,
        }
    }
}

/// One fleet scenario: replicas, system, trace shape and BE placement.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One GPU model per replica — heterogeneous fleets mix models.
    pub gpus: Vec<GpuModel>,
    /// The sharing system every replica runs.
    pub system: SystemKind,
    /// Per-LS-service arrival shape of the *cluster-wide* stream (scale
    /// its mean with the fleet size; the router splits it).
    pub trace: TraceConfig,
    pub horizon_us: f64,
    pub ls_instances: usize,
    /// Base seed: the arrival stream and the p2c router chain derive
    /// from it via splitmix64.
    pub seed: u64,
    /// Fleet BE jobs, one entry per job naming its BE model index.
    /// Initial placement is round-robin over replicas (skipping replicas
    /// already hosting that model — at most one instance of a model per
    /// replica).
    pub be_jobs: Vec<usize>,
    pub controller: ControllerConfig,
    /// Policy tuning for SGDRC replicas.
    pub sgdrc: SgdrcConfig,
    pub compile: CompileOptions,
    /// Replica iteration order used by the serial cluster clock when it
    /// quiesces the fleet (empty = index order). Results are invariant
    /// to it — the knob exists so the determinism test can *prove* that
    /// rather than assume it. The parallel clock ignores it: placement
    /// on pool workers is scheduling, not semantics.
    pub advance_order: Vec<usize>,
    /// Which fleet-clock schedule drives the run (results identical).
    pub clock: ClockKind,
    /// Optional fault-injection scenario. `None` runs the happy path
    /// with zero resilience overhead and bit-identical results to a
    /// build without the chaos layer; `Some` interleaves the plan's
    /// crash/recovery/slowdown timeline with the router and controller
    /// epochs (see [`crate::chaos`]).
    pub chaos: Option<FaultPlan>,
}

impl ClusterConfig {
    /// A fleet of the given replicas under one system, with Apollo-like
    /// per-service load, one BE job per replica rotating through the BE
    /// models, and the controller on at its default period.
    pub fn new(gpus: Vec<GpuModel>, system: SystemKind) -> Self {
        let be_zoo = dnn::zoo::ModelId::be_models().len();
        let be_jobs = (0..gpus.len()).map(|i| i % be_zoo).collect();
        Self {
            gpus,
            system,
            trace: TraceConfig::apollo_like(),
            horizon_us: 2e6,
            ls_instances: 4,
            seed: 0xF1EE7,
            be_jobs,
            controller: ControllerConfig::default(),
            sgdrc: SgdrcConfig::default(),
            compile: CompileOptions::default(),
            advance_order: Vec::new(),
            clock: ClockKind::default(),
            chaos: None,
        }
    }
}

/// What a [`RoutingPolicy`] sees of each replica at an arrival instant,
/// always in replica-index order.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaView {
    pub gpu: GpuModel,
    /// LS requests admitted or waiting on this replica (O(1) counter).
    pub backlog: usize,
    /// The replica's windowed p99-to-SLO ratio as of the last controller
    /// tick (0 until the first tick, or with the controller off).
    pub window_p99_ratio: f64,
    /// BE jobs currently resident.
    pub resident_be: usize,
    /// Microseconds since this replica's last heartbeat. Alive replicas
    /// heartbeat at every fleet-clock decision point, so this is 0 for
    /// them; it grows without bound after a crash.
    pub heartbeat_age_us: f64,
    /// Health as the router sees it: heartbeat staleness within the
    /// fault plan's timeout. Always `true` without a fault plan. Note a
    /// freshly crashed replica still *looks* healthy until its heartbeat
    /// ages out — routers are not told who died, they observe staleness,
    /// and requests routed at a dead-but-fresh replica bounce through
    /// the retry path.
    pub healthy: bool,
}

/// Picks a replica for each LS request. Implementations must be
/// deterministic functions of the views (index order) and their own
/// state — never of fleet-internal iteration order.
pub trait RoutingPolicy {
    fn name(&self) -> &'static str;
    /// `task` is the LS service the request belongs to; `at_us` its
    /// arrival time. Returns a replica index `< views.len()`.
    fn route(&mut self, views: &[ReplicaView], task: usize, at_us: f64) -> usize;
}

/// Blind rotation over replicas.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        let n = views.len();
        // Rotate past unhealthy replicas; with every replica unhealthy,
        // fall back to the blind rotation (the fleet clock will requeue).
        for off in 0..n {
            let r = (self.next + off) % n;
            if views[r].healthy {
                self.next = r.wrapping_add(1);
                return r;
            }
        }
        let r = self.next % n;
        self.next = self.next.wrapping_add(1);
        r
    }
}

/// Join-shortest-backlog: the replica with the fewest pending+in-flight
/// LS requests (ties → lowest index). Reads only the O(1) backlog
/// counters.
#[derive(Debug, Default)]
pub struct JoinShortestBacklog;

impl RoutingPolicy for JoinShortestBacklog {
    fn name(&self) -> &'static str {
        "shortest_backlog"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        views
            .iter()
            .enumerate()
            .min_by_key(|(i, v)| (!v.healthy, v.backlog, *i))
            .expect("non-empty fleet")
            .0
    }
}

/// SLO-aware power-of-two-choices: sample two replicas from a
/// deterministic splitmix64 chain, prefer the one not breaching its SLO
/// window, then the shorter backlog, then the lower index. O(1) per
/// request regardless of fleet size.
#[derive(Debug)]
pub struct SloAwarePowerOfTwo {
    state: u64,
}

impl SloAwarePowerOfTwo {
    pub fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed ^ 0x70C0_2C40),
        }
    }

    fn draw(&mut self, n: usize) -> usize {
        self.state = splitmix64(self.state);
        (self.state >> 32) as usize % n
    }
}

impl RoutingPolicy for SloAwarePowerOfTwo {
    fn name(&self) -> &'static str {
        "p2c_slo"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        let n = views.len();
        // Both draws always happen so the chain consumes the same number
        // of states whether or not anything is unhealthy — no-chaos runs
        // stay bit-identical to the pre-health router.
        let i = self.draw(n);
        let j = self.draw(n);
        let key = |r: usize| {
            (
                !views[r].healthy,
                views[r].window_p99_ratio > 1.0,
                views[r].backlog,
                r,
            )
        };
        if key(i) <= key(j) {
            i
        } else {
            j
        }
    }
}

/// The built-in routing policies, for benches sweeping all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    RoundRobin,
    ShortestBacklog,
    P2cSlo,
}

impl RouterKind {
    pub fn all() -> [RouterKind; 3] {
        [
            RouterKind::RoundRobin,
            RouterKind::ShortestBacklog,
            RouterKind::P2cSlo,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round_robin",
            RouterKind::ShortestBacklog => "shortest_backlog",
            RouterKind::P2cSlo => "p2c_slo",
        }
    }

    /// Instantiates the policy (the p2c chain seeds from `seed`).
    pub fn make(self, seed: u64) -> Box<dyn RoutingPolicy> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::ShortestBacklog => Box::new(JoinShortestBacklog),
            RouterKind::P2cSlo => Box::new(SloAwarePowerOfTwo::new(seed)),
        }
    }
}

/// One BE-job migration performed by the fleet controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    pub at_us: f64,
    /// Index into [`ClusterConfig::be_jobs`].
    pub job: usize,
    /// The job's BE model index.
    pub model: usize,
    pub from: usize,
    pub to: usize,
}

/// Per-replica outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSummary {
    pub gpu: GpuModel,
    /// Requests the router sent here.
    pub routed: u64,
    /// Requests completed here.
    pub requests: u64,
    /// Completions that met their (replica-local) SLO.
    pub slo_met: u64,
    /// Every completed latency (µs) — merges into the fleet sketch.
    pub hist: LatencyHistogram,
    /// The replica's derived seed (`cell_seed(cluster seed, replica)`),
    /// for downstream per-replica derivations.
    pub seed: u64,
    /// The full per-GPU statistics, exactly as a single-GPU run would
    /// have produced them.
    pub stats: RunStats,
}

/// Aggregate fleet outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResult {
    pub replicas: Vec<ReplicaSummary>,
    /// All completed latencies fleet-wide, merged from the per-replica
    /// sketches in index order (no re-sorting).
    pub fleet_hist: LatencyHistogram,
    pub requests: u64,
    pub slo_met: u64,
    /// SLO-meeting completions per second, fleet-wide.
    pub goodput_hz: f64,
    pub be_completed: u64,
    pub be_preemptions: u64,
    pub engine_events: u64,
    /// Every BE migration the controller performed, in order.
    pub migrations: Vec<Migration>,
    /// LS arrivals the router attempted to place within the horizon.
    /// Conservation under faults (proptested): every one of them is
    /// exactly one of completed (`requests`), timeout-dropped, shed, or
    /// in flight at the horizon.
    pub arrivals_injected: u64,
    /// Requests handed back to the router — ripped out of a crashed
    /// replica, or arriving/routed while no healthy replica existed.
    pub requeued: u64,
    /// Successful re-dispatches of requeued requests.
    pub retries: u64,
    /// Requests dropped after exhausting their retry budget or the
    /// retry timeout.
    pub timeout_drops: u64,
    /// Pending LS requests shed by graceful degradation.
    pub ls_shed: u64,
    /// BE-job park actions taken by graceful degradation.
    pub be_shed: u64,
    /// Requests still queued — on replicas or in the retry queue — when
    /// the horizon closed.
    pub in_flight_at_end: u64,
    /// Fault onsets applied (crashes and slowdown starts).
    pub faults_injected: u64,
    /// Recoveries and clock restores applied.
    pub faults_recovered: u64,
    /// Re-dispatch delay sketch: µs from crash drain (or first refusal)
    /// to successful re-injection, one sample per retry.
    pub redispatch_hist: LatencyHistogram,
}

impl ClusterResult {
    /// Fleet-wide percentile from the merged sketch (NaN when no request
    /// completed).
    pub fn fleet_percentile(&self, p: f64) -> f64 {
        self.fleet_hist.percentile(p)
    }

    /// Fraction of completions that met their SLO.
    pub fn slo_attainment(&self) -> f64 {
        self.slo_met as f64 / self.requests.max(1) as f64
    }
}

/// Adaptive `Ch_BE`: one resident job keeps the configured base; each
/// additional job widens the BE channel subset proportionally, capped at
/// half the channels.
fn ch_be_for(base: f64, resident: usize) -> f64 {
    if resident <= 1 {
        base
    } else {
        (base * resident as f64).min(0.5)
    }
}

/// A replica's policy. SGDRC variants stay concrete so the controller
/// can [`reconfigure`](Sgdrc::reconfigure) them in place; baselines are
/// boxed trait objects.
enum PolicySlot {
    Sgdrc(Sgdrc),
    Boxed(Box<dyn Policy>),
}

impl PolicySlot {
    fn as_dyn(&mut self) -> &mut dyn Policy {
        match self {
            PolicySlot::Sgdrc(p) => p,
            PolicySlot::Boxed(p) => p.as_mut(),
        }
    }

    fn as_dyn_ref(&self) -> &dyn Policy {
        match self {
            PolicySlot::Sgdrc(p) => p,
            PolicySlot::Boxed(p) => p.as_ref(),
        }
    }
}

/// How the fleet clock schedules replica advances between decision
/// points (router arrivals, controller ticks). Results are bit-identical
/// across every variant — enforced by `tests/cluster_parallel.rs` — so
/// the choice is purely about wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockKind {
    /// The epoch-parallel clock: replicas with pending work before the
    /// epoch boundary advance concurrently on the persistent
    /// work-stealing pool (one flat batch per epoch), idle replicas are
    /// skipped without a dispatch, and per-replica events and histogram
    /// deltas merge in canonical replica order afterwards. Falls back
    /// to the serial schedule automatically when the pool has a single
    /// worker or the fleet a single replica.
    #[default]
    Parallel,
    /// The reference serial clock: every replica advances in
    /// [`ClusterConfig::advance_order`], one after another, exactly as
    /// the pre-parallel fleet simulator did. Kept as the equivalence
    /// oracle the parallel clock is tested against.
    Serial,
}

/// One replica's full per-run state: the resumable simulation, its
/// policy, and every piece of bookkeeping the coordinator previously
/// kept in parallel vectors. Bundling them is what lets an epoch
/// advance ship a replica to a pool worker as one `&mut Lane` — the
/// sketches, RNG-free cursors and SLO tables ride along, so a worker
/// never touches shared mutable state.
struct Lane<'s> {
    sim: ReplicaSim<'s>,
    policy: PolicySlot,
    /// Per-LS-service cursor into `stats.ls_completed` (drained so far).
    seen_done: Vec<usize>,
    /// Replica-local SLOs per LS service (slower GPUs get looser SLOs).
    slos: Vec<f64>,
    /// Latency/SLO ratios since the last controller tick.
    win_hist: LatencyHistogram,
    /// Every completed latency of this replica (µs).
    cum_hist: LatencyHistogram,
    slo_met: u64,
    /// Windowed p99/SLO ratio as of the last controller tick.
    last_ratio: f64,
    /// Requests the router sent here.
    routed: u64,
    /// Cleared by a crash fault, restored by its recovery. Dead lanes
    /// are skipped by both clock schedules, excluded from controller
    /// decisions, and bounce injected requests into the retry queue.
    alive: bool,
}

impl Lane<'_> {
    fn advance_to(&mut self, until: Option<f64>) {
        self.sim.advance(self.policy.as_dyn(), until);
    }

    fn dispatch(&mut self) {
        self.sim.dispatch(self.policy.as_dyn());
    }

    fn inject(&mut self, task: usize, at_us: f64) {
        self.sim.inject_arrival(self.policy.as_dyn(), task, at_us);
        self.routed += 1;
    }

    /// Delivers a re-dispatched request: engine advances to `at_us`, the
    /// request keeps its original `arrival_us` so latency/SLO accounting
    /// includes the outage and the backoff.
    fn inject_requeued(&mut self, task: usize, arrival_us: f64, at_us: f64) {
        self.sim
            .inject_requeued(self.policy.as_dyn(), task, arrival_us, at_us);
        self.routed += 1;
    }

    /// Would `advance(until)` process anything at all? Mirrors
    /// [`ReplicaSim::next_pending_at`]'s no-op guarantee: an epoch
    /// boundary at `t` only consumes work strictly before `t`, the
    /// final drain consumes work up to and including the horizon.
    fn has_work(&self, until: Option<f64>) -> bool {
        let Some(at) = self.sim.next_pending_at(self.policy.as_dyn_ref()) else {
            return false;
        };
        match until {
            Some(t) => at < t,
            None => at <= self.sim.state().scenario.horizon_us,
        }
    }

    /// Records completions since the last drain into the windowed and
    /// cumulative sketches. Lane-local — safe at any point between
    /// advances, on any thread.
    fn drain(&mut self) {
        let stats = &self.sim.state().stats;
        for t in 0..self.slos.len() {
            let done = &stats.ls_completed[t];
            for req in &done[self.seen_done[t]..] {
                let lat = req.latency_us();
                self.cum_hist.record(lat);
                self.win_hist.record(lat / self.slos[t]);
                if lat <= self.slos[t] {
                    self.slo_met += 1;
                }
            }
            self.seen_done[t] = done.len();
        }
    }
}

/// Quiesces the fleet up to an epoch boundary (`until = Some(t)`) or out
/// to the horizon (`None`). The parallel schedule skips lanes whose next
/// pending work lies beyond the boundary — for those, `advance` is a
/// proven no-op — and fans the rest out as **one** pool batch per epoch
/// (`for_each` over the busy lanes): the pool block-partitions the
/// lanes across its deques and steal-on-empty balances whatever skew
/// the epoch has (one replica with a burst of events, seven idle), so
/// a recursive `join` split would only re-buy that balancing at an
/// extra batch submission per split. The serial schedule replays the
/// reference clock: every lane, in `order`.
fn quiesce(lanes: &mut [Lane<'_>], order: &[usize], parallel: bool, until: Option<f64>) {
    if parallel {
        let busy: Vec<&mut Lane> = lanes
            .iter_mut()
            .filter(|l| l.alive && l.has_work(until))
            .collect();
        match busy.len() {
            0 => {}
            1 => {
                for lane in busy {
                    lane.advance_to(until);
                }
            }
            _ => busy.into_par_iter().for_each(|lane| lane.advance_to(until)),
        }
    } else {
        // Dead lanes are skipped in both schedules — a crashed replica
        // must not process policy timers or launch work while down.
        for &r in order {
            if lanes[r].alive {
                lanes[r].advance_to(until);
            }
        }
    }
}

/// One orphaned request waiting for re-dispatch.
#[derive(Debug, Clone, Copy)]
struct Requeue {
    task: usize,
    /// Original arrival timestamp — survives every re-dispatch so
    /// latency/SLO accounting charges the outage to the request.
    arrival_us: f64,
    /// When the request was orphaned (crash drain or routing refusal).
    drained_at: f64,
    /// Dispatch attempts made so far (1 after the initial requeue).
    attempt: u32,
    ready_at: f64,
}

/// The fleet clock's chaos runtime: the expanded fault timeline, the
/// retry queue, heartbeat/health bookkeeping and resilience counters.
/// Instantiated even without a plan (empty timeline, infinite heartbeat
/// timeout) so the clock has one code path; everything here stays inert
/// and zero-valued on happy-path runs.
struct ChaosRt {
    timeline: Vec<ScheduledFault>,
    next_fault: usize,
    retry: RetryConfig,
    degradation: DegradationConfig,
    heartbeat_timeout_us: f64,
    retry_q: Vec<Requeue>,
    /// Last decision instant each replica was seen alive.
    last_heartbeat: Vec<f64>,
    /// Jobs parked by graceful degradation (stay parked across
    /// migrations until the resume rule fires).
    job_shed: Vec<bool>,
    /// Jobs with no eligible surviving host, re-placed at recoveries.
    homeless: Vec<usize>,
    drain_buf: Vec<(usize, f64)>,
    requeued: u64,
    retries: u64,
    timeout_drops: u64,
    ls_shed: u64,
    be_shed: u64,
    faults_injected: u64,
    faults_recovered: u64,
    redispatch_hist: LatencyHistogram,
}

impl ChaosRt {
    fn new(plan: Option<&FaultPlan>, n: usize, n_jobs: usize) -> Self {
        let (timeline, retry, degradation, heartbeat_timeout_us) = match plan {
            Some(p) => (
                p.timeline(n),
                p.retry.clone(),
                p.degradation.clone(),
                p.heartbeat_timeout_us,
            ),
            None => (
                Vec::new(),
                RetryConfig::default(),
                DegradationConfig::default(),
                f64::INFINITY,
            ),
        };
        Self {
            timeline,
            next_fault: 0,
            retry,
            degradation,
            heartbeat_timeout_us,
            retry_q: Vec::new(),
            last_heartbeat: vec![0.0; n],
            job_shed: vec![false; n_jobs],
            homeless: Vec::new(),
            drain_buf: Vec::new(),
            requeued: 0,
            retries: 0,
            timeout_drops: 0,
            ls_shed: 0,
            be_shed: 0,
            faults_injected: 0,
            faults_recovered: 0,
            redispatch_hist: LatencyHistogram::new(),
        }
    }

    fn next_fault_at(&self) -> f64 {
        self.timeline
            .get(self.next_fault)
            .map_or(f64::INFINITY, |f| f.at_us)
    }

    fn next_retry_at(&self) -> f64 {
        self.retry_q
            .iter()
            .map(|e| e.ready_at)
            .fold(f64::INFINITY, f64::min)
    }

    fn heartbeat(&mut self, lanes: &[Lane], t: f64) {
        for (r, lane) in lanes.iter().enumerate() {
            if lane.alive {
                self.last_heartbeat[r] = t;
            }
        }
    }

    /// Hands an orphaned request to the retry queue — or straight to the
    /// drop counter when the policy is drop-on-crash (`max_retries` 0).
    fn requeue(&mut self, task: usize, arrival_us: f64, t: f64) {
        self.requeued += 1;
        if self.retry.max_retries == 0 {
            self.timeout_drops += 1;
        } else {
            self.retry_q.push(Requeue {
                task,
                arrival_us,
                drained_at: t,
                attempt: 1,
                ready_at: t + self.retry.backoff_us,
            });
        }
    }
}

/// Router-facing snapshot of the fleet at decision instant `t`, in
/// replica-index order.
fn build_views(
    views: &mut Vec<ReplicaView>,
    cfg: &ClusterConfig,
    lanes: &[Lane],
    jobs_on: &[Vec<usize>],
    rt: &ChaosRt,
    t: f64,
) {
    views.clear();
    for (r, lane) in lanes.iter().enumerate() {
        let age = t - rt.last_heartbeat[r];
        views.push(ReplicaView {
            gpu: cfg.gpus[r],
            backlog: lane.sim.state().ls_backlog(),
            window_p99_ratio: lane.last_ratio,
            resident_be: jobs_on[r].len(),
            heartbeat_age_us: age,
            healthy: age <= rt.heartbeat_timeout_us,
        });
    }
}

/// Re-targets an SGDRC replica's policy at its *current* effective spec:
/// nominal clocks scaled by the engine's clock factor (thermal throttle,
/// stall, straggler), with `Ch_BE` optionally tracking the resident-BE
/// count. Dynamic SGDRC only — the static baseline keeps its fixed
/// split, boxed baselines have no knobs.
fn retune_sgdrc(
    cfg: &ClusterConfig,
    deps: &[Arc<Deployment>],
    jobs_on: &[Vec<usize>],
    lanes: &mut [Lane],
    r: usize,
) {
    if cfg.system != SystemKind::Sgdrc {
        return;
    }
    let scale = lanes[r].sim.state().engine.clock_scale();
    if let PolicySlot::Sgdrc(p) = &mut lanes[r].policy {
        let mut spec = deps[r].spec.clone();
        if scale != 1.0 {
            spec.fp32_tflops *= scale;
            spec.mem_bandwidth_gbps *= scale;
        }
        let ch_be = if cfg.controller.adaptive_ch_be {
            ch_be_for(cfg.sgdrc.ch_be, jobs_on[r].len())
        } else {
            cfg.sgdrc.ch_be
        };
        let pcfg = SgdrcConfig {
            ch_be,
            ..cfg.sgdrc.clone()
        };
        p.reconfigure(&spec, pcfg);
    }
}

/// The surviving replica a BE job lands on: alive, not already hosting
/// the model, shortest backlog (ties → lowest index). `None` strands the
/// job as homeless until a recovery.
fn be_landing_site(
    cfg: &ClusterConfig,
    lanes: &[Lane],
    jobs_on: &[Vec<usize>],
    model: usize,
    exclude: Option<usize>,
) -> Option<usize> {
    (0..lanes.len())
        .filter(|&d| {
            Some(d) != exclude
                && lanes[d].alive
                && !jobs_on[d].iter().any(|&k| cfg.be_jobs[k] == model)
        })
        .min_by_key(|&d| (lanes[d].sim.state().ls_backlog(), d))
}

/// Places BE job `job` on replica `dst`: records placement, resumes the
/// task (unless the job is shed), retunes `Ch_BE` and lets the policy
/// react.
#[allow(clippy::too_many_arguments)]
fn place_be_job(
    cfg: &ClusterConfig,
    deps: &[Arc<Deployment>],
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    lanes: &mut [Lane],
    rt: &ChaosRt,
    job: usize,
    dst: usize,
) {
    let model = cfg.be_jobs[job];
    jobs_on[dst].push(job);
    if !rt.job_shed[job] {
        let b = fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model");
        lanes[dst].sim.state_mut().set_be_active(b, true);
        if cfg.controller.adaptive_ch_be {
            retune_sgdrc(cfg, deps, jobs_on, lanes, dst);
        }
        lanes[dst].dispatch();
    }
}

/// Applies one fault-timeline action at its (already quiesced) instant.
/// Every scan and mutation runs in replica-index order — the action is a
/// deterministic function of fleet state, independent of the clock
/// schedule.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    cfg: &ClusterConfig,
    f: &ScheduledFault,
    deps: &[Arc<Deployment>],
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    lanes: &mut [Lane],
    migrations: &mut Vec<Migration>,
    rt: &mut ChaosRt,
) {
    let r = f.replica;
    match f.op {
        FaultOp::Crash => {
            if !lanes[r].alive {
                return; // overlapping crash windows: already down
            }
            lanes[r].alive = false;
            rt.faults_injected += 1;
            // Rip queued and in-flight LS work back out to the router,
            // in the merged stream's canonical (time, task) order so the
            // retry queue is identical under every clock schedule.
            let mut drained = std::mem::take(&mut rt.drain_buf);
            drained.clear();
            lanes[r].sim.state_mut().crash_drain(&mut drained);
            drained.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            for &(task, arrival_us) in &drained {
                rt.requeue(task, arrival_us, f.at_us);
            }
            rt.drain_buf = drained;
            // Evacuate resident BE jobs onto survivors via the migration
            // path (each resumes from the destination's saved cursor).
            let jobs = std::mem::take(&mut jobs_on[r]);
            for job in jobs {
                let model = cfg.be_jobs[job];
                let b = fleet_models
                    .iter()
                    .position(|&m| m == model)
                    .expect("job model is a fleet model");
                // Clear the dead replica's mask so a later recovery does
                // not resurrect a phantom resident.
                lanes[r].sim.state_mut().set_be_active(b, false);
                match be_landing_site(cfg, lanes, jobs_on, model, Some(r)) {
                    Some(dst) => {
                        place_be_job(cfg, deps, fleet_models, jobs_on, lanes, rt, job, dst);
                        migrations.push(Migration {
                            at_us: f.at_us,
                            job,
                            model,
                            from: r,
                            to: dst,
                        });
                    }
                    None => rt.homeless.push(job),
                }
            }
        }
        FaultOp::Recover => {
            if lanes[r].alive {
                return; // permanent-crash bookkeeping or double recovery
            }
            lanes[r].alive = true;
            rt.faults_recovered += 1;
            rt.last_heartbeat[r] = f.at_us;
            // The engine is empty (crash drain cancelled every launch)
            // and stale policy timers are structurally dropped, so
            // idling forward to the recovery instant is safe.
            lanes[r].sim.state_mut().engine.advance_idle(f.at_us);
            // Re-home stranded jobs — the revived replica is empty, so
            // every homeless model has a candidate again.
            let homeless = std::mem::take(&mut rt.homeless);
            for job in homeless {
                let model = cfg.be_jobs[job];
                match be_landing_site(cfg, lanes, jobs_on, model, None) {
                    Some(dst) => {
                        place_be_job(cfg, deps, fleet_models, jobs_on, lanes, rt, job, dst);
                    }
                    None => rt.homeless.push(job),
                }
            }
            lanes[r].dispatch();
        }
        FaultOp::SetScale(factor) => {
            rt.faults_injected += 1;
            if lanes[r].alive {
                lanes[r].sim.state_mut().engine.advance_idle(f.at_us);
            }
            lanes[r].sim.state_mut().engine.set_clock_scale(factor);
            retune_sgdrc(cfg, deps, jobs_on, lanes, r);
            if lanes[r].alive {
                lanes[r].dispatch();
            }
        }
        FaultOp::ClearScale => {
            rt.faults_recovered += 1;
            if lanes[r].alive {
                lanes[r].sim.state_mut().engine.advance_idle(f.at_us);
            }
            lanes[r].sim.state_mut().engine.set_clock_scale(1.0);
            retune_sgdrc(cfg, deps, jobs_on, lanes, r);
            if lanes[r].alive {
                lanes[r].dispatch();
            }
        }
    }
}

/// Drains every retry-queue entry due at `t`: timed-out requests drop,
/// the rest are routed against a fresh health view — a successful
/// delivery records its re-dispatch delay, a refusal (dead target, no
/// healthy lane) backs off linearly and tries again, up to the retry
/// budget.
fn process_retries(
    cfg: &ClusterConfig,
    t: f64,
    router: &mut dyn RoutingPolicy,
    lanes: &mut [Lane],
    jobs_on: &[Vec<usize>],
    views: &mut Vec<ReplicaView>,
    rt: &mut ChaosRt,
) {
    let n = lanes.len();
    let mut due: Vec<Requeue> = Vec::new();
    let mut i = 0;
    while i < rt.retry_q.len() {
        if rt.retry_q[i].ready_at <= t {
            due.push(rt.retry_q.remove(i));
        } else {
            i += 1;
        }
    }
    for mut e in due {
        if t - e.arrival_us > rt.retry.timeout_us {
            rt.timeout_drops += 1;
            continue;
        }
        build_views(views, cfg, lanes, jobs_on, rt, t);
        let target = if views.iter().any(|v| v.healthy) {
            let r = router.route(views, e.task, t);
            assert!(r < n, "router picked replica {r} of {n}");
            Some(r)
        } else {
            None
        };
        match target {
            Some(r) if lanes[r].alive => {
                lanes[r].inject_requeued(e.task, e.arrival_us, t);
                rt.retries += 1;
                rt.redispatch_hist.record(t - e.drained_at);
            }
            _ => {
                e.attempt += 1;
                if e.attempt > rt.retry.max_retries {
                    rt.timeout_drops += 1;
                } else {
                    e.ready_at = t + rt.retry.backoff_us * f64::from(e.attempt);
                    rt.retry_q.push(e);
                }
            }
        }
    }
}

/// Graceful degradation, evaluated every controller tick while a fault
/// plan is active: when capacity drops below demand, shed BE work first
/// (park every resident job), and under sustained overload drop pending
/// requests of the lowest-priority LS service on the most backlogged
/// survivor. Shed BE jobs resume once the fleet is whole and queues have
/// drained to half the shed threshold.
fn degrade(
    cfg: &ClusterConfig,
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    lanes: &mut [Lane],
    rt: &mut ChaosRt,
) {
    let n = lanes.len();
    let alive = lanes.iter().filter(|l| l.alive).count();
    if alive == 0 {
        return;
    }
    let degraded = alive < n;
    let backlog: usize = lanes
        .iter()
        .filter(|l| l.alive)
        .map(|l| l.sim.state().ls_backlog())
        .sum();
    let per_alive = backlog / alive;
    // Queueing shows up two ways depending on regime: as pending
    // requests when arrivals outrun admission, and as windowed p99
    // breach when the engine itself is the bottleneck. Either one while
    // a replica is down means capacity dropped below demand.
    let slo_pressure = lanes.iter().filter(|l| l.alive).any(|l| l.last_ratio > 1.0);
    let slot_of = |model: usize| {
        fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model")
    };
    if degraded && (per_alive > rt.degradation.shed_be_backlog || slo_pressure) {
        for r in 0..n {
            if !lanes[r].alive {
                continue;
            }
            let mut parked = false;
            for j in jobs_on[r].clone() {
                if rt.job_shed[j] {
                    continue;
                }
                rt.job_shed[j] = true;
                rt.be_shed += 1;
                let b = slot_of(cfg.be_jobs[j]);
                let st = lanes[r].sim.state_mut();
                st.set_be_active(b, false);
                if st.be_launch.map(|l| l.task) == Some(b) {
                    st.preempt_be();
                }
                parked = true;
            }
            if parked {
                lanes[r].dispatch();
            }
        }
    } else if !degraded && per_alive * 2 <= rt.degradation.shed_be_backlog && !slo_pressure {
        for r in 0..n {
            let mut resumed = false;
            for j in jobs_on[r].clone() {
                if !rt.job_shed[j] {
                    continue;
                }
                rt.job_shed[j] = false;
                let b = slot_of(cfg.be_jobs[j]);
                lanes[r].sim.state_mut().set_be_active(b, true);
                resumed = true;
            }
            if resumed {
                lanes[r].dispatch();
            }
        }
    }
    if per_alive > rt.degradation.shed_ls_backlog {
        let victim = (0..n)
            .filter(|&r| lanes[r].alive)
            .max_by_key(|&r| (lanes[r].sim.state().ls_backlog(), std::cmp::Reverse(r)));
        if let Some(v) = victim {
            let mut budget = rt.degradation.ls_shed_per_tick;
            let n_ls = lanes[v].slos.len();
            // Lowest priority = highest task index, shed first.
            for task in (0..n_ls).rev() {
                if budget == 0 {
                    break;
                }
                let dropped = lanes[v].sim.state_mut().shed_pending(task, budget);
                budget -= dropped;
                rt.ls_shed += dropped as u64;
            }
        }
    }
}

/// [`run_cluster_in`] with fresh per-replica contexts.
pub fn run_cluster(cfg: &ClusterConfig, router: &mut dyn RoutingPolicy) -> ClusterResult {
    run_cluster_in(cfg, router, &mut Vec::new())
}

/// Runs one fleet scenario to the horizon.
///
/// `ctxs` holds one reusable [`SimContext`] per replica (grown on
/// demand); passing the same vector across runs makes repeated fleet
/// simulations — a bench sweeping systems × routers, a scaling curve —
/// reuse every engine, queue and statistics allocation, exactly like the
/// sweep's per-chunk contexts.
pub fn run_cluster_in(
    cfg: &ClusterConfig,
    router: &mut dyn RoutingPolicy,
    ctxs: &mut Vec<SimContext>,
) -> ClusterResult {
    let n = cfg.gpus.len();
    assert!(n > 0, "a fleet needs at least one replica");
    if ctxs.len() < n {
        ctxs.resize_with(n, SimContext::new);
    }

    // --- deployments & fleet BE task sets --------------------------------
    let deps: Vec<Arc<Deployment>> = cfg
        .gpus
        .iter()
        .map(|&g| Deployment::cached_with_options(g, cfg.compile))
        .collect();
    let n_ls = deps[0].ls_tasks.len();
    for (r, dep) in deps.iter().enumerate() {
        assert_eq!(
            dep.ls_tasks.len(),
            n_ls,
            "replica {r}: every replica must deploy the same LS services"
        );
        assert!(
            cfg.system.supported_on(&dep.spec),
            "{} is not supported on replica {r} ({})",
            cfg.system.name(),
            dep.spec.name
        );
    }

    // The distinct BE models the fleet runs, ascending — every replica's
    // scenario lists exactly these tasks, and placement toggles their
    // activity.
    let fleet_models: Vec<usize> = {
        let mut m = cfg.be_jobs.clone();
        m.sort_unstable();
        m.dedup();
        m
    };
    // One BE task set per distinct GPU model, shared by its replicas.
    let mut be_sets: Vec<(GpuModel, Arc<[Task]>)> = Vec::new();
    for (r, &gpu) in cfg.gpus.iter().enumerate() {
        if !be_sets.iter().any(|(g, _)| *g == gpu) {
            let set: Arc<[Task]> = fleet_models
                .iter()
                .map(|&m| deps[r].be_tasks[m].clone())
                .collect();
            be_sets.push((gpu, set));
        }
    }
    let be_set_of = |gpu: GpuModel| -> Arc<[Task]> {
        Arc::clone(
            &be_sets
                .iter()
                .find(|(g, _)| *g == gpu)
                .expect("built above")
                .1,
        )
    };

    // --- initial BE placement --------------------------------------------
    // Job j starts on replica j mod n, scanning forward past replicas
    // that already host its model (≤ 1 instance of a model per replica).
    let mut jobs_on: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, &model) in cfg.be_jobs.iter().enumerate() {
        let host = (0..n)
            .map(|off| (j + off) % n)
            .find(|&r| !jobs_on[r].iter().any(|&k| cfg.be_jobs[k] == model))
            .unwrap_or_else(|| panic!("BE model {model} has more jobs than replicas"));
        jobs_on[host].push(j);
    }

    // --- the cluster-wide arrival stream ---------------------------------
    let trace = ArrivalTrace::new(per_service_traces(
        &cfg.trace,
        n_ls,
        cfg.horizon_us,
        cfg.seed,
    ));
    let merged = trace.merged();

    // --- replica scenarios, policies, lanes ------------------------------
    let empty_arrivals = Arc::new(ArrivalTrace::default());
    let scenarios: Vec<Scenario> = (0..n)
        .map(|r| Scenario {
            spec: deps[r].spec.clone(),
            ls: Arc::clone(&deps[r].ls_tasks),
            be: be_set_of(cfg.gpus[r]),
            ls_instances: cfg.ls_instances,
            arrivals: Arc::clone(&empty_arrivals),
            horizon_us: cfg.horizon_us,
        })
        .collect();
    let mut lanes: Vec<Lane> = Vec::with_capacity(n);
    for (r, scenario) in scenarios.iter().enumerate() {
        let policy = match cfg.system {
            SystemKind::Sgdrc => {
                let mut pcfg = cfg.sgdrc.clone();
                if cfg.controller.adaptive_ch_be {
                    pcfg.ch_be = ch_be_for(cfg.sgdrc.ch_be, jobs_on[r].len());
                }
                PolicySlot::Sgdrc(Sgdrc::new(&deps[r].spec, pcfg))
            }
            SystemKind::SgdrcStatic => PolicySlot::Sgdrc(Sgdrc::new(
                &deps[r].spec,
                SgdrcConfig {
                    static_partition: true,
                    ..Default::default()
                },
            )),
            other => PolicySlot::Boxed(other.make(&deps[r].spec)),
        };
        let mut sim = ReplicaSim::prepare(scenario, &mut ctxs[r]);
        // Park every BE task not initially placed here *before* the first
        // dispatch, so the opening launches match the placement.
        for (b, &model) in fleet_models.iter().enumerate() {
            let resident = jobs_on[r].iter().any(|&k| cfg.be_jobs[k] == model);
            sim.state_mut().set_be_active(b, resident);
        }
        // Per-replica SLOs (replica-local: a slower GPU has a looser
        // SLO, §9.2's n × isolated-p99 with n = LS services + 1 BE
        // slot).
        let services = deps[r].ls_tasks.len() + 1;
        let slos: Vec<f64> = deps[r]
            .ls_tasks
            .iter()
            .map(|t| slo_for(t.profile.isolated_e2e_us, services))
            .collect();
        let mut lane = Lane {
            sim,
            policy,
            seen_done: vec![0; n_ls],
            slos,
            win_hist: LatencyHistogram::new(),
            cum_hist: LatencyHistogram::new(),
            slo_met: 0,
            last_ratio: 0.0,
            routed: 0,
            alive: true,
        };
        lane.sim.begin(lane.policy.as_dyn());
        lanes.push(lane);
    }

    // --- fleet clock state -----------------------------------------------
    let order: Vec<usize> = if cfg.advance_order.is_empty() {
        (0..n).collect()
    } else {
        assert_eq!(
            cfg.advance_order.len(),
            n,
            "advance_order must permute 0..n"
        );
        let mut seen = vec![false; n];
        for &r in &cfg.advance_order {
            assert!(r < n && !seen[r], "advance_order must permute 0..n");
            seen[r] = true;
        }
        cfg.advance_order.clone()
    };
    // The epoch-parallel clock degenerates to the serial schedule when
    // there is nothing to overlap: a 1-replica fleet, or a pool with a
    // single participant (the 1-CPU default — where querying the pool
    // is the only cost this run pays for the parallel machinery).
    let parallel = cfg.clock == ClockKind::Parallel && n > 1 && rayon::current_pool_workers() > 1;
    let mut migrations: Vec<Migration> = Vec::new();
    let mut views: Vec<ReplicaView> = Vec::with_capacity(n);
    let chaos_on = cfg.chaos.is_some();
    let mut rt = ChaosRt::new(cfg.chaos.as_ref(), n, cfg.be_jobs.len());

    let period = cfg.controller.period_us;
    let mut next_tick = if period > 0.0 { period } else { f64::INFINITY };
    let mut next_arrival = 0usize;
    let mut arrivals_injected = 0u64;

    loop {
        let arrival = merged.get(next_arrival);
        let t_arr = arrival.map_or(f64::INFINITY, |a| a.at_us);
        let t_fault = rt.next_fault_at();
        let t_retry = rt.next_retry_at();
        // Decision-point priority at equal instants is fixed — fault,
        // then controller tick, then retry re-dispatch, then arrival —
        // so both clock schedules interleave identically. Without a
        // fault plan `t_fault`/`t_retry` are infinite and every
        // condition reduces exactly to the pre-chaos clock.
        let fault_due = t_fault <= t_arr
            && t_fault <= next_tick
            && t_fault <= t_retry
            && t_fault <= cfg.horizon_us;
        if fault_due {
            let f = rt.timeline[rt.next_fault];
            rt.next_fault += 1;
            quiesce(&mut lanes, &order, parallel, Some(f.at_us));
            apply_fault(
                cfg,
                &f,
                &deps,
                &fleet_models,
                &mut jobs_on,
                &mut lanes,
                &mut migrations,
                &mut rt,
            );
            continue;
        }
        let tick_due = next_tick < t_arr && next_tick <= t_retry && next_tick < cfg.horizon_us;
        if tick_due {
            // Quiesce the fleet up to the tick — one epoch, every busy
            // replica in parallel — then drain and rebalance in
            // canonical replica order.
            quiesce(&mut lanes, &order, parallel, Some(next_tick));
            for lane in &mut lanes {
                lane.drain();
                lane.last_ratio = if lane.win_hist.is_empty() {
                    0.0
                } else {
                    lane.win_hist.percentile(99.0)
                };
                lane.win_hist.reset();
            }
            controller_rebalance(
                cfg,
                next_tick,
                &deps,
                &fleet_models,
                &mut jobs_on,
                &mut lanes,
                &mut migrations,
                &rt.job_shed,
            );
            if chaos_on {
                rt.heartbeat(&lanes, next_tick);
                degrade(cfg, &fleet_models, &mut jobs_on, &mut lanes, &mut rt);
            }
            next_tick += period;
            continue;
        }
        let retry_due = t_retry <= t_arr && t_retry <= cfg.horizon_us;
        if retry_due {
            quiesce(&mut lanes, &order, parallel, Some(t_retry));
            rt.heartbeat(&lanes, t_retry);
            process_retries(
                cfg, t_retry, router, &mut lanes, &jobs_on, &mut views, &mut rt,
            );
            continue;
        }
        if !(arrival.is_some() && t_arr <= cfg.horizon_us) {
            break;
        }
        let a = *arrival.expect("checked");
        next_arrival += 1;
        arrivals_injected += 1;
        // Quiesce every replica up to the arrival so the router sees a
        // consistent instant; replicas are independent, so neither the
        // serial order nor the parallel schedule matters (the
        // determinism tests permute both).
        quiesce(&mut lanes, &order, parallel, Some(a.at_us));
        rt.heartbeat(&lanes, a.at_us);
        build_views(&mut views, cfg, &lanes, &jobs_on, &rt, a.at_us);
        if chaos_on && !views.iter().any(|v| v.healthy) {
            // Whole fleet unhealthy: the request parks in the retry
            // queue instead of being forced onto a dead replica.
            rt.requeue(a.task as usize, a.at_us, a.at_us);
            continue;
        }
        let target = router.route(&views, a.task as usize, a.at_us);
        assert!(target < n, "router picked replica {target} of {n}");
        if lanes[target].alive {
            lanes[target].inject(a.task as usize, a.at_us);
        } else {
            // Routed at a dead replica still inside its heartbeat
            // window — the crash has not aged out yet, so the request
            // bounces into the retry path like a failed delivery.
            rt.requeue(a.task as usize, a.at_us, a.at_us);
        }
    }
    // Drain: no further arrivals, faults, retries or ticks — run every
    // surviving replica out to the horizon.
    quiesce(&mut lanes, &order, parallel, None);
    for lane in &mut lanes {
        lane.drain();
    }
    let in_flight_at_end = lanes
        .iter()
        .map(|l| l.sim.state().ls_backlog() as u64)
        .sum::<u64>()
        + rt.retry_q.len() as u64;

    // --- aggregate --------------------------------------------------------
    let mut result = ClusterResult {
        replicas: Vec::with_capacity(n),
        fleet_hist: LatencyHistogram::new(),
        requests: 0,
        slo_met: 0,
        goodput_hz: 0.0,
        be_completed: 0,
        be_preemptions: 0,
        engine_events: 0,
        migrations,
        arrivals_injected,
        requeued: rt.requeued,
        retries: rt.retries,
        timeout_drops: rt.timeout_drops,
        ls_shed: rt.ls_shed,
        be_shed: rt.be_shed,
        in_flight_at_end,
        faults_injected: rt.faults_injected,
        faults_recovered: rt.faults_recovered,
        redispatch_hist: rt.redispatch_hist,
    };
    for (r, lane) in lanes.into_iter().enumerate() {
        let stats = lane.sim.finish(&mut ctxs[r]);
        let hist = lane.cum_hist;
        let requests = hist.count();
        result.fleet_hist.merge(&hist);
        result.requests += requests;
        result.slo_met += lane.slo_met;
        result.be_completed += stats.be_completed.iter().sum::<u64>();
        result.be_preemptions += stats.be_preemptions;
        result.engine_events += stats.engine_events;
        result.replicas.push(ReplicaSummary {
            gpu: cfg.gpus[r],
            routed: lane.routed,
            requests,
            slo_met: lane.slo_met,
            hist,
            seed: cell_seed(cfg.seed, r as u64),
            stats,
        });
    }
    result.goodput_hz = result.slo_met as f64 / (cfg.horizon_us / 1e6);
    result
}

/// One controller tick's migration decision: move one BE job from the
/// worst SLO-breaching replica onto the most underloaded replica that
/// can host it. Scans run in replica-index order, so the decision is
/// independent of the fleet clock's schedule (serial order or parallel
/// placement alike).
#[allow(clippy::too_many_arguments)]
fn controller_rebalance(
    cfg: &ClusterConfig,
    at_us: f64,
    deps: &[Arc<Deployment>],
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    lanes: &mut [Lane],
    migrations: &mut Vec<Migration>,
    job_shed: &[bool],
) {
    let n = jobs_on.len();
    // Source: the worst breaching replica that has BE work to shed.
    // Dead replicas are invisible here — a crash evacuates their BE
    // jobs, and their stale windowed ratio must not attract work.
    let src = (0..n)
        .filter(|&r| {
            lanes[r].alive
                && lanes[r].last_ratio > cfg.controller.breach_ratio
                && !jobs_on[r].is_empty()
        })
        .max_by(|&a, &b| {
            lanes[a]
                .last_ratio
                .total_cmp(&lanes[b].last_ratio)
                .then(b.cmp(&a)) // ties → lower index
        });
    let Some(src) = src else { return };
    // Destinations with headroom, best (ratio, backlog) first.
    let mut dests: Vec<usize> = (0..n)
        .filter(|&r| {
            r != src && lanes[r].alive && lanes[r].last_ratio < cfg.controller.headroom_ratio
        })
        .collect();
    dests.sort_by(|&a, &b| {
        lanes[a]
            .last_ratio
            .total_cmp(&lanes[b].last_ratio)
            .then(
                lanes[a]
                    .sim
                    .state()
                    .ls_backlog()
                    .cmp(&lanes[b].sim.state().ls_backlog()),
            )
            .then(a.cmp(&b))
    });
    for dst in dests {
        // First job of the source whose model the destination lacks
        // (degradation-shed jobs stay parked where they are).
        let movable = jobs_on[src].iter().copied().find(|&j| {
            let model = cfg.be_jobs[j];
            !job_shed[j] && !jobs_on[dst].iter().any(|&k| cfg.be_jobs[k] == model)
        });
        let Some(job) = movable else { continue };
        let model = cfg.be_jobs[job];
        let b = fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model");
        // Park on the source: stop future launches, evict the running
        // kernel if it is this task's (§7.1 eviction flag).
        let st = lanes[src].sim.state_mut();
        st.set_be_active(b, false);
        if st.be_launch.map(|l| l.task) == Some(b) {
            st.preempt_be();
        }
        // Resume on the destination.
        lanes[dst].sim.state_mut().set_be_active(b, true);
        let pos = jobs_on[src]
            .iter()
            .position(|&k| k == job)
            .expect("present");
        jobs_on[src].remove(pos);
        jobs_on[dst].push(job);
        // Optionally retune Ch_BE on both ends (dynamic SGDRC only —
        // the static baseline keeps its fixed split). `retune_sgdrc`
        // folds in any active clock throttle so a migration never
        // resets a thermally scaled target spec.
        if cfg.controller.adaptive_ch_be {
            for r in [src, dst] {
                retune_sgdrc(cfg, deps, jobs_on, lanes, r);
            }
        }
        // Let both policies react immediately (launch the migrated job /
        // expand onto freed resources).
        lanes[src].dispatch();
        lanes[dst].dispatch();
        migrations.push(Migration {
            at_us,
            job,
            model,
            from: src,
            to: dst,
        });
        return; // one migration per tick
    }
}
