//! Multi-GPU fleet simulator: SLO-aware request routing + dynamic BE
//! placement across spatially-shared replicas.
//!
//! The paper's evaluation stops at one GPU, but its deployment target is
//! cloud inference serving — fleets of GPUs, each spatially shared
//! between LS services and BE jobs, behind a request router. This module
//! builds that layer on the per-GPU machinery the workspace already has:
//!
//! * every **replica** is one [`ReplicaSim`] — the exact fast serving
//!   loop (engine + policy + queues), run through a reusable
//!   [`ClusterCtx`] so repeated fleet runs are allocation-free in steady
//!   state. A 1-replica fleet is *bit-identical* to a single-GPU
//!   [`sgdrc_core::serving::run`] (enforced by `tests/cluster.rs`);
//! * a **router** consumes one merged cluster-wide arrival stream and
//!   dispatches each LS request to a replica via a pluggable
//!   [`RoutingPolicy`] — round-robin, join-shortest-backlog over the
//!   O(1) `ls_backlog` counters, or SLO-aware power-of-two-choices;
//! * a **fleet controller** ticks on a fixed period, reads each
//!   replica's *windowed* p99-to-SLO ratio from a per-replica
//!   [`LatencyHistogram`], and migrates BE jobs off breaching replicas
//!   onto underloaded ones — parking a job raises the eviction flag on
//!   its running kernel (the §7.1 preempt path) and, optionally,
//!   retunes the destination's `Ch_BE` via [`Sgdrc::reconfigure`];
//! * replicas are **heterogeneous** ([`Deployment::cached`] per
//!   [`GpuModel`]) and fully independent between router decisions, so
//!   the cluster clock can interleave their event loops in *any* order
//!   — or run them **in parallel** on the persistent work-stealing
//!   pool. Seeds derive via splitmix64 ([`cell_seed`]) like the
//!   sweep's;
//! * per-replica latency sketches **merge** into fleet-wide percentiles
//!   without re-sorting — the same [`LatencyHistogram`] path the sweep's
//!   per-slice output uses.
//!
//! ## Scale-out architecture (500–1000 replicas, 10M+ requests)
//!
//! The fleet clock is built to hold its per-epoch cost at O(busy
//! replicas), not O(fleet size), with steady-state allocations at zero:
//!
//! * **Struct-of-arrays lanes.** [`Fleet`] keeps the per-epoch hot
//!   scalars — next-pending time, LS backlog, windowed ratio, liveness
//!   — in contiguous arrays the router, controller and clock read
//!   densely; the cold per-replica state (engine, queues, policy,
//!   sketches) lives in one boxed [`LaneCell`] per lane that only the
//!   worker advancing that lane touches. Every lane mutation funnels
//!   through [`Fleet::mutate`], which re-derives the lane's hot mirror
//!   afterwards — the mirrors are provably never stale.
//! * **Calendar event queue.** Busy-lane selection reads an
//!   [`EventCalendar`] keyed by each lane's `next_pending_at` and
//!   updated incrementally on every mutation, instead of linearly
//!   scanning all replicas per epoch. The linear scan survives as a
//!   `debug_assert` oracle on every epoch, and [`ClockKind::Serial`]
//!   retains the scan-based reference clock outright — results are
//!   bit-identical (proptested under chaos and no-chaos plans).
//! * **Zero-alloc epochs.** All per-epoch scratch — the busy list, the
//!   router's view array, due-retry extraction, the controller's
//!   destination ordering — lives in [`ClusterCtx`] and is reused
//!   across epochs and runs (asserted by the counting-allocator test in
//!   `tests/cluster_alloc.rs`).
//! * **Streaming long-horizon mode.** With
//!   [`ClusterConfig::streaming`], per-replica completion logs are
//!   folded into the latency sketches and conservation counters at
//!   every controller tick and then discarded, bounding memory at
//!   O(replicas) for any horizon; arrivals come from
//!   [`ArrivalStream`], which replays the exact batch trace without
//!   materializing it. Aggregate results are identical to the retained
//!   mode (`tests/cluster_streaming.rs`).

use crate::calendar::EventCalendar;
use crate::chaos::{DegradationConfig, FaultOp, FaultPlan, RetryConfig, ScheduledFault};
use crate::elastic::{
    provision_delay, ElasticConfig, FleetSignals, ScaleCause, ScaleEvent, ScaleEventKind,
    ScalingPolicy,
};
use crate::metrics::{slo_for, LatencyHistogram};
use crate::runner::Deployment;
use crate::sweep::{cell_seed, splitmix64};
use crate::telemetry::{
    EventKind, RefusalReason, RequeueCause, TelemetryConfig, TelemetryResult, TelemetryRt,
    FLEET_TRACK,
};
use crate::tiers::{AdmissionClass, TierOutcome, TiersConfig};
use crate::trace::{per_service_traces, ArrivalStream, TraceConfig};
use crate::SystemKind;
use dnn::CompileOptions;
use gpu_spec::GpuModel;
use sgdrc_core::serving::{
    Arrival, ArrivalTrace, Policy, ReplicaSim, RunStats, Scenario, SimContext, Task,
};
use sgdrc_core::{Sgdrc, SgdrcConfig};
use std::collections::VecDeque;
use std::sync::Arc;

/// Fleet-controller tunables.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Rebalance tick period (µs); 0 disables the controller entirely
    /// (no windowed-p99 snapshots, no migrations).
    pub period_us: f64,
    /// A replica whose windowed p99/SLO ratio exceeds this is overloaded
    /// — a migration source (1.0 = the SLO itself).
    pub breach_ratio: f64,
    /// A replica may receive BE work only while its windowed ratio stays
    /// below this.
    pub headroom_ratio: f64,
    /// Retune `Ch_BE` through [`Sgdrc::reconfigure`] whenever a
    /// migration changes a replica's resident-BE count (SGDRC replicas
    /// only): more resident BE jobs → a proportionally larger BE channel
    /// subset, capped at half the channels.
    pub adaptive_ch_be: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            period_us: 100_000.0,
            breach_ratio: 1.0,
            headroom_ratio: 0.75,
            adaptive_ch_be: false,
        }
    }
}

/// One fleet scenario: replicas, system, trace shape and BE placement.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One GPU model per replica — heterogeneous fleets mix models.
    pub gpus: Vec<GpuModel>,
    /// The sharing system every replica runs.
    pub system: SystemKind,
    /// Per-LS-service arrival shape of the *cluster-wide* stream (scale
    /// its mean with the fleet size; the router splits it).
    pub trace: TraceConfig,
    pub horizon_us: f64,
    pub ls_instances: usize,
    /// Base seed: the arrival stream and the p2c router chain derive
    /// from it via splitmix64.
    pub seed: u64,
    /// Fleet BE jobs, one entry per job naming its BE model index.
    /// Initial placement is round-robin over replicas (skipping replicas
    /// already hosting that model — at most one instance of a model per
    /// replica).
    pub be_jobs: Vec<usize>,
    pub controller: ControllerConfig,
    /// Policy tuning for SGDRC replicas.
    pub sgdrc: SgdrcConfig,
    pub compile: CompileOptions,
    /// Replica iteration order used by the serial cluster clock when it
    /// quiesces the fleet (empty = index order). Results are invariant
    /// to it — the knob exists so the determinism test can *prove* that
    /// rather than assume it. The parallel clock ignores it: placement
    /// on pool workers is scheduling, not semantics.
    pub advance_order: Vec<usize>,
    /// Which fleet-clock schedule drives the run (results identical).
    pub clock: ClockKind,
    /// Optional fault-injection scenario. `None` runs the happy path
    /// with zero resilience overhead and bit-identical results to a
    /// build without the chaos layer; `Some` interleaves the plan's
    /// crash/recovery/slowdown timeline with the router and controller
    /// epochs (see [`crate::chaos`]).
    pub chaos: Option<FaultPlan>,
    /// Long-horizon streaming mode: arrivals are generated on the fly
    /// ([`ArrivalStream`]) and per-replica completion logs are folded
    /// into the sketches at every controller tick instead of being
    /// retained, bounding memory at O(replicas) regardless of horizon.
    /// Aggregate results (fleet sketch, counters, goodput, SLO
    /// attainment) are identical to the retained mode; only the
    /// per-request `ls_completed` logs in [`ReplicaSummary::stats`] are
    /// absent. Requires a running controller (`period_us > 0`), whose
    /// ticks bound the retained window.
    pub streaming: bool,
    /// Elastic fleet membership: a warm pool of pre-prepared lanes, a
    /// [`ScalingPolicy`] evaluated at every controller tick, SLO-breach
    /// draining and crash replacement (see [`crate::elastic`]). `None`
    /// freezes membership at config time — bit-identical to a build
    /// without the elastic layer — and so does a no-op config
    /// (empty warm pool, `min == max == initial`, breach draining and
    /// replacement off).
    pub elastic: Option<ElasticConfig>,
    /// The flight recorder (see [`crate::telemetry`]): per-lane event
    /// rings, tick-sampled metric series and clock phase profiling,
    /// surfaced as [`ClusterResult::telemetry`]. `None` (the default)
    /// records nothing, allocates nothing on the epoch path, and is
    /// bit-identical to a recorder-enabled run on every other
    /// `ClusterResult` field.
    pub telemetry: Option<TelemetryConfig>,
    /// Tiered SLOs (see [`crate::tiers`]): one [`crate::tiers::TierConfig`]
    /// per LS service driving admission control, the brownout ladder in
    /// `degrade()`, per-tier retry budgets/deadlines, tier-aware router
    /// tie-breaking and weighted goodput. `None` (the default) keeps
    /// the tier-blind simulator bit-identical to previous behaviour.
    pub tiers: Option<TiersConfig>,
}

impl ClusterConfig {
    /// A fleet of the given replicas under one system, with Apollo-like
    /// per-service load, one BE job per replica rotating through the BE
    /// models, and the controller on at its default period.
    pub fn new(gpus: Vec<GpuModel>, system: SystemKind) -> Self {
        let be_zoo = dnn::zoo::ModelId::be_models().len();
        let be_jobs = (0..gpus.len()).map(|i| i % be_zoo).collect();
        Self {
            gpus,
            system,
            trace: TraceConfig::apollo_like(),
            horizon_us: 2e6,
            ls_instances: 4,
            seed: 0xF1EE7,
            be_jobs,
            controller: ControllerConfig::default(),
            sgdrc: SgdrcConfig::default(),
            compile: CompileOptions::default(),
            advance_order: Vec::new(),
            clock: ClockKind::default(),
            chaos: None,
            streaming: false,
            elastic: None,
            telemetry: None,
            tiers: None,
        }
    }

    /// Validates the config and hoists every per-run derivation that
    /// does not depend on run state: deployments (with the same-LS /
    /// `supported_on` checks), the sorted-deduped fleet BE model set,
    /// per-GPU-model BE task sets, initial job placement, per-replica
    /// scenarios and SLO tables, the advance-order permutation check,
    /// and — in retained mode — the full arrival trace. Benches that
    /// re-run one config (scaling curves, system × router matrices over
    /// a fixed fleet) prepare once and skip all of it on every
    /// subsequent run.
    pub fn prepare(&self) -> PreparedCluster {
        let n_init = self.gpus.len();
        assert!(n_init > 0, "a fleet needs at least one replica");
        // The lane universe: configured replicas first, then the warm
        // pool. Warm lanes are fully prepared here (deployments,
        // scenarios, SLOs) so run-time activation is pure state flips
        // behind the provisioning delay.
        let lane_gpus: Vec<GpuModel> = self
            .gpus
            .iter()
            .chain(self.elastic.iter().flat_map(|e| e.warm_pool.gpus.iter()))
            .copied()
            .collect();
        let n = lane_gpus.len();
        if let Some(e) = &self.elastic {
            e.validate(n_init, n);
        }
        if let Some(plan) = &self.chaos {
            plan.validate_targets(n_init, n);
        }

        let deps: Vec<Arc<Deployment>> = lane_gpus
            .iter()
            .map(|&g| Deployment::cached_with_options(g, self.compile))
            .collect();
        let n_ls = deps[0].ls_tasks.len();
        for (r, dep) in deps.iter().enumerate() {
            assert_eq!(
                dep.ls_tasks.len(),
                n_ls,
                "replica {r}: every replica must deploy the same LS services"
            );
            assert!(
                self.system.supported_on(&dep.spec),
                "{} is not supported on replica {r} ({})",
                self.system.name(),
                dep.spec.name
            );
        }

        if let Some(tiers) = &self.tiers {
            tiers.validate(n_ls);
        }

        // The distinct BE models the fleet runs, ascending — every
        // replica's scenario lists exactly these tasks, and placement
        // toggles their activity.
        let fleet_models: Vec<usize> = {
            let mut m = self.be_jobs.clone();
            m.sort_unstable();
            m.dedup();
            m
        };
        // One BE task set per distinct GPU model, shared by its replicas.
        let mut be_sets: Vec<(GpuModel, Arc<[Task]>)> = Vec::new();
        for (r, &gpu) in lane_gpus.iter().enumerate() {
            if !be_sets.iter().any(|(g, _)| *g == gpu) {
                let set: Arc<[Task]> = fleet_models
                    .iter()
                    .map(|&m| deps[r].be_tasks[m].clone())
                    .collect();
                be_sets.push((gpu, set));
            }
        }
        let be_set_of = |gpu: GpuModel| -> Arc<[Task]> {
            Arc::clone(
                &be_sets
                    .iter()
                    .find(|(g, _)| *g == gpu)
                    .expect("built above")
                    .1,
            )
        };

        // Initial BE placement: job j starts on replica j mod n_init,
        // scanning forward past replicas that already host its model
        // (≤ 1 instance of a model per replica). Warm lanes start
        // empty — BE work reaches them only via run-time migration.
        let mut init_jobs_on: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, &model) in self.be_jobs.iter().enumerate() {
            let host = (0..n_init)
                .map(|off| (j + off) % n_init)
                .find(|&r| !init_jobs_on[r].iter().any(|&k| self.be_jobs[k] == model))
                .unwrap_or_else(|| panic!("BE model {model} has more jobs than replicas"));
            init_jobs_on[host].push(j);
        }

        let empty_arrivals = Arc::new(ArrivalTrace::default());
        let scenarios: Vec<Scenario> = (0..n)
            .map(|r| Scenario {
                spec: deps[r].spec.clone(),
                ls: Arc::clone(&deps[r].ls_tasks),
                be: be_set_of(lane_gpus[r]),
                ls_instances: self.ls_instances,
                arrivals: Arc::clone(&empty_arrivals),
                horizon_us: self.horizon_us,
            })
            .collect();

        // Per-replica SLOs (replica-local: a slower GPU has a looser
        // SLO, §9.2's n × isolated-p99 with n = LS services + 1 BE
        // slot).
        let slos: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                let services = deps[r].ls_tasks.len() + 1;
                deps[r]
                    .ls_tasks
                    .iter()
                    .map(|t| slo_for(t.profile.isolated_e2e_us, services))
                    .collect()
            })
            .collect();

        let order: Vec<usize> = if self.advance_order.is_empty() {
            (0..n).collect()
        } else {
            assert_eq!(
                self.advance_order.len(),
                n,
                "advance_order must permute 0..n"
            );
            let mut seen = vec![false; n];
            for &r in &self.advance_order {
                assert!(r < n && !seen[r], "advance_order must permute 0..n");
                seen[r] = true;
            }
            self.advance_order.clone()
        };

        assert!(
            !self.streaming || self.controller.period_us > 0.0,
            "streaming mode needs controller ticks to bound the retained window"
        );
        let trace = if self.streaming {
            None
        } else {
            Some(ArrivalTrace::new(per_service_traces(
                &self.trace,
                n_ls,
                self.horizon_us,
                self.seed,
            )))
        };

        // Calendar bucket width ≈ the merged stream's mean inter-arrival
        // gap, so a typical epoch crosses O(1) buckets. Correctness does
        // not depend on the choice; only sweep cost does.
        let merged_hz = self.trace.mean_rate_hz * n_ls as f64;
        let cal_width_us = (1e6 / merged_hz).clamp(0.5, 50_000.0);

        PreparedCluster {
            cfg: self.clone(),
            deps,
            n_ls,
            n_init,
            lane_gpus,
            fleet_models,
            init_jobs_on,
            order,
            slos,
            scenarios,
            trace,
            cal_width_us,
        }
    }
}

/// A validated [`ClusterConfig`] with every config-only derivation done:
/// build once with [`ClusterConfig::prepare`], then run any number of
/// times via [`run_cluster_prepared`].
pub struct PreparedCluster {
    cfg: ClusterConfig,
    deps: Vec<Arc<Deployment>>,
    n_ls: usize,
    /// Configured (initially Active) lanes; lanes `n_init..` are the
    /// warm pool.
    n_init: usize,
    /// GPU model per lane — configured replicas then warm-pool lanes.
    lane_gpus: Vec<GpuModel>,
    fleet_models: Vec<usize>,
    init_jobs_on: Vec<Vec<usize>>,
    order: Vec<usize>,
    slos: Vec<Vec<f64>>,
    scenarios: Vec<Scenario>,
    /// The retained-mode arrival trace (`None` in streaming mode, where
    /// arrivals generate on the fly).
    trace: Option<ArrivalTrace>,
    cal_width_us: f64,
}

impl PreparedCluster {
    /// The config this plan was prepared from.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of LS services every replica deploys — the length a
    /// [`TiersConfig`] must match, one [`crate::tiers::TierConfig`] per
    /// service.
    pub fn n_ls(&self) -> usize {
        self.n_ls
    }

    /// Total LS arrivals the run will inject (materializes the batch
    /// trace's count directly; streams re-derive it generatively).
    pub fn arrival_count(&self) -> usize {
        match &self.trace {
            Some(t) => t.len(),
            None => {
                let mut stream = ArrivalStream::new(
                    &self.cfg.trace,
                    self.n_ls,
                    self.cfg.horizon_us,
                    self.cfg.seed,
                );
                let mut count = 0;
                while stream.pop().is_some() {
                    count += 1;
                }
                count
            }
        }
    }
}

/// What a [`RoutingPolicy`] sees of each replica at an arrival instant,
/// always in replica-index order.
///
/// The calendar clock maintains these *incrementally* — backlog patched
/// by every lane refresh, ratio/residency re-derived at controller
/// ticks and fault instants, health re-evaluated per decision instant
/// only while some lane is down — so a routing decision costs O(1) in
/// fleet size instead of the serial reference clock's O(replicas)
/// rebuild (retained, along with a debug-assert oracle comparing the
/// incremental views against a fresh rebuild every arrival).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    pub gpu: GpuModel,
    /// LS requests admitted or waiting on this replica (O(1) counter).
    pub backlog: usize,
    /// The replica's windowed p99-to-SLO ratio as of the last controller
    /// tick (0 until the first tick, or with the controller off).
    pub window_p99_ratio: f64,
    /// BE jobs currently resident.
    pub resident_be: usize,
    /// Health as the router sees it: heartbeat staleness within the
    /// fault plan's timeout. Always `true` without a fault plan. Note a
    /// freshly crashed replica still *looks* healthy until its heartbeat
    /// ages out — routers are not told who died, they observe staleness,
    /// and requests routed at a dead-but-fresh replica bounce through
    /// the retry path.
    pub healthy: bool,
}

/// Picks a replica for each LS request. Implementations must be
/// deterministic functions of the views (index order) and their own
/// state — never of fleet-internal iteration order.
pub trait RoutingPolicy {
    fn name(&self) -> &'static str;
    /// `task` is the LS service the request belongs to; `at_us` its
    /// arrival time. Returns a replica index `< views.len()`.
    fn route(&mut self, views: &[ReplicaView], task: usize, at_us: f64) -> usize;

    /// Tier-aware variant, called instead of [`route`](Self::route)
    /// when the run carries a [`crate::tiers::TiersConfig`]. `tier_rank`
    /// is the request's tier rank (0 = highest-priority tier); built-in
    /// implementations break ties toward higher tiers on healthy,
    /// non-breaching lanes and must keep rank 0 identical to the
    /// tier-blind `route` (so a single-tier config reproduces tier-blind
    /// routing exactly). Stateful routers must consume the same internal
    /// state either way — the p2c chain draws exactly twice per call.
    fn route_with_tier(
        &mut self,
        views: &[ReplicaView],
        task: usize,
        tier_rank: u32,
        at_us: f64,
    ) -> usize {
        let _ = tier_rank;
        self.route(views, task, at_us)
    }
}

/// Blind rotation over replicas.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        let n = views.len();
        // Rotate past unhealthy replicas; with every replica unhealthy,
        // fall back to the blind rotation (the fleet clock will requeue).
        for off in 0..n {
            let r = (self.next + off) % n;
            if views[r].healthy {
                self.next = r.wrapping_add(1);
                return r;
            }
        }
        let r = self.next % n;
        self.next = self.next.wrapping_add(1);
        r
    }
}

/// Join-shortest-backlog: the replica with the fewest pending+in-flight
/// LS requests (ties → lowest index). Reads only the O(1) backlog
/// counters.
#[derive(Debug, Default)]
pub struct JoinShortestBacklog;

impl RoutingPolicy for JoinShortestBacklog {
    fn name(&self) -> &'static str {
        "shortest_backlog"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        views
            .iter()
            .enumerate()
            .min_by_key(|(i, v)| (!v.healthy, v.backlog, *i))
            .expect("non-empty fleet")
            .0
    }

    /// Tier-aware tie-break: lower tiers prefer lanes already breaching
    /// their SLO window (among healthy lanes, then shortest backlog), so
    /// the clean lanes' headroom is left to the top tier. Rank 0 is the
    /// plain shortest-backlog route, bit for bit.
    fn route_with_tier(
        &mut self,
        views: &[ReplicaView],
        task: usize,
        tier_rank: u32,
        at_us: f64,
    ) -> usize {
        if tier_rank == 0 {
            return self.route(views, task, at_us);
        }
        views
            .iter()
            .enumerate()
            .min_by_key(|(i, v)| (!v.healthy, v.window_p99_ratio <= 1.0, v.backlog, *i))
            .expect("non-empty fleet")
            .0
    }
}

/// SLO-aware power-of-two-choices: sample two replicas from a
/// deterministic splitmix64 chain, prefer the one not breaching its SLO
/// window, then the shorter backlog, then the lower index. O(1) per
/// request regardless of fleet size.
#[derive(Debug)]
pub struct SloAwarePowerOfTwo {
    state: u64,
}

impl SloAwarePowerOfTwo {
    pub fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed ^ 0x70C0_2C40),
        }
    }

    fn draw(&mut self, n: usize) -> usize {
        self.state = splitmix64(self.state);
        (self.state >> 32) as usize % n
    }
}

impl RoutingPolicy for SloAwarePowerOfTwo {
    fn name(&self) -> &'static str {
        "p2c_slo"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        let n = views.len();
        // Both draws always happen so the chain consumes the same number
        // of states whether or not anything is unhealthy — no-chaos runs
        // stay bit-identical to the pre-health router.
        let i = self.draw(n);
        let j = self.draw(n);
        let key = |r: usize| {
            (
                !views[r].healthy,
                views[r].window_p99_ratio > 1.0,
                views[r].backlog,
                r,
            )
        };
        if key(i) <= key(j) {
            i
        } else {
            j
        }
    }

    /// Tier-aware tie-break with the same two draws per call: the top
    /// tier keeps the full SLO-aware key (identical to the tier-blind
    /// route); lower tiers lose the breach-avoidance privilege and
    /// compare on health + backlog only, yielding non-breaching lanes
    /// to higher tiers when both candidates are loaded.
    fn route_with_tier(
        &mut self,
        views: &[ReplicaView],
        _task: usize,
        tier_rank: u32,
        _at_us: f64,
    ) -> usize {
        let n = views.len();
        let i = self.draw(n);
        let j = self.draw(n);
        if tier_rank == 0 {
            let key = |r: usize| {
                (
                    !views[r].healthy,
                    views[r].window_p99_ratio > 1.0,
                    views[r].backlog,
                    r,
                )
            };
            if key(i) <= key(j) {
                return i;
            }
            return j;
        }
        let key = |r: usize| (!views[r].healthy, views[r].backlog, r);
        if key(i) <= key(j) {
            i
        } else {
            j
        }
    }
}

/// The built-in routing policies, for benches sweeping all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    RoundRobin,
    ShortestBacklog,
    P2cSlo,
}

impl RouterKind {
    pub fn all() -> [RouterKind; 3] {
        [
            RouterKind::RoundRobin,
            RouterKind::ShortestBacklog,
            RouterKind::P2cSlo,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round_robin",
            RouterKind::ShortestBacklog => "shortest_backlog",
            RouterKind::P2cSlo => "p2c_slo",
        }
    }

    /// Instantiates the policy (the p2c chain seeds from `seed`).
    pub fn make(self, seed: u64) -> Box<dyn RoutingPolicy> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::ShortestBacklog => Box::new(JoinShortestBacklog),
            RouterKind::P2cSlo => Box::new(SloAwarePowerOfTwo::new(seed)),
        }
    }
}

/// One BE-job migration performed by the fleet controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    pub at_us: f64,
    /// Index into [`ClusterConfig::be_jobs`].
    pub job: usize,
    /// The job's BE model index.
    pub model: usize,
    pub from: usize,
    pub to: usize,
}

/// Per-replica outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSummary {
    pub gpu: GpuModel,
    /// Requests the router sent here.
    pub routed: u64,
    /// Requests completed here.
    pub requests: u64,
    /// Completions that met their (replica-local) SLO.
    pub slo_met: u64,
    /// Every completed latency (µs) — merges into the fleet sketch.
    pub hist: LatencyHistogram,
    /// The replica's derived seed (`cell_seed(cluster seed, replica)`),
    /// for downstream per-replica derivations.
    pub seed: u64,
    /// Total µs this lane was a fleet member (Active or Draining).
    /// Static fleets report the full horizon; warm lanes that never
    /// activated report 0.
    pub active_us: f64,
    /// Requests ripped *out of this lane* back to the retry machinery:
    /// crash drains, graceful drains, and arrivals that bounced off
    /// this lane while it was dead-but-fresh. Fleet-wide,
    /// `Σ replicas.requeued + ClusterResult::refused_arrivals ==
    /// ClusterResult::requeued` (cross-checked in tests).
    pub requeued: u64,
    /// Requeued requests the retry machinery successfully re-dispatched
    /// *into this lane*. Fleet-wide, `Σ replicas.retries ==
    /// ClusterResult::retries`.
    pub retries: u64,
    /// The full per-GPU statistics, exactly as a single-GPU run would
    /// have produced them. In streaming mode the per-request
    /// `ls_completed` logs are empty (folded into the sketches and
    /// recycled); the scalar counters remain exact.
    pub stats: RunStats,
}

/// Aggregate fleet outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResult {
    pub replicas: Vec<ReplicaSummary>,
    /// All completed latencies fleet-wide, merged from the per-replica
    /// sketches in index order (no re-sorting).
    pub fleet_hist: LatencyHistogram,
    pub requests: u64,
    pub slo_met: u64,
    /// SLO-meeting completions per second, fleet-wide.
    pub goodput_hz: f64,
    pub be_completed: u64,
    pub be_preemptions: u64,
    pub engine_events: u64,
    /// Every BE migration the controller performed, in order.
    pub migrations: Vec<Migration>,
    /// LS arrivals the router attempted to place within the horizon.
    /// Conservation under faults (proptested): every one of them is
    /// exactly one of completed (`requests`), timeout-dropped, shed, or
    /// in flight at the horizon.
    pub arrivals_injected: u64,
    /// Requests handed back to the router — ripped out of a crashed
    /// replica, or arriving/routed while no healthy replica existed.
    pub requeued: u64,
    /// Successful re-dispatches of requeued requests.
    pub retries: u64,
    /// Requests dropped after exhausting their retry budget or the
    /// retry timeout.
    pub timeout_drops: u64,
    /// Pending LS requests shed by graceful degradation.
    pub ls_shed: u64,
    /// BE-job park actions taken by graceful degradation.
    pub be_shed: u64,
    /// Requests still queued — on replicas or in the retry queue — when
    /// the horizon closed.
    pub in_flight_at_end: u64,
    /// Fault onsets applied (crashes and slowdown starts).
    pub faults_injected: u64,
    /// Recoveries and clock restores applied.
    pub faults_recovered: u64,
    /// Re-dispatch delay sketch: µs from crash drain (or first refusal)
    /// to successful re-injection, one sample per retry.
    pub redispatch_hist: LatencyHistogram,
    /// Per-request completion records still held in
    /// [`ReplicaSummary::stats`] at the end of the run — the memory the
    /// retained mode grows with the horizon. Streaming mode folds every
    /// window into the sketches and reports 0 here (the bench's bounded-
    /// memory gate).
    pub retained_completions: u64,
    /// Fleet-membership cost: Σ per-lane Active+Draining time, in
    /// replica·seconds. A static fleet pays `replicas × horizon`; the
    /// autoscaler's whole point is holding SLO attainment at fewer of
    /// these.
    pub replica_seconds: f64,
    /// Every membership transition the elastic controller performed,
    /// in order (empty without [`ClusterConfig::elastic`]).
    pub scale_events: Vec<ScaleEvent>,
    /// Scale-up / replacement demands satisfied from the warm pool.
    pub warm_hits: u64,
    /// Demands that found the warm pool empty.
    pub warm_misses: u64,
    /// Σ provisioning delay paid by satisfied demands (µs) — the
    /// cold-start latency attribution.
    pub provision_delay_total_us: f64,
    /// Graceful drains begun (scale-down + SLO-breach).
    pub drains_started: u64,
    /// Drained lanes that fully quiesced and retired within the horizon.
    pub drains_completed: u64,
    /// Pending LS requests handed back to the router by graceful drains
    /// (a subset of `requeued`).
    pub drain_requeued: u64,
    /// Confirmed-dead lanes replaced from the warm pool.
    pub replacements: u64,
    /// Requeues with no lane to attribute: arrivals that found no
    /// healthy routable lane at all. The per-lane remainder lives in
    /// [`ReplicaSummary::requeued`].
    pub refused_arrivals: u64,
    /// Arrivals the tiered admission controller refused outright
    /// (overload + queue-full) — a *terminal* outcome, unlike
    /// `refused_arrivals` requeues. With tiers on, the conservation
    /// identity extends to `arrivals == completed + timeout_drops +
    /// shed + refused_admission + in_flight`. Always 0 without a tier
    /// config.
    pub refused_admission: u64,
    /// Arrivals injected per LS service (index = task id).
    pub arrivals_by_task: Vec<u64>,
    /// Completions per LS service.
    pub completed_by_task: Vec<u64>,
    /// Completions per LS service that met the replica SLO *and* the
    /// service's soft deadline. Without a tier config the deadline is
    /// `INFINITY`, so this is the per-service slice of `slo_met`.
    pub slo_met_by_task: Vec<u64>,
    /// Σ tier-weight × deadline-aware on-SLO completions per second.
    /// Without a tier config every weight is 1.0 and this equals
    /// `goodput_hz`.
    pub weighted_goodput_hz: f64,
    /// Per-tier ledgers, ascending by tier id (empty without a tier
    /// config); each satisfies the per-tier conservation identity.
    pub tier_outcomes: Vec<TierOutcome>,
    /// The flight recorder's output (merged event stream, tick-sampled
    /// metric series, clock phase profile) — `None` unless
    /// [`ClusterConfig::telemetry`] was set. Every *other* field is
    /// bit-identical whether or not the recorder ran.
    pub telemetry: Option<TelemetryResult>,
}

impl ClusterResult {
    /// Fleet-wide percentile from the merged sketch (NaN when no request
    /// completed).
    pub fn fleet_percentile(&self, p: f64) -> f64 {
        self.fleet_hist.percentile(p)
    }

    /// Fraction of completions that met their SLO.
    pub fn slo_attainment(&self) -> f64 {
        self.slo_met as f64 / self.requests.max(1) as f64
    }

    /// Σ `weights[task] × slo_met_by_task[task]` under a caller-supplied
    /// weight vector — the bench uses this to score tier-*blind* arms
    /// with the tiered arm's weights for an apples-to-apples weighted
    /// goodput comparison.
    pub fn weighted_slo_met_with(&self, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.slo_met_by_task.len());
        self.slo_met_by_task
            .iter()
            .zip(weights)
            .map(|(&met, &w)| met as f64 * w)
            .sum()
    }
}

/// Adaptive `Ch_BE`: one resident job keeps the configured base; each
/// additional job widens the BE channel subset proportionally, capped at
/// half the channels.
fn ch_be_for(base: f64, resident: usize) -> f64 {
    if resident <= 1 {
        base
    } else {
        (base * resident as f64).min(0.5)
    }
}

/// A replica's policy. SGDRC variants stay concrete so the controller
/// can [`reconfigure`](Sgdrc::reconfigure) them in place; baselines are
/// boxed trait objects.
enum PolicySlot {
    Sgdrc(Sgdrc),
    Boxed(Box<dyn Policy>),
}

impl PolicySlot {
    fn as_dyn(&mut self) -> &mut dyn Policy {
        match self {
            PolicySlot::Sgdrc(p) => p,
            PolicySlot::Boxed(p) => p.as_mut(),
        }
    }

    fn as_dyn_ref(&self) -> &dyn Policy {
        match self {
            PolicySlot::Sgdrc(p) => p,
            PolicySlot::Boxed(p) => p.as_ref(),
        }
    }
}

/// How the fleet clock schedules replica advances between decision
/// points (router arrivals, controller ticks). Results are bit-identical
/// across every variant — enforced by `tests/cluster_parallel.rs` — so
/// the choice is purely about wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockKind {
    /// The fast clock: busy-lane selection comes from the incremental
    /// [`EventCalendar`] (O(busy lanes) per epoch, not O(replicas)),
    /// and the busy set advances as **one** pool batch per epoch on the
    /// persistent work-stealing pool — or inline, in ascending lane
    /// order, when the pool has a single worker or the batch a single
    /// lane. Per-replica events and histogram deltas merge in canonical
    /// replica order afterwards.
    #[default]
    Parallel,
    /// The reference serial clock: every replica advances in
    /// [`ClusterConfig::advance_order`], one after another, selected by
    /// nothing smarter than the linear scan — exactly the pre-calendar
    /// fleet simulator. Kept as the equivalence oracle the calendar
    /// clock is tested against.
    Serial,
}

/// One replica's cold per-run state: the resumable simulation, its
/// policy, and the per-lane bookkeeping (sketches, drain cursors,
/// counters). Boxed so the [`Fleet`]'s hot arrays stay dense and a pool
/// worker advancing the lane gets exclusive cache lines; shipped across
/// worker threads as one `&mut LaneCell` per epoch batch.
struct LaneCell<'s> {
    sim: ReplicaSim<'s>,
    policy: PolicySlot,
    /// Per-LS-service cursor into `stats.ls_completed` (drained so far).
    seen_done: Vec<usize>,
    /// Latency/SLO ratios since the last controller tick.
    win_hist: LatencyHistogram,
    /// Every completed latency of this replica (µs).
    cum_hist: LatencyHistogram,
    slo_met: u64,
    /// Requests the router sent here.
    routed: u64,
    /// Completions per LS service (tier attribution; summed fleet-wide
    /// into [`ClusterResult::completed_by_task`]).
    done_by_task: Vec<u64>,
    /// Completions per LS service that met the replica SLO *and* the
    /// service's soft deadline (`INFINITY` without a tier config).
    met_by_task: Vec<u64>,
}

/// Compile-time contract for the epoch batch: a [`LaneCell`] crosses
/// worker threads behind the raw-pointer dispatch in [`quiesce`], which
/// the compiler cannot check — assert `Send` explicitly so a non-`Send`
/// field fails here, not in an unsound data race.
#[allow(dead_code)]
fn _assert_lane_cell_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<LaneCell<'static>>();
}

impl<'s> LaneCell<'s> {
    fn begin(&mut self) {
        self.sim.begin(self.policy.as_dyn());
    }

    /// Advances the lane to `until`, returning the pending-work instant
    /// left at exit (the refresh hint — exactly what `next_pending_at`
    /// would recompute). Dispatches on the policy variant so the SGDRC
    /// common case runs the monomorphized pump: `next_timer` and the
    /// per-event `dispatch` devirtualized and inlinable.
    fn advance_to(&mut self, until: Option<f64>) -> Option<f64> {
        match &mut self.policy {
            PolicySlot::Sgdrc(p) => self.sim.advance_hinted(p, until).1,
            PolicySlot::Boxed(p) => self.sim.advance_hinted(p.as_mut(), until).1,
        }
    }

    /// Prefetches the lane's advance working set (engine buffers, LS
    /// queue headers) toward L1 — issued one lane ahead by the epoch
    /// batch. The header loads it performs are hits when
    /// [`prefetch_lane`] ran two lanes ahead.
    #[inline]
    fn prefetch_hot(&self) {
        self.sim.prefetch_hot();
    }

    fn dispatch(&mut self) {
        self.sim.dispatch(self.policy.as_dyn());
    }

    fn inject(&mut self, task: usize, at_us: f64) {
        self.sim.inject_arrival(self.policy.as_dyn(), task, at_us);
        self.routed += 1;
    }

    /// Delivers a re-dispatched request: engine advances to `at_us`, the
    /// request keeps its original `arrival_us` so latency/SLO accounting
    /// includes the outage and the backoff.
    fn inject_requeued(&mut self, task: usize, arrival_us: f64, at_us: f64) {
        self.sim
            .inject_requeued(self.policy.as_dyn(), task, arrival_us, at_us);
        self.routed += 1;
    }

    /// Records completions since the last drain into the windowed and
    /// cumulative sketches — and, with the flight recorder on, into the
    /// lane's event ring (`at_us` = the completion instant, so the
    /// merged stream interleaves completions across lanes in true
    /// order even though they are *observed* at ticks). In streaming
    /// mode the drained records are discarded immediately (capacity
    /// retained), so a controller tick bounds each replica's completion
    /// log at one window.
    fn drain(
        &mut self,
        slos: &[f64],
        soft: &[f64],
        streaming: bool,
        lane: u32,
        tel: &mut TelemetryRt,
    ) {
        let stats = &mut self.sim.state_mut().stats;
        for t in 0..slos.len() {
            let done = &mut stats.ls_completed[t];
            for req in &done[self.seen_done[t]..] {
                let lat = req.latency_us();
                self.cum_hist.record(lat);
                self.win_hist.record(lat / slos[t]);
                let ok = lat <= slos[t];
                self.done_by_task[t] += 1;
                if ok {
                    self.slo_met += 1;
                    if lat <= soft[t] {
                        self.met_by_task[t] += 1;
                    }
                }
                if tel.is_on() {
                    tel.record(
                        req.done_us,
                        lane,
                        EventKind::Completed {
                            task: t as u32,
                            latency_us: lat,
                            slo_ok: ok,
                        },
                    );
                }
            }
            if streaming {
                done.clear();
                self.seen_done[t] = 0;
            } else {
                self.seen_done[t] = done.len();
            }
        }
    }
}

/// The fleet in struct-of-arrays layout: the per-epoch hot scalars in
/// contiguous arrays (what the clock's busy-set selection, the router's
/// views and the controller's scans read), the cold per-lane state boxed
/// in [`LaneCell`]s.
///
/// Invariant: `next_at`, `backlog` and the calendar are *mirrors* of the
/// lane state, re-derived by [`refresh`](Self::refresh) after every lane
/// mutation — route all mutations through [`mutate`](Self::mutate).
/// `next_at[r]` is `INFINITY` for idle or dead lanes, and a lane is
/// stored in the calendar iff its key is finite. Staleness is caught by
/// the debug-assert linear-scan oracle in [`quiesce`] and the view
/// oracle in [`Fleet::assert_views_current`].
struct Fleet<'s> {
    // Boxing keeps the hot mirror arrays below dense — an inline
    // `Vec<LaneCell>` would stride the controller/oracle scans across
    // multi-hundred-byte cells — and gives every cell a stable address
    // for the prefetch and pool-dispatch pointer paths.
    #[allow(clippy::vec_box)]
    cells: Vec<Box<LaneCell<'s>>>,
    /// `next_pending_at` mirror (INFINITY = idle or dead).
    next_at: Vec<f64>,
    /// `ls_backlog` mirror.
    backlog: Vec<u32>,
    /// Windowed p99/SLO ratio as of the last controller tick.
    ratio: Vec<f64>,
    /// Cleared by a crash fault, restored by its recovery. Dead lanes
    /// are skipped by both clock schedules, excluded from controller
    /// decisions, and bounce injected requests into the retry queue.
    alive: Vec<bool>,
    /// GPU model per lane (`PreparedCluster::lane_gpus`).
    gpus: &'s [GpuModel],
    /// Lanes the clock may owe work: Active or Draining members.
    /// Warm, provisioning and retired lanes are frozen — their
    /// `next_at` is `INFINITY` regardless of policy timers, so neither
    /// clock schedule ever advances them. Always all-true without an
    /// elastic config.
    advancing: Vec<bool>,
    /// Lanes in the router's view set: Active members only. Draining
    /// lanes keep advancing (in-flight work finishes in place) but stop
    /// receiving traffic, BE placements and controller attention.
    /// Always all-true without an elastic config, making the
    /// view-compaction below the identity mapping.
    routable: Vec<bool>,
    /// View slot → lane id. `views[s]` describes lane `view_lane[s]`;
    /// the identity mapping while membership is static, so routers —
    /// which draw over `views.len()` — consume RNG exactly as a
    /// non-elastic build would.
    view_lane: Vec<u32>,
    /// Lane id → view slot (`u32::MAX` = not routable).
    lane_slot: Vec<u32>,
    /// Membership has never changed: every lane is routable and the
    /// slot↔lane mapping is the identity. The static-fleet fast path —
    /// `refresh` writes `views[r]` directly and `rebuild_views` skips
    /// the mapping maintenance, restoring the pre-elastic memory
    /// traffic on the hot path. Cleared (forever) at the first
    /// provision/drain/retire; false from the start when warm lanes
    /// exist.
    identity: bool,
    cal: EventCalendar,
    /// Whether this run's clock selects busy lanes from the calendar
    /// ([`ClockKind::Parallel`]) or the serial linear scan.
    use_cal: bool,
    /// Router-facing snapshot of the *routable* lanes, in ascending
    /// lane order (slot `s` is lane `view_lane[s]`). The calendar
    /// clock keeps it *incremental*: backlogs patched by every
    /// [`refresh`](Self::refresh), ratio/residency re-derived by
    /// [`rebuild_views`](Self::rebuild_views) at controller ticks and
    /// fault instants, health re-evaluated per decision point by
    /// [`patch_health`](Self::patch_health) — so routing a request is
    /// O(1) in fleet size. The serial reference clock rebuilds the whole
    /// vector every decision instant, exactly as the pre-SoA clock did.
    views: Vec<ReplicaView>,
    /// `views[r].healthy` population count — the calendar clock's O(1)
    /// form of the all-unhealthy check. Maintained by `rebuild_views`
    /// and `patch_health`; not meaningful on the serial schedule.
    n_healthy: usize,
    /// `!alive` population count. While zero (the overwhelmingly common
    /// case), `patch_health` returns immediately: alive lanes are
    /// healthy by definition, so no per-decision health work exists.
    n_dead: usize,
}

impl<'s> Fleet<'s> {
    fn len(&self) -> usize {
        self.cells.len()
    }

    /// Re-derives lane `r`'s hot mirrors (and calendar key) from its
    /// cell — a pure read of simulation state, identical no matter
    /// which clock schedule or worker advanced the lane.
    fn refresh(&mut self, r: usize) {
        let cell = &self.cells[r];
        let next = if self.alive[r] && self.advancing[r] {
            cell.sim
                .next_pending_at(cell.policy.as_dyn_ref())
                .unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        };
        self.next_at[r] = next;
        let backlog = cell.sim.state().ls_backlog() as u32;
        self.backlog[r] = backlog;
        if self.use_cal {
            self.cal.set(r as u32, next);
            // Keep the incremental router view current: backlog is the
            // only view field that changes outside controller ticks and
            // fault instants, and every backlog change comes through
            // here. Non-routable lanes have no view slot to patch.
            if self.identity {
                self.views[r].backlog = backlog as usize;
            } else {
                let s = self.lane_slot[r];
                if s != u32::MAX {
                    self.views[s as usize].backlog = backlog as usize;
                }
            }
        }
    }

    /// [`refresh`](Self::refresh) for the epoch batch, with the pending
    /// instant the lane's advance just computed on its way out
    /// ([`LaneCell::advance_to`]'s return) — the one call site hot
    /// enough that re-deriving `next_pending_at` (two virtual calls into
    /// a lane that just went cold) is worth skipping. The hint is
    /// asserted against the recompute under `debug_assertions`.
    fn refresh_hinted(&mut self, r: usize, hint: Option<f64>) {
        let next = hint.unwrap_or(f64::INFINITY);
        #[cfg(debug_assertions)]
        {
            let cell = &self.cells[r];
            debug_assert_eq!(
                next,
                cell.sim
                    .next_pending_at(cell.policy.as_dyn_ref())
                    .unwrap_or(f64::INFINITY),
                "advance hint diverged from next_pending_at for lane {r}"
            );
        }
        let backlog = self.cells[r].sim.state().ls_backlog() as u32;
        self.next_at[r] = next;
        self.backlog[r] = backlog;
        if self.use_cal {
            self.cal.set(r as u32, next);
            if self.identity {
                self.views[r].backlog = backlog as usize;
            } else {
                let s = self.lane_slot[r];
                if s != u32::MAX {
                    self.views[s as usize].backlog = backlog as usize;
                }
            }
        }
    }

    /// What the router would see of lane `r` at instant `t`. A lane is
    /// healthy while alive (it acknowledges every decision instant) or
    /// until its crash-frozen heartbeat ages past the timeout.
    ///
    /// The calendar clock reads the dense backlog mirror (kept current
    /// by `refresh`); the serial reference clock chases into the cell,
    /// exactly the per-lane pointer walk the pre-SoA clock paid — its
    /// quiesce sweep maintains no mirrors (see [`quiesce`]).
    fn compute_view(&self, jobs_on: &[Vec<usize>], rt: &ChaosRt, r: usize, t: f64) -> ReplicaView {
        let backlog = if self.use_cal {
            self.backlog[r] as usize
        } else {
            self.cells[r].sim.state().ls_backlog()
        };
        ReplicaView {
            gpu: self.gpus[r],
            backlog,
            window_p99_ratio: self.ratio[r],
            resident_be: jobs_on[r].len(),
            healthy: self.alive[r] || t - rt.last_heartbeat[r] <= rt.heartbeat_timeout_us,
        }
    }

    /// Full O(replicas) rebuild of the router views at instant `t`,
    /// recounting the healthy/dead populations. The serial reference
    /// clock runs this at every decision instant (the pre-SoA clock's
    /// behavior); the calendar clock only at structural changes —
    /// startup, controller ticks, fault instants — and patches
    /// incrementally in between.
    fn rebuild_views(&mut self, jobs_on: &[Vec<usize>], rt: &ChaosRt, t: f64) {
        // Mirror oracle: the dense arrays must agree with the live
        // per-lane state a pre-SoA fleet would have read here. Calendar
        // clock only — the serial schedule does not maintain mirrors
        // between decision instants.
        #[cfg(debug_assertions)]
        if self.use_cal {
            for (r, cell) in self.cells.iter().enumerate() {
                debug_assert_eq!(
                    self.backlog[r] as usize,
                    cell.sim.state().ls_backlog(),
                    "stale backlog mirror for lane {r}"
                );
            }
        }
        self.views.clear();
        self.n_healthy = 0;
        self.n_dead = 0;
        if self.identity {
            // Static membership: the slot↔lane mapping is already the
            // identity and every lane is routable, so skip the mapping
            // maintenance (the serial reference clock runs this per
            // decision instant — the extra O(n) writes are measurable).
            for r in 0..self.len() {
                let v = self.compute_view(jobs_on, rt, r, t);
                self.n_healthy += usize::from(v.healthy);
                self.n_dead += usize::from(!self.alive[r]);
                self.views.push(v);
            }
            return;
        }
        self.view_lane.clear();
        for r in 0..self.len() {
            if !self.routable[r] {
                self.lane_slot[r] = u32::MAX;
                continue;
            }
            let v = self.compute_view(jobs_on, rt, r, t);
            self.n_healthy += usize::from(v.healthy);
            self.n_dead += usize::from(!self.alive[r]);
            self.lane_slot[r] = self.views.len() as u32;
            self.view_lane.push(r as u32);
            self.views.push(v);
        }
    }

    /// Re-evaluates the health bit of every *dead* lane at decision
    /// instant `t` — alive lanes are healthy by definition, so with no
    /// lane down this is a single branch. Calendar clock only.
    fn patch_health(&mut self, rt: &ChaosRt, t: f64) {
        if self.n_dead == 0 {
            return;
        }
        for s in 0..self.views.len() {
            let r = self.view_lane[s] as usize;
            if self.alive[r] {
                continue;
            }
            let healthy = t - rt.last_heartbeat[r] <= rt.heartbeat_timeout_us;
            if healthy != self.views[s].healthy {
                self.views[s].healthy = healthy;
                if healthy {
                    self.n_healthy += 1;
                } else {
                    self.n_healthy -= 1;
                }
            }
        }
    }

    /// Incremental-views oracle: the patched snapshot must equal a fresh
    /// rebuild at `t`, field for field, and the healthy count must match
    /// its population.
    #[cfg(debug_assertions)]
    fn assert_views_current(&self, jobs_on: &[Vec<usize>], rt: &ChaosRt, t: f64) {
        let fresh: Vec<ReplicaView> = (0..self.len())
            .filter(|&r| self.routable[r])
            .map(|r| self.compute_view(jobs_on, rt, r, t))
            .collect();
        debug_assert_eq!(
            self.views, fresh,
            "incremental router views diverged from a fresh rebuild at t={t}"
        );
        debug_assert_eq!(
            self.n_healthy,
            fresh.iter().filter(|v| v.healthy).count(),
            "healthy count diverged at t={t}"
        );
        debug_assert!(
            self.view_lane.len() == self.views.len()
                && self
                    .view_lane
                    .iter()
                    .enumerate()
                    .all(|(s, &r)| self.lane_slot[r as usize] as usize == s),
            "view slot ↔ lane mapping diverged at t={t}"
        );
    }

    /// Runs a mutation against lane `r`'s cell and refreshes its
    /// mirrors — the only sanctioned way to touch a cell mutably
    /// outside the epoch batch (which refreshes explicitly).
    fn mutate<R>(&mut self, r: usize, f: impl FnOnce(&mut LaneCell<'s>) -> R) -> R {
        let out = f(&mut self.cells[r]);
        self.refresh(r);
        out
    }
}

/// Shares the `cells` base pointer with pool workers for the epoch
/// batch. Safety argument lives at the dispatch site in [`quiesce`].
struct CellsPtr<'a, 's>(
    *mut Box<LaneCell<'s>>,
    std::marker::PhantomData<&'a mut LaneCell<'s>>,
);
// SAFETY: the pointer is only dereferenced at distinct indices (the busy
// list holds unique lane ids), yielding disjoint `&mut` — see `quiesce`.
unsafe impl Sync for CellsPtr<'_, '_> {}

impl<'s> CellsPtr<'_, 's> {
    /// # Safety
    /// Callers must guarantee no two live references come from the same
    /// index and `r` is within the cells slice.
    #[allow(clippy::mut_from_ref)]
    unsafe fn lane_mut(&self, r: usize) -> &mut LaneCell<'s> {
        unsafe { &mut *self.0.add(r) }
    }
}

/// Companion to [`CellsPtr`] for the per-batch hint buffer: worker `i`
/// writes only slot `i`, so writes are disjoint by construction.
struct HintsPtr<'a>(*mut f64, std::marker::PhantomData<&'a mut f64>);
// SAFETY: each pool worker writes the slot of the batch index it was
// handed — indices are unique per batch, so no slot is written twice.
unsafe impl Sync for HintsPtr<'_> {}

impl HintsPtr<'_> {
    /// # Safety
    /// Callers must guarantee `i` is in bounds and written at most once
    /// per batch.
    unsafe fn write(&self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v };
    }
}

/// Pulls the head of lane `r`'s cell toward L1 a little ahead of the
/// epoch batch touching it — the busy list is known up front, and the
/// lanes it names have usually been evicted since their last visit (a
/// 512-replica fleet's working set dwarfs L2). Covers the cell's inline
/// header region (sim scalars and the engine's `Vec` headers), so the
/// pointer reads in [`LaneCell::prefetch_hot`] one lane later are hits.
/// No-op architecturally where unsupported; never changes behavior.
#[inline(always)]
fn prefetch_lane(cells: &[Box<LaneCell<'_>>], r: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let p = std::ptr::addr_of!(**cells.get_unchecked(r)) as *const i8;
        for line in 0..6 {
            _mm_prefetch(p.add(line * 64), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (cells, r);
    }
}

/// Quiesces the fleet up to an epoch boundary (`until = Some(t)`) or out
/// to the horizon (`None`).
///
/// With the calendar clock, the busy set — lanes whose next pending work
/// precedes the boundary; for the rest `advance` is a proven no-op —
/// comes from [`EventCalendar::collect_due`] in O(busy + crossed
/// buckets), is checked against the linear-scan oracle under
/// `debug_assertions`, and advances as **one** pool batch per epoch
/// (inline when the pool has one worker): the pool block-partitions the
/// lanes across its deques and steal-on-empty balances whatever skew the
/// epoch has. The serial schedule replays the reference clock exactly:
/// every alive lane, in `order`, advance only — the pre-PR clock kept no
/// mirrors on the epoch path, so neither does this arm (consumers at
/// tick/fault instants trigger an explicit sweep instead).
#[allow(clippy::too_many_arguments)]
fn quiesce(
    fleet: &mut Fleet<'_>,
    busy: &mut Vec<u32>,
    hints: &mut Vec<f64>,
    order: &[usize],
    pool_par: bool,
    horizon_us: f64,
    until: Option<f64>,
    tel: &mut TelemetryRt,
) {
    tel.prof.epochs += 1;
    if fleet.use_cal {
        let t0 = tel.clk();
        busy.clear();
        match until {
            Some(t) => fleet.cal.collect_due(t, true, busy),
            None => fleet.cal.collect_due(horizon_us, false, busy),
        }
        tel.prof.collect_ns += TelemetryRt::lap(t0);
        // The retained oracle: the calendar's busy set must equal the
        // linear scan's, every epoch, before anything advances.
        #[cfg(debug_assertions)]
        {
            let expect: Vec<u32> = fleet
                .cells
                .iter()
                .enumerate()
                .filter_map(|(r, cell)| {
                    if !fleet.alive[r] || !fleet.advancing[r] {
                        return None;
                    }
                    let at = cell.sim.next_pending_at(cell.policy.as_dyn_ref())?;
                    let due = match until {
                        Some(t) => at < t,
                        None => at <= horizon_us,
                    };
                    due.then_some(r as u32)
                })
                .collect();
            debug_assert_eq!(
                *busy, expect,
                "calendar busy set diverged from the linear-scan oracle at {until:?}"
            );
        }
        let t0 = tel.clk();
        tel.prof.lanes_advanced += busy.len() as u64;
        if pool_par && busy.len() > 1 {
            hints.clear();
            hints.resize(busy.len(), f64::NAN);
            let ptr = CellsPtr(fleet.cells.as_mut_ptr(), std::marker::PhantomData);
            let hp = HintsPtr(hints.as_mut_ptr(), std::marker::PhantomData);
            let lanes: &[u32] = busy;
            rayon::for_each_index(lanes.len(), move |i| {
                let r = lanes[i] as usize;
                // SAFETY: `lanes` holds strictly ascending (hence
                // unique) indices < cells.len(), so every iteration
                // dereferences a distinct element — disjoint `&mut`,
                // no aliasing across workers. `LaneCell: Send` is
                // asserted at compile time. The hint slot is indexed by
                // the batch position `i`, unique per iteration.
                let cell = unsafe { ptr.lane_mut(r) };
                let hint = cell.advance_to(until);
                unsafe { hp.write(i, hint.unwrap_or(f64::INFINITY)) };
            });
            for i in 0..busy.len() {
                let hint = hints[i];
                let hint = (hint != f64::INFINITY).then_some(hint);
                fleet.refresh_hinted(busy[i] as usize, hint);
            }
        } else {
            // Inline schedule: advance and refresh in one pass per lane
            // (the lane's state is hot; a second sweep would re-touch
            // every cell from cold), with the next lane's cell
            // prefetched while this one runs.
            for i in 0..busy.len() {
                let r = busy[i] as usize;
                // Two-stage lookahead: headers of lane i+2 stream in
                // while lane i runs, so the deep prefetch for lane i+1
                // (which must *read* those headers to find the engine's
                // buffers) issues from cache hits.
                if i + 2 < busy.len() {
                    prefetch_lane(&fleet.cells, busy[i + 2] as usize);
                }
                if i + 1 < busy.len() {
                    fleet.cells[busy[i + 1] as usize].prefetch_hot();
                }
                let hint = fleet.cells[r].advance_to(until);
                fleet.refresh_hinted(r, hint);
            }
        }
        tel.prof.advance_ns += TelemetryRt::lap(t0);
    } else {
        // Dead and non-member lanes are skipped in both schedules — a
        // crashed replica must not process policy timers or launch work
        // while down, and a warm or retired lane is frozen outright.
        let t0 = tel.clk();
        for &r in order {
            if fleet.alive[r] && fleet.advancing[r] {
                tel.prof.lanes_advanced += 1;
                fleet.cells[r].advance_to(until);
            }
        }
        tel.prof.advance_ns += TelemetryRt::lap(t0);
    }
}

/// One orphaned request waiting for re-dispatch.
#[derive(Debug, Clone, Copy)]
struct Requeue {
    task: usize,
    /// Original arrival timestamp — survives every re-dispatch so
    /// latency/SLO accounting charges the outage to the request.
    arrival_us: f64,
    /// When the request was orphaned (crash drain or routing refusal).
    drained_at: f64,
    /// Dispatch attempts made so far (1 after the initial requeue).
    attempt: u32,
    ready_at: f64,
}

/// The fleet clock's chaos runtime: the expanded fault timeline, the
/// retry queue, heartbeat/health bookkeeping and resilience counters.
/// Instantiated even without a plan (empty timeline, infinite heartbeat
/// timeout) so the clock has one code path; everything here stays inert
/// and zero-valued on happy-path runs.
struct ChaosRt {
    timeline: Vec<ScheduledFault>,
    next_fault: usize,
    retry: RetryConfig,
    degradation: DegradationConfig,
    heartbeat_timeout_us: f64,
    retry_q: Vec<Requeue>,
    /// Last decision instant each replica was seen alive. Alive replicas
    /// acknowledge every decision instant, so instead of an O(replicas)
    /// stamp sweep per instant the clock keeps one scalar
    /// (`last_decision_us`) and *freezes* it into a replica's slot at
    /// the moment it crashes — the only time the per-replica value can
    /// diverge from the scalar. Recoveries overwrite with the recovery
    /// instant, exactly as the sweep would have at the next instant.
    last_heartbeat: Vec<f64>,
    /// The most recent tick/retry/arrival instant — what every alive
    /// replica's heartbeat would read had it been stamped individually.
    last_decision_us: f64,
    /// Jobs parked by graceful degradation (stay parked across
    /// migrations until the resume rule fires).
    job_shed: Vec<bool>,
    /// Jobs with no eligible surviving host, re-placed at recoveries.
    homeless: Vec<usize>,
    drain_buf: Vec<(usize, f64)>,
    requeued: u64,
    retries: u64,
    /// Per-lane attribution of `requeued`: requests ripped out of lane
    /// `r` (crash drains, graceful drains, dead-but-fresh bounces).
    /// `requeued == lane_requeued.sum() + refused`.
    lane_requeued: Vec<u64>,
    /// Per-lane attribution of `retries`: successful re-dispatches
    /// delivered *into* lane `r`. `retries == lane_retries.sum()`.
    lane_retries: Vec<u64>,
    /// Requeues with no lane to charge — arrivals refused because no
    /// routable lane looked healthy.
    refused: u64,
    timeout_drops: u64,
    ls_shed: u64,
    be_shed: u64,
    /// Per-LS-service attribution of `timeout_drops` (tier ledgers).
    /// `timeout_drops == drops_by_task.sum()`.
    drops_by_task: Vec<u64>,
    /// Per-LS-service attribution of `ls_shed` (tier ledgers).
    /// `ls_shed == shed_by_task.sum()`.
    shed_by_task: Vec<u64>,
    faults_injected: u64,
    faults_recovered: u64,
    redispatch_hist: LatencyHistogram,
}

impl ChaosRt {
    fn new(plan: Option<&FaultPlan>, n: usize, n_jobs: usize, n_ls: usize) -> Self {
        let (timeline, retry, degradation, heartbeat_timeout_us) = match plan {
            Some(p) => (
                p.timeline(n),
                p.retry.clone(),
                p.degradation.clone(),
                p.heartbeat_timeout_us,
            ),
            None => (
                Vec::new(),
                RetryConfig::default(),
                DegradationConfig::default(),
                f64::INFINITY,
            ),
        };
        Self {
            timeline,
            next_fault: 0,
            retry,
            degradation,
            heartbeat_timeout_us,
            retry_q: Vec::new(),
            last_heartbeat: vec![0.0; n],
            last_decision_us: 0.0,
            job_shed: vec![false; n_jobs],
            homeless: Vec::new(),
            drain_buf: Vec::new(),
            requeued: 0,
            retries: 0,
            lane_requeued: vec![0; n],
            lane_retries: vec![0; n],
            refused: 0,
            timeout_drops: 0,
            ls_shed: 0,
            be_shed: 0,
            drops_by_task: vec![0; n_ls],
            shed_by_task: vec![0; n_ls],
            faults_injected: 0,
            faults_recovered: 0,
            redispatch_hist: LatencyHistogram::new(),
        }
    }

    fn next_fault_at(&self) -> f64 {
        self.timeline
            .get(self.next_fault)
            .map_or(f64::INFINITY, |f| f.at_us)
    }

    fn next_retry_at(&self) -> f64 {
        self.retry_q
            .iter()
            .map(|e| e.ready_at)
            .fold(f64::INFINITY, f64::min)
    }

    /// Hands an orphaned request to the retry queue — or straight to the
    /// drop counter when the effective policy is drop-on-crash
    /// (`max_retries` 0; per-tier with a tier config, fleet-wide
    /// `RetryConfig::max_retries` otherwise — the caller passes
    /// [`TierRt::max_retries_for`], which folds both cases). `from`
    /// attributes the requeue to the lane the request was ripped out of
    /// (`None` = an arrival refused fleet-wide). Returns whether the
    /// request was actually queued (`false` = dropped immediately).
    fn requeue(
        &mut self,
        task: usize,
        arrival_us: f64,
        t: f64,
        from: Option<usize>,
        max_retries: u32,
    ) -> bool {
        self.requeued += 1;
        match from {
            Some(r) => self.lane_requeued[r] += 1,
            None => self.refused += 1,
        }
        if max_retries == 0 {
            self.timeout_drops += 1;
            self.drops_by_task[task] += 1;
            false
        } else {
            self.retry_q.push(Requeue {
                task,
                arrival_us,
                drained_at: t,
                attempt: 1,
                ready_at: t + self.retry.backoff_us,
            });
            true
        }
    }
}

/// What the admission controller decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Route immediately — the tier is not browned out (or tiers are
    /// off, in which case every arrival admits).
    Admit,
    /// Park in the tier's bounded FIFO queue; flushed at the first tick
    /// where the brownout ladder recedes below the tier's queue level.
    Queue,
    /// Terminal refusal, attributed to the reason in telemetry and the
    /// per-tier conservation ledger.
    Refuse(RefusalReason),
}

/// The fleet clock's tiered-SLO runtime: per-service tier attributes,
/// the brownout ladder, bounded admission queues and refusal ledgers.
/// Like [`ChaosRt`], it is instantiated unconditionally; without a
/// [`TiersConfig`] the per-task vectors mirror the fleet-wide
/// [`RetryConfig`] exactly (same retry budget, same hard deadline,
/// weight 1, rank 0, infinite soft deadline) so the requeue/retry/drain
/// paths run one code path with bit-identical behavior.
struct TierRt {
    enabled: bool,
    /// Per-service priority rank: 0 = highest tier, ascending = lower.
    /// Services of the same tier id share a rank.
    rank: Vec<u32>,
    /// Per-service goodput weight (1.0 when tiers are off).
    weight: Vec<f64>,
    /// Per-service soft (SLO-credit) deadline in µs; +inf when tiers
    /// are off so every completion counts, matching plain goodput.
    soft: Vec<f64>,
    /// Per-service hard deadline in µs — past it a queued or retried
    /// request is doomed and dropped. Mirrors `RetryConfig::timeout_us`
    /// when tiers are off.
    hard: Vec<f64>,
    /// Per-service retry budget. Mirrors `RetryConfig::max_retries`
    /// when tiers are off.
    max_retries: Vec<u32>,
    /// Per-service tier id (telemetry labels only — control decisions
    /// use `rank`).
    tier_id_of: Vec<u32>,
    /// Ascending distinct tier ids; index = rank.
    tier_ids: Vec<u32>,
    tier_class: Vec<AdmissionClass>,
    tier_weight: Vec<f64>,
    /// Brownout level at which rank r starts queueing / shedding.
    /// `u32::MAX` for Guaranteed tiers — they never queue or shed.
    queue_level: Vec<u32>,
    shed_level: Vec<u32>,
    /// Current ladder level: 0 = normal, 1 = BE parked fleet-wide,
    /// then alternating queue/shed per eligible tier.
    level: u32,
    max_level: u32,
    /// Consecutive calm ticks observed; de-escalates one level per
    /// `hold_ticks` of calm (hysteresis).
    calm_ticks: u32,
    /// Per-rank bounded admission queues of `(task, arrival_us)`.
    queues: Vec<VecDeque<(u32, f64)>>,
    queue_capacity: usize,
    enter_backlog: usize,
    exit_backlog: usize,
    hold_ticks: u32,
    shed_per_tick: usize,
    /// Per-service admission ledgers (always maintained; zero when
    /// tiers are off since every arrival admits).
    admitted_by_task: Vec<u64>,
    queued_by_task: Vec<u64>,
    refused_overload_by_task: Vec<u64>,
    refused_queue_full_by_task: Vec<u64>,
}

impl TierRt {
    fn new(tiers: Option<&TiersConfig>, n_ls: usize, retry: &RetryConfig) -> Self {
        match tiers {
            Some(cfg) => {
                let tier_ids = cfg.tier_ids();
                let n_tiers = tier_ids.len();
                let rank_of =
                    |id: u32| tier_ids.iter().position(|&x| x == id).expect("known tier") as u32;
                let mut tier_class = vec![AdmissionClass::Guaranteed; n_tiers];
                let mut tier_weight = vec![1.0; n_tiers];
                for tc in &cfg.tiers {
                    let r = rank_of(tc.tier) as usize;
                    tier_class[r] = tc.class;
                    tier_weight[r] = tc.weight;
                }
                // Brownout ladder order: most-sheddable class first
                // (BestEffort before Burstable), then lower-priority
                // tiers (higher rank) first within a class. Guaranteed
                // tiers never appear on the ladder.
                let mut eligible: Vec<usize> = (0..n_tiers)
                    .filter(|&r| tier_class[r] != AdmissionClass::Guaranteed)
                    .collect();
                eligible.sort_by_key(|&r| {
                    (
                        std::cmp::Reverse(tier_class[r].brown_severity()),
                        std::cmp::Reverse(r),
                    )
                });
                let mut queue_level = vec![u32::MAX; n_tiers];
                let mut shed_level = vec![u32::MAX; n_tiers];
                for (p, &r) in eligible.iter().enumerate() {
                    let p = p as u32;
                    queue_level[r] = 2 * p + 2;
                    shed_level[r] = 2 * p + 3;
                }
                let max_level = 1 + 2 * eligible.len() as u32;
                Self {
                    enabled: true,
                    rank: cfg.tiers.iter().map(|tc| rank_of(tc.tier)).collect(),
                    weight: cfg.tiers.iter().map(|tc| tc.weight).collect(),
                    soft: cfg.tiers.iter().map(|tc| tc.soft_deadline_us).collect(),
                    hard: cfg.tiers.iter().map(|tc| tc.hard_deadline_us).collect(),
                    max_retries: cfg.tiers.iter().map(|tc| tc.max_retries).collect(),
                    tier_id_of: cfg.tiers.iter().map(|tc| tc.tier).collect(),
                    tier_ids,
                    tier_class,
                    tier_weight,
                    queue_level,
                    shed_level,
                    level: 0,
                    max_level,
                    calm_ticks: 0,
                    queues: vec![VecDeque::new(); n_tiers],
                    queue_capacity: cfg.queue_capacity,
                    enter_backlog: cfg.enter_backlog,
                    exit_backlog: cfg.exit_backlog,
                    hold_ticks: cfg.hold_ticks,
                    shed_per_tick: cfg.shed_per_tick,
                    admitted_by_task: vec![0; n_ls],
                    queued_by_task: vec![0; n_ls],
                    refused_overload_by_task: vec![0; n_ls],
                    refused_queue_full_by_task: vec![0; n_ls],
                }
            }
            None => Self {
                enabled: false,
                rank: vec![0; n_ls],
                weight: vec![1.0; n_ls],
                soft: vec![f64::INFINITY; n_ls],
                hard: vec![retry.timeout_us; n_ls],
                max_retries: vec![retry.max_retries; n_ls],
                tier_id_of: vec![0; n_ls],
                tier_ids: Vec::new(),
                tier_class: Vec::new(),
                tier_weight: Vec::new(),
                queue_level: Vec::new(),
                shed_level: Vec::new(),
                level: 0,
                max_level: 0,
                calm_ticks: 0,
                queues: Vec::new(),
                queue_capacity: 0,
                enter_backlog: usize::MAX,
                exit_backlog: usize::MAX,
                hold_ticks: 0,
                shed_per_tick: 0,
                admitted_by_task: vec![0; n_ls],
                queued_by_task: vec![0; n_ls],
                refused_overload_by_task: vec![0; n_ls],
                refused_queue_full_by_task: vec![0; n_ls],
            },
        }
    }

    fn n_tiers(&self) -> usize {
        self.tier_ids.len()
    }

    /// Effective retry budget for `task` — per-tier with a config,
    /// the fleet-wide `RetryConfig` value otherwise (mirrored at
    /// construction, so this is always just an index).
    fn max_retries_for(&self, task: usize) -> u32 {
        self.max_retries[task]
    }

    /// Admission decision for one arrival — a pure function of the
    /// current ladder level and the tier queue's occupancy, so it is
    /// identical under both fleet clocks (the ladder only moves at
    /// ticks, which order before arrivals at equal timestamps).
    fn admit(&self, task: usize) -> Admission {
        if !self.enabled {
            return Admission::Admit;
        }
        let r = self.rank[task] as usize;
        if self.level >= self.shed_level[r] {
            return Admission::Refuse(RefusalReason::Overload);
        }
        if self.level >= self.queue_level[r] {
            if self.queues[r].len() >= self.queue_capacity {
                return Admission::Refuse(RefusalReason::QueueFull);
            }
            return Admission::Queue;
        }
        Admission::Admit
    }

    /// One brownout-ladder step, evaluated once per controller tick.
    /// Escalates one level per pressured tick; a calm tick increments
    /// the hysteresis counter and only after `hold_ticks` consecutive
    /// calm ticks does the ladder recede one level (re-admitting tiers
    /// in reverse shed order).
    fn step_ladder(&mut self, pressured: bool, calm: bool) {
        if pressured {
            self.calm_ticks = 0;
            if self.level < self.max_level {
                self.level += 1;
            }
        } else if calm && self.level > 0 {
            self.calm_ticks += 1;
            if self.calm_ticks >= self.hold_ticks {
                self.level -= 1;
                self.calm_ticks = 0;
            }
        } else {
            // Neither pressured nor fully calm: hold the level and
            // restart the hysteresis window.
            self.calm_ticks = 0;
        }
    }

    /// Total requests parked in admission queues (end-of-run in-flight
    /// accounting and per-tier backlog telemetry).
    fn queued_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// One lane's membership lifecycle. Configured lanes start `Active`,
/// warm-pool lanes `Warm`; scale-up moves `Warm → Provisioning →
/// Active` behind the seeded provisioning delay, graceful scale-down
/// moves `Active → Draining → Retired`, and crash replacement retires a
/// confirmed-dead lane directly. `Retired` is terminal — a retired
/// lane never rejoins (the warm pool provides fresh capacity instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    Active,
    Warm,
    Provisioning,
    Draining,
    Retired,
}

/// The fleet clock's elastic runtime: per-lane lifecycle state, the
/// provisioning schedule (whose min is the clock's *scale* decision
/// point), cooldown/breach bookkeeping, and membership accounting.
/// Instantiated even without an elastic config — everything stays inert
/// (every lane `Active`, `next_ready_us` infinite) so the clock keeps
/// one code path and non-elastic runs stay bit-identical.
struct ElasticRt {
    enabled: bool,
    policy: Option<Box<dyn ScalingPolicy>>,
    state: Vec<LaneState>,
    /// Activation instant of each lane's membership stint (0 for
    /// configured lanes).
    activated_at: Vec<f64>,
    /// Accumulated Active+Draining µs over *completed* stints; the open
    /// stint is folded in when the lane retires or the horizon closes.
    active_us: Vec<f64>,
    /// Provisioning lanes' ready instants (`INFINITY` otherwise).
    ready_at: Vec<f64>,
    /// `min(ready_at)` — the next scale decision point, kept as a
    /// scalar so the clock's epoch loop pays O(1) for it.
    next_ready_us: f64,
    /// First instant each member lane was seen dead (`INFINITY` while
    /// alive or already written off). Crash replacement fires once
    /// `t - dead_since >= replace_after_us`.
    dead_since: Vec<f64>,
    /// Consecutive controller ticks each Active lane spent above the
    /// breach-drain ratio.
    breach_ticks: Vec<u32>,
    /// Provisioning-delay draw index for the splitmix64 jitter chain.
    draws: u64,
    last_up_us: f64,
    last_down_us: f64,
    warm_hits: u64,
    warm_misses: u64,
    provision_delay_total_us: f64,
    drains_started: u64,
    drains_completed: u64,
    drain_requeued: u64,
    replacements: u64,
    events: Vec<ScaleEvent>,
    /// `arrivals_injected` at the last tick — windows the arrival rate
    /// signal.
    prev_arrivals: u64,
}

impl ElasticRt {
    fn new(elastic: Option<&ElasticConfig>, n: usize, n_init: usize) -> Self {
        let mut state = vec![LaneState::Active; n];
        for s in state.iter_mut().skip(n_init) {
            *s = LaneState::Warm;
        }
        Self {
            enabled: elastic.is_some(),
            policy: elastic.map(|e| e.policy.make()),
            state,
            activated_at: vec![0.0; n],
            active_us: vec![0.0; n],
            ready_at: vec![f64::INFINITY; n],
            next_ready_us: f64::INFINITY,
            dead_since: vec![f64::INFINITY; n],
            breach_ticks: vec![0; n],
            draws: 0,
            last_up_us: f64::NEG_INFINITY,
            last_down_us: f64::NEG_INFINITY,
            warm_hits: 0,
            warm_misses: 0,
            provision_delay_total_us: 0.0,
            drains_started: 0,
            drains_completed: 0,
            drain_requeued: 0,
            replacements: 0,
            events: Vec::new(),
            prev_arrivals: 0,
        }
    }

    fn count(&self, s: LaneState) -> usize {
        self.state.iter().filter(|&&x| x == s).count()
    }

    fn recompute_next_ready(&mut self) {
        self.next_ready_us = self.ready_at.iter().copied().fold(f64::INFINITY, f64::min);
    }

    /// Crash interop: a crash mid-provisioning aborts the scale-up (the
    /// lane falls back to the warm pool, usable again after recovery);
    /// a crashed member starts its replacement confirmation window.
    fn on_crash(&mut self, r: usize, at_us: f64) {
        if !self.enabled {
            return;
        }
        match self.state[r] {
            LaneState::Provisioning => {
                self.state[r] = LaneState::Warm;
                self.ready_at[r] = f64::INFINITY;
                self.recompute_next_ready();
                self.events.push(ScaleEvent {
                    at_us,
                    replica: r,
                    kind: ScaleEventKind::CancelProvision,
                });
            }
            LaneState::Active | LaneState::Draining => {
                self.dead_since[r] = self.dead_since[r].min(at_us);
            }
            LaneState::Warm | LaneState::Retired => {}
        }
    }

    fn on_recover(&mut self, r: usize) {
        if self.enabled {
            self.dead_since[r] = f64::INFINITY;
        }
    }
}

/// Starts provisioning the lowest-index available warm lane (warm-pool
/// hit), or records a miss when the pool is exhausted. The delay draw
/// comes from the run-seeded splitmix64 chain — deterministic per draw
/// index, independent of clock schedule.
fn start_provision(
    ert: &mut ElasticRt,
    e: &ElasticConfig,
    seed: u64,
    t: f64,
    cause: ScaleCause,
    alive: &[bool],
) -> bool {
    let w = (0..ert.state.len()).find(|&r| ert.state[r] == LaneState::Warm && alive[r]);
    let Some(w) = w else {
        ert.warm_misses += 1;
        return false;
    };
    ert.warm_hits += 1;
    let delay = provision_delay(&e.warm_pool, seed, ert.draws);
    ert.draws += 1;
    let ready = t + delay;
    ert.provision_delay_total_us += delay;
    ert.state[w] = LaneState::Provisioning;
    ert.ready_at[w] = ready;
    ert.next_ready_us = ert.next_ready_us.min(ready);
    ert.events.push(ScaleEvent {
        at_us: t,
        replica: w,
        kind: ScaleEventKind::Provision {
            cause,
            ready_at_us: ready,
        },
    });
    true
}

/// Removes lane `r` from the fleet for good: folds its open membership
/// stint into the lifetime accounting and freezes the lane (both clock
/// schedules skip it from here on). Callers rebuild the router views
/// before the next routing decision.
fn retire_lane(fleet: &mut Fleet, ert: &mut ElasticRt, r: usize, t: f64) {
    ert.active_us[r] += t - ert.activated_at[r];
    ert.state[r] = LaneState::Retired;
    fleet.advancing[r] = false;
    fleet.routable[r] = false;
    fleet.identity = false;
    fleet.refresh(r);
    ert.events.push(ScaleEvent {
        at_us: t,
        replica: r,
        kind: ScaleEventKind::Retire,
    });
}

/// Begins a graceful drain of member lane `v`: the lane leaves the
/// routable set, its queued (not yet admitted) LS requests go back to
/// the router through the retry machinery in the merged stream's
/// canonical `(time, task)` order, and its resident BE jobs migrate to
/// routable survivors with their closed-loop cursors preserved (the
/// §7.1 parking path — a running kernel gets the eviction flag, not a
/// cancel). In-flight LS requests keep running here; the lane retires
/// at the first controller tick that finds it fully quiesced.
#[allow(clippy::too_many_arguments)]
fn drain_lane_start(
    cfg: &ClusterConfig,
    prep: &PreparedCluster,
    t: f64,
    fleet: &mut Fleet,
    jobs_on: &mut [Vec<usize>],
    migrations: &mut Vec<Migration>,
    rt: &mut ChaosRt,
    trt: &TierRt,
    ert: &mut ElasticRt,
    tel: &mut TelemetryRt,
    v: usize,
    cause: ScaleCause,
) {
    ert.state[v] = LaneState::Draining;
    fleet.routable[v] = false;
    fleet.identity = false;
    ert.drains_started += 1;
    ert.events.push(ScaleEvent {
        at_us: t,
        replica: v,
        kind: ScaleEventKind::DrainStart { cause },
    });
    let mut drained = std::mem::take(&mut rt.drain_buf);
    drained.clear();
    fleet.mutate(v, |cell| cell.sim.state_mut().drain_pending(&mut drained));
    drained.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    ert.drain_requeued += drained.len() as u64;
    for &(task, arrival_us) in &drained {
        let queued = rt.requeue(task, arrival_us, t, Some(v), trt.max_retries_for(task));
        if tel.is_on() {
            let task = task as u32;
            tel.record(
                t,
                v as u32,
                EventKind::Requeued {
                    task,
                    cause: RequeueCause::Drain,
                },
            );
            if !queued {
                tel.record(t, v as u32, EventKind::TimeoutDropped { task });
            }
        }
    }
    rt.drain_buf = drained;
    let jobs = std::mem::take(&mut jobs_on[v]);
    for job in jobs {
        let model = cfg.be_jobs[job];
        let b = prep
            .fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model");
        fleet.mutate(v, |cell| {
            let st = cell.sim.state_mut();
            st.set_be_active(b, false);
            if st.be_launch.map(|l| l.task) == Some(b) {
                st.preempt_be();
            }
        });
        match be_landing_site(cfg, fleet, jobs_on, model, Some(v)) {
            Some(dst) => {
                place_be_job(
                    cfg,
                    &prep.deps,
                    &prep.fleet_models,
                    jobs_on,
                    fleet,
                    rt,
                    job,
                    dst,
                );
                migrations.push(Migration {
                    at_us: t,
                    job,
                    model,
                    from: v,
                    to: dst,
                });
            }
            None => rt.homeless.push(job),
        }
    }
}

/// Activates every provisioning lane whose ready instant has arrived —
/// the handler of the clock's *scale* decision point. Mirrors the
/// fault-recovery template: the lane's empty engine idles forward to
/// `t`, the policy dispatches its opening launches, the heartbeat
/// stamps fresh, and stranded BE jobs get a re-homing pass (a fresh
/// empty member is the best landing site there is).
fn activate_ready(
    cfg: &ClusterConfig,
    prep: &PreparedCluster,
    t: f64,
    fleet: &mut Fleet,
    jobs_on: &mut [Vec<usize>],
    rt: &mut ChaosRt,
    ert: &mut ElasticRt,
) {
    let n = fleet.len();
    for r in 0..n {
        if ert.state[r] != LaneState::Provisioning || ert.ready_at[r] > t {
            continue;
        }
        ert.state[r] = LaneState::Active;
        ert.activated_at[r] = t;
        ert.ready_at[r] = f64::INFINITY;
        fleet.advancing[r] = true;
        fleet.routable[r] = true;
        fleet.identity = false;
        rt.last_heartbeat[r] = t;
        fleet.mutate(r, |cell| {
            cell.sim.state_mut().engine.advance_idle(t);
            cell.dispatch();
        });
        ert.events.push(ScaleEvent {
            at_us: t,
            replica: r,
            kind: ScaleEventKind::Activate,
        });
        let homeless = std::mem::take(&mut rt.homeless);
        for job in homeless {
            let model = cfg.be_jobs[job];
            match be_landing_site(cfg, fleet, jobs_on, model, None) {
                Some(dst) => {
                    place_be_job(
                        cfg,
                        &prep.deps,
                        &prep.fleet_models,
                        jobs_on,
                        fleet,
                        rt,
                        job,
                        dst,
                    );
                }
                None => rt.homeless.push(job),
            }
        }
    }
    ert.recompute_next_ready();
}

/// One controller tick's capacity decision, run right after the window
/// drain (fresh ratios) and before the migration rebalance. Four
/// phases, each a deterministic index-order scan of fleet state:
/// retire quiesced drains, replace confirmed-dead members, drain
/// sustained SLO breachers, then apply the scaling policy's verdict
/// under the min/max bounds and cooldowns.
#[allow(clippy::too_many_arguments)]
fn elastic_step(
    cfg: &ClusterConfig,
    prep: &PreparedCluster,
    t: f64,
    fleet: &mut Fleet,
    jobs_on: &mut [Vec<usize>],
    migrations: &mut Vec<Migration>,
    rt: &mut ChaosRt,
    trt: &TierRt,
    ert: &mut ElasticRt,
    tel: &mut TelemetryRt,
    arrivals_injected: u64,
    window_done: u64,
) {
    let n = fleet.len();
    let e = cfg.elastic.as_ref().expect("elastic_step needs a config");

    // Phase 1 — retirement: a draining lane with nothing queued or in
    // flight leaves the fleet. Tick-granular by design: membership
    // changes only at decision points both clock schedules share.
    for r in 0..n {
        if ert.state[r] == LaneState::Draining && fleet.cells[r].sim.state().ls_backlog() == 0 {
            ert.drains_completed += 1;
            retire_lane(fleet, ert, r, t);
        }
    }

    // Phase 2 — crash replacement: a member dead past the confirmation
    // window is written off and replaced from the warm pool.
    // Replacement is capacity-neutral, so bounds and cooldowns do not
    // apply. Until confirmation the dead lane stays routable — routers
    // observe its heartbeat staleness and route around it, exactly the
    // PR 6 semantics.
    if e.replace_after_us.is_finite() {
        for r in 0..n {
            if ert.state[r] != LaneState::Active
                || fleet.alive[r]
                || t - ert.dead_since[r] < e.replace_after_us
            {
                continue;
            }
            ert.dead_since[r] = f64::INFINITY;
            retire_lane(fleet, ert, r, t);
            if start_provision(ert, e, cfg.seed, t, ScaleCause::CrashReplace, &fleet.alive) {
                ert.replacements += 1;
            }
        }
    }

    // Phase 3 — SLO-breach draining: a lane breaching for
    // `breach_drain_ticks` consecutive windows is drained (worst ratio
    // first, one per tick) and a warm replacement provisioned.
    if e.breach_drain_ticks > 0 {
        for r in 0..n {
            if ert.state[r] == LaneState::Active
                && fleet.alive[r]
                && fleet.ratio[r] > e.breach_drain_ratio
            {
                ert.breach_ticks[r] += 1;
            } else {
                ert.breach_ticks[r] = 0;
            }
        }
        let victim = (0..n)
            .filter(|&r| ert.breach_ticks[r] >= e.breach_drain_ticks)
            .max_by(|&a, &b| fleet.ratio[a].total_cmp(&fleet.ratio[b]).then(b.cmp(&a)));
        if let Some(v) = victim {
            let active = ert.count(LaneState::Active);
            let has_warm = (0..n).any(|r| ert.state[r] == LaneState::Warm && fleet.alive[r]);
            if active > e.min_replicas || has_warm {
                ert.breach_ticks[v] = 0;
                drain_lane_start(
                    cfg,
                    prep,
                    t,
                    fleet,
                    jobs_on,
                    migrations,
                    rt,
                    trt,
                    ert,
                    tel,
                    v,
                    ScaleCause::SloBreach,
                );
                start_provision(ert, e, cfg.seed, t, ScaleCause::SloBreach, &fleet.alive);
            }
        }
    }

    // Phase 4 — the scaling policy, clamped and rate-limited.
    let active = ert.count(LaneState::Active);
    let provisioning = ert.count(LaneState::Provisioning);
    let mut healthy_active = 0usize;
    let mut warm_available = 0usize;
    let mut backlog_sum = 0u64;
    let mut worst = 0.0f64;
    for r in 0..n {
        match ert.state[r] {
            LaneState::Active if fleet.alive[r] => {
                healthy_active += 1;
                backlog_sum += u64::from(fleet.backlog[r]);
                worst = worst.max(fleet.ratio[r]);
            }
            LaneState::Warm if fleet.alive[r] => warm_available += 1,
            _ => {}
        }
    }
    let signals = FleetSignals {
        at_us: t,
        active,
        healthy_active,
        provisioning,
        warm_available,
        window_p99_ratio: worst,
        window_completions: window_done,
        window_arrivals: arrivals_injected - ert.prev_arrivals,
        backlog_per_active: backlog_sum as f64 / active.max(1) as f64,
    };
    ert.prev_arrivals = arrivals_injected;
    let desired = ert
        .policy
        .as_ref()
        .expect("policy exists whenever elastic_step runs")
        .desired_replicas(&signals)
        .clamp(e.min_replicas, e.max_replicas);
    let committed = active + provisioning;
    if desired > committed {
        if t - ert.last_up_us >= e.up_cooldown_us {
            let mut started = false;
            for _ in committed..desired {
                if !start_provision(ert, e, cfg.seed, t, ScaleCause::Load, &fleet.alive) {
                    break;
                }
                started = true;
            }
            if started {
                ert.last_up_us = t;
            }
        }
    } else if desired < active && t - ert.last_down_us >= e.down_cooldown_us {
        // `desired >= min_replicas` after the clamp, so draining down
        // to it never undershoots the floor.
        let mut drained_any = false;
        for _ in desired..active {
            // Least-loaded lane first; ties scale down the newest.
            let victim = (0..n)
                .filter(|&r| ert.state[r] == LaneState::Active && fleet.alive[r])
                .min_by_key(|&r| (fleet.backlog[r], std::cmp::Reverse(r)));
            let Some(v) = victim else { break };
            drain_lane_start(
                cfg,
                prep,
                t,
                fleet,
                jobs_on,
                migrations,
                rt,
                trt,
                ert,
                tel,
                v,
                ScaleCause::Load,
            );
            drained_any = true;
        }
        if drained_any {
            ert.last_down_us = t;
        }
    }
}

/// Re-targets an SGDRC replica's policy at its *current* effective spec:
/// nominal clocks scaled by the engine's clock factor (thermal throttle,
/// stall, straggler), with `Ch_BE` optionally tracking the resident-BE
/// count. Dynamic SGDRC only — the static baseline keeps its fixed
/// split, boxed baselines have no knobs. Cell-level: callers route it
/// through [`Fleet::mutate`] so the lane's timer mirror refreshes.
fn retune_cell(cfg: &ClusterConfig, dep: &Deployment, resident: usize, cell: &mut LaneCell) {
    if cfg.system != SystemKind::Sgdrc {
        return;
    }
    let scale = cell.sim.state().engine.clock_scale();
    if let PolicySlot::Sgdrc(p) = &mut cell.policy {
        let mut spec = dep.spec.clone();
        if scale != 1.0 {
            spec.fp32_tflops *= scale;
            spec.mem_bandwidth_gbps *= scale;
        }
        let ch_be = if cfg.controller.adaptive_ch_be {
            ch_be_for(cfg.sgdrc.ch_be, resident)
        } else {
            cfg.sgdrc.ch_be
        };
        let pcfg = SgdrcConfig {
            ch_be,
            ..cfg.sgdrc.clone()
        };
        p.reconfigure(&spec, pcfg);
    }
}

/// The surviving replica a BE job lands on: a routable member, alive,
/// not already hosting the model, shortest backlog (ties → lowest
/// index). Draining/warm/retired lanes never receive BE work. `None`
/// strands the job as homeless until a recovery or an activation.
fn be_landing_site(
    cfg: &ClusterConfig,
    fleet: &Fleet,
    jobs_on: &[Vec<usize>],
    model: usize,
    exclude: Option<usize>,
) -> Option<usize> {
    (0..fleet.len())
        .filter(|&d| {
            Some(d) != exclude
                && fleet.alive[d]
                && fleet.routable[d]
                && !jobs_on[d].iter().any(|&k| cfg.be_jobs[k] == model)
        })
        .min_by_key(|&d| (fleet.backlog[d], d))
}

/// Places BE job `job` on replica `dst`: records placement, resumes the
/// task (unless the job is shed), retunes `Ch_BE` and lets the policy
/// react.
#[allow(clippy::too_many_arguments)]
fn place_be_job(
    cfg: &ClusterConfig,
    deps: &[Arc<Deployment>],
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    fleet: &mut Fleet,
    rt: &ChaosRt,
    job: usize,
    dst: usize,
) {
    let model = cfg.be_jobs[job];
    jobs_on[dst].push(job);
    if !rt.job_shed[job] {
        let b = fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model");
        let resident = jobs_on[dst].len();
        fleet.mutate(dst, |cell| {
            cell.sim.state_mut().set_be_active(b, true);
            if cfg.controller.adaptive_ch_be {
                retune_cell(cfg, &deps[dst], resident, cell);
            }
            cell.dispatch();
        });
    }
}

/// Applies one fault-timeline action at its (already quiesced) instant.
/// Every scan and mutation runs in replica-index order — the action is a
/// deterministic function of fleet state, independent of the clock
/// schedule.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    cfg: &ClusterConfig,
    f: &ScheduledFault,
    deps: &[Arc<Deployment>],
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    fleet: &mut Fleet,
    migrations: &mut Vec<Migration>,
    rt: &mut ChaosRt,
    trt: &TierRt,
    ert: &mut ElasticRt,
    tel: &mut TelemetryRt,
) {
    let r = f.replica;
    // A retired lane left the fleet for good (graceful drain or
    // crash-replacement write-off): later timeline entries against it —
    // typically the scheduled recovery of a crash the elastic layer
    // already replaced — are no-ops.
    if ert.state[r] == LaneState::Retired {
        return;
    }
    match f.op {
        FaultOp::Crash => {
            if !fleet.alive[r] {
                return; // overlapping crash windows: already down
            }
            fleet.alive[r] = false;
            rt.faults_injected += 1;
            if tel.is_on() {
                tel.record(f.at_us, r as u32, EventKind::FaultOnset { kind: f.kind });
            }
            ert.on_crash(r, f.at_us);
            // Freeze the heartbeat at the last instant this replica was
            // seen alive — what the per-replica stamp sweep would have
            // left behind. `max` keeps a recovery stamp that postdates
            // the last decision instant (crash shortly after recover).
            rt.last_heartbeat[r] = rt.last_heartbeat[r].max(rt.last_decision_us);
            // Rip queued and in-flight LS work back out to the router,
            // in the merged stream's canonical (time, task) order so the
            // retry queue is identical under every clock schedule.
            let mut drained = std::mem::take(&mut rt.drain_buf);
            drained.clear();
            fleet.mutate(r, |cell| cell.sim.state_mut().crash_drain(&mut drained));
            drained.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            for &(task, arrival_us) in &drained {
                let queued = rt.requeue(
                    task,
                    arrival_us,
                    f.at_us,
                    Some(r),
                    trt.max_retries_for(task),
                );
                if tel.is_on() {
                    let task = task as u32;
                    tel.record(
                        f.at_us,
                        r as u32,
                        EventKind::Requeued {
                            task,
                            cause: RequeueCause::Crash,
                        },
                    );
                    if !queued {
                        tel.record(f.at_us, r as u32, EventKind::TimeoutDropped { task });
                    }
                }
            }
            rt.drain_buf = drained;
            // Evacuate resident BE jobs onto survivors via the migration
            // path (each resumes from the destination's saved cursor).
            let jobs = std::mem::take(&mut jobs_on[r]);
            for job in jobs {
                let model = cfg.be_jobs[job];
                let b = fleet_models
                    .iter()
                    .position(|&m| m == model)
                    .expect("job model is a fleet model");
                // Clear the dead replica's mask so a later recovery does
                // not resurrect a phantom resident.
                fleet.mutate(r, |cell| cell.sim.state_mut().set_be_active(b, false));
                match be_landing_site(cfg, fleet, jobs_on, model, Some(r)) {
                    Some(dst) => {
                        place_be_job(cfg, deps, fleet_models, jobs_on, fleet, rt, job, dst);
                        migrations.push(Migration {
                            at_us: f.at_us,
                            job,
                            model,
                            from: r,
                            to: dst,
                        });
                    }
                    None => rt.homeless.push(job),
                }
            }
        }
        FaultOp::Recover => {
            if fleet.alive[r] {
                return; // permanent-crash bookkeeping or double recovery
            }
            fleet.alive[r] = true;
            rt.faults_recovered += 1;
            if tel.is_on() {
                tel.record(
                    f.at_us,
                    r as u32,
                    EventKind::FaultRecovered { kind: f.kind },
                );
            }
            rt.last_heartbeat[r] = f.at_us;
            ert.on_recover(r);
            // The engine is empty (crash drain cancelled every launch)
            // and stale policy timers are structurally dropped, so
            // idling forward to the recovery instant is safe.
            fleet.mutate(r, |cell| cell.sim.state_mut().engine.advance_idle(f.at_us));
            // Re-home stranded jobs — the revived replica is empty, so
            // every homeless model has a candidate again.
            let homeless = std::mem::take(&mut rt.homeless);
            for job in homeless {
                let model = cfg.be_jobs[job];
                match be_landing_site(cfg, fleet, jobs_on, model, None) {
                    Some(dst) => {
                        place_be_job(cfg, deps, fleet_models, jobs_on, fleet, rt, job, dst);
                    }
                    None => rt.homeless.push(job),
                }
            }
            fleet.mutate(r, |cell| cell.dispatch());
        }
        FaultOp::SetScale(factor) => {
            rt.faults_injected += 1;
            if tel.is_on() {
                tel.record(f.at_us, r as u32, EventKind::FaultOnset { kind: f.kind });
            }
            let up = fleet.alive[r];
            let resident = jobs_on[r].len();
            fleet.mutate(r, |cell| {
                if up {
                    cell.sim.state_mut().engine.advance_idle(f.at_us);
                }
                cell.sim.state_mut().engine.set_clock_scale(factor);
                retune_cell(cfg, &deps[r], resident, cell);
                if up {
                    cell.dispatch();
                }
            });
        }
        FaultOp::ClearScale => {
            rt.faults_recovered += 1;
            if tel.is_on() {
                tel.record(
                    f.at_us,
                    r as u32,
                    EventKind::FaultRecovered { kind: f.kind },
                );
            }
            let up = fleet.alive[r];
            let resident = jobs_on[r].len();
            fleet.mutate(r, |cell| {
                if up {
                    cell.sim.state_mut().engine.advance_idle(f.at_us);
                }
                cell.sim.state_mut().engine.set_clock_scale(1.0);
                retune_cell(cfg, &deps[r], resident, cell);
                if up {
                    cell.dispatch();
                }
            });
        }
    }
}

/// Drains every retry-queue entry due at `t`: timed-out requests drop,
/// the rest are routed against a fresh health view — a successful
/// delivery records its re-dispatch delay, a refusal (dead target, no
/// healthy lane) backs off linearly and tries again, up to the retry
/// budget. `due` is caller-owned scratch (no per-call allocation).
#[allow(clippy::too_many_arguments)]
fn process_retries(
    t: f64,
    router: &mut dyn RoutingPolicy,
    fleet: &mut Fleet,
    jobs_on: &[Vec<usize>],
    due: &mut Vec<Requeue>,
    rt: &mut ChaosRt,
    trt: &TierRt,
    tel: &mut TelemetryRt,
) {
    due.clear();
    // Order-preserving extraction — identical sequence to scanning the
    // queue front-to-back and removing due entries in place.
    rt.retry_q.retain(|e| {
        if e.ready_at <= t {
            due.push(*e);
            false
        } else {
            true
        }
    });
    // Health is a function of `t` alone, so the calendar clock patches
    // it once for the whole drain; injections inside the loop keep the
    // backlog views current through `refresh`.
    if fleet.use_cal {
        fleet.patch_health(rt, t);
    }
    for mut e in due.drain(..) {
        // Deadline-aware drop: past the request's hard deadline
        // (per-tier with a config, `RetryConfig::timeout_us` mirrored
        // otherwise) re-dispatching is doomed work — drop it now.
        if t - e.arrival_us > trt.hard[e.task] {
            rt.timeout_drops += 1;
            rt.drops_by_task[e.task] += 1;
            if tel.is_on() {
                tel.record(
                    t,
                    FLEET_TRACK,
                    EventKind::TimeoutDropped {
                        task: e.task as u32,
                    },
                );
            }
            continue;
        }
        if fleet.use_cal {
            #[cfg(debug_assertions)]
            fleet.assert_views_current(jobs_on, rt, t);
        } else {
            fleet.rebuild_views(jobs_on, rt, t);
        }
        let any_healthy = if fleet.use_cal {
            fleet.n_healthy > 0
        } else {
            fleet.views.iter().any(|v| v.healthy)
        };
        // With every member drained away (routable set empty) the
        // healthy count is 0, so the entry backs off like a whole-fleet
        // outage until a lane activates.
        let target = if any_healthy {
            let slot = if trt.enabled {
                router.route_with_tier(&fleet.views, e.task, trt.rank[e.task], t)
            } else {
                router.route(&fleet.views, e.task, t)
            };
            assert!(
                slot < fleet.views.len(),
                "router picked slot {slot} of {}",
                fleet.views.len()
            );
            Some(fleet.view_lane[slot] as usize)
        } else {
            None
        };
        match target {
            Some(r) if fleet.alive[r] => {
                fleet.mutate(r, |cell| cell.inject_requeued(e.task, e.arrival_us, t));
                rt.retries += 1;
                rt.lane_retries[r] += 1;
                if tel.is_on() {
                    tel.record(
                        t,
                        r as u32,
                        EventKind::RetryDispatched {
                            task: e.task as u32,
                            attempt: e.attempt,
                        },
                    );
                }
                rt.redispatch_hist.record(t - e.drained_at);
            }
            _ => {
                e.attempt += 1;
                if e.attempt > trt.max_retries_for(e.task) {
                    rt.timeout_drops += 1;
                    rt.drops_by_task[e.task] += 1;
                    if tel.is_on() {
                        tel.record(
                            t,
                            FLEET_TRACK,
                            EventKind::TimeoutDropped {
                                task: e.task as u32,
                            },
                        );
                    }
                } else {
                    e.ready_at = t + rt.retry.backoff_us * f64::from(e.attempt);
                    rt.retry_q.push(e);
                }
            }
        }
    }
}

/// Graceful degradation, evaluated every controller tick while a fault
/// plan is active: when capacity drops below demand, shed BE work first
/// (park every resident job), and under sustained overload drop pending
/// requests of the lowest-priority LS service on the most backlogged
/// survivor. Shed BE jobs resume once the fleet is whole and queues have
/// drained to half the shed threshold.
#[allow(clippy::too_many_arguments)]
fn degrade(
    cfg: &ClusterConfig,
    at_us: f64,
    n_ls: usize,
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    fleet: &mut Fleet,
    rt: &mut ChaosRt,
    tel: &mut TelemetryRt,
) {
    let n = fleet.len();
    // Degradation reasons over the routable membership: non-member
    // lanes (warm, draining, retired) are neither capacity nor demand.
    // With a static fleet every lane is routable, so this reduces
    // exactly to the pre-elastic alive/total accounting.
    let members = fleet.routable.iter().filter(|&&m| m).count();
    let alive = (0..n)
        .filter(|&r| fleet.routable[r] && fleet.alive[r])
        .count();
    if alive == 0 {
        return;
    }
    let degraded = alive < members;
    let backlog: usize = (0..n)
        .filter(|&r| fleet.routable[r] && fleet.alive[r])
        .map(|r| fleet.backlog[r] as usize)
        .sum();
    let per_alive = backlog / alive;
    // Queueing shows up two ways depending on regime: as pending
    // requests when arrivals outrun admission, and as windowed p99
    // breach when the engine itself is the bottleneck. Either one while
    // a replica is down means capacity dropped below demand.
    let slo_pressure = (0..n).any(|r| fleet.routable[r] && fleet.alive[r] && fleet.ratio[r] > 1.0);
    let slot_of = |model: usize| {
        fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model")
    };
    if degraded && (per_alive > rt.degradation.shed_be_backlog || slo_pressure) {
        for (r, jobs) in jobs_on.iter().enumerate() {
            if !fleet.alive[r] || !fleet.routable[r] {
                continue;
            }
            let mut parked = 0u32;
            for &j in jobs {
                if rt.job_shed[j] {
                    continue;
                }
                rt.job_shed[j] = true;
                rt.be_shed += 1;
                let b = slot_of(cfg.be_jobs[j]);
                fleet.mutate(r, |cell| {
                    let st = cell.sim.state_mut();
                    st.set_be_active(b, false);
                    if st.be_launch.map(|l| l.task) == Some(b) {
                        st.preempt_be();
                    }
                });
                parked += 1;
            }
            if parked > 0 {
                fleet.mutate(r, |cell| cell.dispatch());
                if tel.is_on() {
                    tel.record(at_us, r as u32, EventKind::BeParked { count: parked });
                }
            }
        }
    } else if !degraded && per_alive * 2 <= rt.degradation.shed_be_backlog && !slo_pressure {
        for (r, jobs) in jobs_on.iter().enumerate() {
            let mut resumed = false;
            for &j in jobs {
                if !rt.job_shed[j] {
                    continue;
                }
                rt.job_shed[j] = false;
                let b = slot_of(cfg.be_jobs[j]);
                fleet.mutate(r, |cell| cell.sim.state_mut().set_be_active(b, true));
                resumed = true;
            }
            if resumed {
                fleet.mutate(r, |cell| cell.dispatch());
            }
        }
    }
    if per_alive > rt.degradation.shed_ls_backlog {
        // Victim selection must respect elastic membership: a draining
        // or retired lane (`routable` false) may still carry backlog it
        // is flushing out, but shedding there would double-punish work
        // that is already exiting — the victim is the most backlogged
        // lane among alive *routable* members only (regression-tested
        // in cluster_chaos::shed_victim_skips_draining_lanes).
        let victim = (0..n)
            .filter(|&r| fleet.alive[r] && fleet.routable[r])
            .max_by_key(|&r| (fleet.backlog[r], std::cmp::Reverse(r)));
        if let Some(v) = victim {
            let mut budget = rt.degradation.ls_shed_per_tick;
            // Lowest priority = highest task index, shed first.
            for task in (0..n_ls).rev() {
                if budget == 0 {
                    break;
                }
                let dropped =
                    fleet.mutate(v, |cell| cell.sim.state_mut().shed_pending(task, budget));
                budget -= dropped;
                rt.ls_shed += dropped as u64;
                if dropped > 0 && tel.is_on() {
                    tel.record(
                        at_us,
                        v as u32,
                        EventKind::LsShed {
                            task: task as u32,
                            count: dropped as u32,
                        },
                    );
                }
            }
        }
    }
}

/// Tier-ordered brownout, evaluated every controller tick when a
/// [`TiersConfig`] is attached — replaces the single-threshold
/// [`degrade`] path. The ladder escalates one level per pressured tick
/// (per-alive backlog above `enter_backlog`, or a windowed p99 breach
/// on any routable survivor while backlog exceeds the `exit_backlog`
/// calm floor): level 1 parks every BE job fleet-wide, then
/// each eligible tier (BestEffort before Burstable, lower-priority
/// tiers first) gains a *queue* level and a *shed* level in turn.
/// Recovery runs the ladder in reverse: after `hold_ticks` consecutive
/// calm ticks (backlog at or below `exit_backlog`, no SLO pressure)
/// the level drops by one, re-admitting tiers in the opposite order
/// they were browned. Guaranteed tiers never queue or shed.
#[allow(clippy::too_many_arguments)]
fn brownout(
    cfg: &ClusterConfig,
    at_us: f64,
    n_ls: usize,
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    fleet: &mut Fleet,
    rt: &mut ChaosRt,
    trt: &mut TierRt,
    tel: &mut TelemetryRt,
) {
    let n = fleet.len();
    let alive = (0..n)
        .filter(|&r| fleet.routable[r] && fleet.alive[r])
        .count();
    if alive == 0 {
        return;
    }
    let backlog: usize = (0..n)
        .filter(|&r| fleet.routable[r] && fleet.alive[r])
        .map(|r| fleet.backlog[r] as usize)
        .sum();
    let per_alive = backlog / alive;
    let slo_pressure = (0..n).any(|r| fleet.routable[r] && fleet.alive[r] && fleet.ratio[r] > 1.0);
    // SLO pressure only escalates when backlog sits above the calm
    // floor: a windowed p99 breach with near-empty queues is a
    // capacity artifact shedding cannot fix, and gating it keeps
    // [`TiersConfig::inert`] (both thresholds unreachable) a true
    // no-op, matching `tiers: None` bit for bit.
    let pressured = per_alive > trt.enter_backlog || (slo_pressure && per_alive > trt.exit_backlog);
    let calm = per_alive <= trt.exit_backlog && !slo_pressure;
    trt.step_ladder(pressured, calm);

    // Level ≥ 1: park every resident BE job (the cheapest capacity to
    // reclaim); level 0: resume anything still parked.
    let slot_of = |model: usize| {
        fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model")
    };
    if trt.level >= 1 {
        for (r, jobs) in jobs_on.iter().enumerate() {
            if !fleet.alive[r] || !fleet.routable[r] {
                continue;
            }
            let mut parked = 0u32;
            for &j in jobs {
                if rt.job_shed[j] {
                    continue;
                }
                rt.job_shed[j] = true;
                rt.be_shed += 1;
                let b = slot_of(cfg.be_jobs[j]);
                fleet.mutate(r, |cell| {
                    let st = cell.sim.state_mut();
                    st.set_be_active(b, false);
                    if st.be_launch.map(|l| l.task) == Some(b) {
                        st.preempt_be();
                    }
                });
                parked += 1;
            }
            if parked > 0 {
                fleet.mutate(r, |cell| cell.dispatch());
                if tel.is_on() {
                    tel.record(at_us, r as u32, EventKind::BeParked { count: parked });
                }
            }
        }
    } else {
        for (r, jobs) in jobs_on.iter().enumerate() {
            let mut resumed = false;
            for &j in jobs {
                if !rt.job_shed[j] {
                    continue;
                }
                rt.job_shed[j] = false;
                let b = slot_of(cfg.be_jobs[j]);
                fleet.mutate(r, |cell| cell.sim.state_mut().set_be_active(b, true));
                resumed = true;
            }
            if resumed {
                fleet.mutate(r, |cell| cell.dispatch());
            }
        }
    }

    // Expire queued admissions whose hard deadline has passed — they
    // can no longer complete on-SLO, so holding them is doomed work.
    {
        let TierRt { queues, hard, .. } = trt;
        for q in queues.iter_mut() {
            q.retain(|&(task, arrival_us)| {
                if at_us - arrival_us > hard[task as usize] {
                    rt.timeout_drops += 1;
                    rt.drops_by_task[task as usize] += 1;
                    if tel.is_on() {
                        tel.record(at_us, FLEET_TRACK, EventKind::TimeoutDropped { task });
                    }
                    false
                } else {
                    true
                }
            });
        }
    }

    // Active shed: tiers at or past their shed level lose already
    // admitted pending work on the most backlogged routable survivor
    // (same victim rule the legacy path uses — draining/retired lanes
    // are never victims), lowest tier first within the budget.
    let any_shedding = (0..trt.n_tiers()).any(|r| trt.level >= trt.shed_level[r]);
    if any_shedding {
        let victim = (0..n)
            .filter(|&r| fleet.alive[r] && fleet.routable[r])
            .max_by_key(|&r| (fleet.backlog[r], std::cmp::Reverse(r)));
        if let Some(v) = victim {
            let mut budget = trt.shed_per_tick;
            'ranks: for rank in (0..trt.n_tiers()).rev() {
                if trt.level < trt.shed_level[rank] {
                    continue;
                }
                for task in (0..n_ls).rev() {
                    if trt.rank[task] as usize != rank {
                        continue;
                    }
                    if budget == 0 {
                        break 'ranks;
                    }
                    let dropped =
                        fleet.mutate(v, |cell| cell.sim.state_mut().shed_pending(task, budget));
                    budget -= dropped;
                    rt.ls_shed += dropped as u64;
                    rt.shed_by_task[task] += dropped as u64;
                    if dropped > 0 && tel.is_on() {
                        tel.record(
                            at_us,
                            v as u32,
                            EventKind::LsShed {
                                task: task as u32,
                                count: dropped as u32,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Flush tier admission queues whose queue level has receded — called
/// right after the tick's view rebuild so routing sees fresh backlog.
/// Entries dispatch FIFO (oldest arrival first) through the tier-aware
/// router, keeping their original arrival timestamp so latency charges
/// the queueing delay to the request. A dead-but-fresh target bounces
/// into the retry queue under the tier's retry budget; with no healthy
/// lane at all the queue holds until capacity returns.
fn tier_flush(
    t: f64,
    router: &mut dyn RoutingPolicy,
    fleet: &mut Fleet,
    jobs_on: &[Vec<usize>],
    rt: &mut ChaosRt,
    trt: &mut TierRt,
    tel: &mut TelemetryRt,
) {
    if !trt.enabled || trt.queued_total() == 0 {
        return;
    }
    if fleet.use_cal {
        fleet.patch_health(rt, t);
    }
    for rank in 0..trt.n_tiers() {
        if trt.level >= trt.queue_level[rank] {
            continue;
        }
        while let Some(&(task, arrival_us)) = trt.queues[rank].front() {
            let task = task as usize;
            if fleet.use_cal {
                #[cfg(debug_assertions)]
                fleet.assert_views_current(jobs_on, rt, t);
            } else {
                fleet.rebuild_views(jobs_on, rt, t);
            }
            let any_healthy = if fleet.use_cal {
                fleet.n_healthy > 0
            } else {
                fleet.views.iter().any(|v| v.healthy)
            };
            if !any_healthy {
                break;
            }
            trt.queues[rank].pop_front();
            let slot = router.route_with_tier(&fleet.views, task, rank as u32, t);
            assert!(
                slot < fleet.views.len(),
                "router picked slot {slot} of {}",
                fleet.views.len()
            );
            let r = fleet.view_lane[slot] as usize;
            if fleet.alive[r] {
                fleet.mutate(r, |cell| cell.inject_requeued(task, arrival_us, t));
                if tel.is_on() {
                    // Attempt 0 marks a queued-admission dispatch, not
                    // a crash retry.
                    tel.record(
                        t,
                        r as u32,
                        EventKind::RetryDispatched {
                            task: task as u32,
                            attempt: 0,
                        },
                    );
                }
            } else {
                rt.requeue(task, arrival_us, t, Some(r), trt.max_retries_for(task));
            }
        }
    }
}

/// One controller tick's migration decision: move one BE job from the
/// worst SLO-breaching replica onto the most underloaded replica that
/// can host it. Scans run in replica-index order, so the decision is
/// independent of the fleet clock's schedule (serial order or parallel
/// placement alike). `dests` is caller-owned scratch.
#[allow(clippy::too_many_arguments)]
fn controller_rebalance(
    cfg: &ClusterConfig,
    at_us: f64,
    deps: &[Arc<Deployment>],
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    fleet: &mut Fleet,
    migrations: &mut Vec<Migration>,
    job_shed: &[bool],
    dests: &mut Vec<usize>,
) {
    let n = jobs_on.len();
    // Source: the worst breaching replica that has BE work to shed.
    // Dead replicas are invisible here — a crash evacuates their BE
    // jobs, and their stale windowed ratio must not attract work.
    let src = (0..n)
        .filter(|&r| {
            fleet.alive[r]
                && fleet.routable[r]
                && fleet.ratio[r] > cfg.controller.breach_ratio
                && !jobs_on[r].is_empty()
        })
        .max_by(|&a, &b| {
            fleet.ratio[a].total_cmp(&fleet.ratio[b]).then(b.cmp(&a)) // ties → lower index
        });
    let Some(src) = src else { return };
    // Destinations with headroom, best (ratio, backlog) first. The
    // comparator ends on the index, making it a total order — the
    // unstable sort is deterministic and allocation-free.
    dests.clear();
    dests.extend((0..n).filter(|&r| {
        r != src
            && fleet.alive[r]
            && fleet.routable[r]
            && fleet.ratio[r] < cfg.controller.headroom_ratio
    }));
    dests.sort_unstable_by(|&a, &b| {
        fleet.ratio[a]
            .total_cmp(&fleet.ratio[b])
            .then(fleet.backlog[a].cmp(&fleet.backlog[b]))
            .then(a.cmp(&b))
    });
    for &dst in dests.iter() {
        // First job of the source whose model the destination lacks
        // (degradation-shed jobs stay parked where they are).
        let movable = jobs_on[src].iter().copied().find(|&j| {
            let model = cfg.be_jobs[j];
            !job_shed[j] && !jobs_on[dst].iter().any(|&k| cfg.be_jobs[k] == model)
        });
        let Some(job) = movable else { continue };
        let model = cfg.be_jobs[job];
        let b = fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model");
        // Park on the source: stop future launches, evict the running
        // kernel if it is this task's (§7.1 eviction flag).
        fleet.mutate(src, |cell| {
            let st = cell.sim.state_mut();
            st.set_be_active(b, false);
            if st.be_launch.map(|l| l.task) == Some(b) {
                st.preempt_be();
            }
        });
        // Resume on the destination.
        fleet.mutate(dst, |cell| cell.sim.state_mut().set_be_active(b, true));
        let pos = jobs_on[src]
            .iter()
            .position(|&k| k == job)
            .expect("present");
        jobs_on[src].remove(pos);
        jobs_on[dst].push(job);
        // Optionally retune Ch_BE on both ends (dynamic SGDRC only —
        // the static baseline keeps its fixed split). `retune_cell`
        // folds in any active clock throttle so a migration never
        // resets a thermally scaled target spec.
        if cfg.controller.adaptive_ch_be {
            for r in [src, dst] {
                let resident = jobs_on[r].len();
                fleet.mutate(r, |cell| retune_cell(cfg, &deps[r], resident, cell));
            }
        }
        // Let both policies react immediately (launch the migrated job /
        // expand onto freed resources).
        fleet.mutate(src, |cell| cell.dispatch());
        fleet.mutate(dst, |cell| cell.dispatch());
        migrations.push(Migration {
            at_us,
            job,
            model,
            from: src,
            to: dst,
        });
        return; // one migration per tick
    }
}

/// Recycled per-lane storage a [`ClusterCtx`] keeps between runs.
#[derive(Default)]
struct LaneStore {
    seen_done: Vec<usize>,
    win_hist: LatencyHistogram,
}

/// Reusable storage for fleet runs: per-replica [`SimContext`]s and
/// lane stores, the hot mirror arrays, the calendar, and every piece of
/// per-epoch scratch (busy list, router views, retry extraction,
/// controller ordering). Passing the same context across runs makes
/// repeated fleet simulations — a bench sweeping systems × routers, a
/// scaling curve — allocation-free in steady state (asserted by
/// `tests/cluster_alloc.rs`).
#[derive(Default)]
pub struct ClusterCtx {
    sims: Vec<SimContext>,
    stores: Vec<LaneStore>,
    next_at: Vec<f64>,
    backlog: Vec<u32>,
    ratio: Vec<f64>,
    alive: Vec<bool>,
    advancing: Vec<bool>,
    routable: Vec<bool>,
    view_lane: Vec<u32>,
    lane_slot: Vec<u32>,
    cal: EventCalendar,
    views: Vec<ReplicaView>,
    busy: Vec<u32>,
    hints: Vec<f64>,
    due: Vec<Requeue>,
    dests: Vec<usize>,
}

impl ClusterCtx {
    pub fn new() -> Self {
        Self::default()
    }
}

/// How arrivals reach the fleet clock: the materialized batch trace
/// (retained mode — bit-identical by construction) or the streaming
/// generator (long-horizon mode — bit-identical by the stream==batch
/// equivalence proven in `trace::tests`).
enum ArrivalSource<'a> {
    Batch { merged: &'a [Arrival], next: usize },
    Stream(ArrivalStream),
}

impl ArrivalSource<'_> {
    fn peek(&self) -> Option<Arrival> {
        match self {
            Self::Batch { merged, next } => merged.get(*next).copied(),
            Self::Stream(s) => s.peek(),
        }
    }

    fn pop(&mut self) -> Option<Arrival> {
        match self {
            Self::Batch { merged, next } => {
                let a = merged.get(*next).copied();
                if a.is_some() {
                    *next += 1;
                }
                a
            }
            Self::Stream(s) => s.pop(),
        }
    }
}

/// Ring size of the calendar queue — plenty of buckets per revolution at
/// the mean-gap width without chasing pathological slot counts.
const CAL_SLOTS: usize = 1024;

/// [`run_cluster_in`] with a fresh context.
pub fn run_cluster(cfg: &ClusterConfig, router: &mut dyn RoutingPolicy) -> ClusterResult {
    run_cluster_in(cfg, router, &mut ClusterCtx::new())
}

/// Prepares `cfg` and runs it once. Benches re-running one config should
/// call [`ClusterConfig::prepare`] themselves and use
/// [`run_cluster_prepared`] so validation, deployment resolution and
/// trace materialization happen once, not per run.
pub fn run_cluster_in(
    cfg: &ClusterConfig,
    router: &mut dyn RoutingPolicy,
    ctx: &mut ClusterCtx,
) -> ClusterResult {
    let prep = cfg.prepare();
    run_cluster_prepared(&prep, router, ctx)
}

/// Runs one prepared fleet scenario to the horizon.
pub fn run_cluster_prepared(
    prep: &PreparedCluster,
    router: &mut dyn RoutingPolicy,
    ctx: &mut ClusterCtx,
) -> ClusterResult {
    let cfg = &prep.cfg;
    let n = prep.lane_gpus.len();
    let n_init = prep.n_init;
    let n_ls = prep.n_ls;
    if ctx.sims.len() < n {
        ctx.sims.resize_with(n, SimContext::new);
    }
    if ctx.stores.len() < n {
        ctx.stores.resize_with(n, LaneStore::default);
    }

    // The calendar clock degenerates to inline (but still
    // calendar-selected) advancing when there is nothing to overlap: a
    // 1-replica fleet, or a pool with a single participant.
    let use_cal = cfg.clock == ClockKind::Parallel;
    let pool_par = use_cal && n > 1 && rayon::current_pool_workers() > 1;

    let mut jobs_on: Vec<Vec<usize>> = prep.init_jobs_on.clone();

    // --- the fleet: hot mirrors from the context, cells per run ----------
    let mut fleet = Fleet {
        cells: Vec::with_capacity(n),
        next_at: std::mem::take(&mut ctx.next_at),
        backlog: std::mem::take(&mut ctx.backlog),
        ratio: std::mem::take(&mut ctx.ratio),
        alive: std::mem::take(&mut ctx.alive),
        gpus: &prep.lane_gpus,
        advancing: std::mem::take(&mut ctx.advancing),
        routable: std::mem::take(&mut ctx.routable),
        view_lane: std::mem::take(&mut ctx.view_lane),
        lane_slot: std::mem::take(&mut ctx.lane_slot),
        identity: n_init == n,
        cal: std::mem::take(&mut ctx.cal),
        use_cal,
        views: std::mem::take(&mut ctx.views),
        n_healthy: 0,
        n_dead: 0,
    };
    fleet.next_at.clear();
    fleet.next_at.resize(n, f64::INFINITY);
    fleet.backlog.clear();
    fleet.backlog.resize(n, 0);
    fleet.ratio.clear();
    fleet.ratio.resize(n, 0.0);
    fleet.alive.clear();
    fleet.alive.resize(n, true);
    // Configured lanes open as members; warm-pool lanes are frozen
    // until the elastic controller provisions them.
    fleet.advancing.clear();
    fleet.advancing.resize(n, false);
    fleet.routable.clear();
    fleet.routable.resize(n, false);
    for r in 0..n_init {
        fleet.advancing[r] = true;
        fleet.routable[r] = true;
    }
    // Placeholder views (the identity slot↔lane mapping over the
    // configured lanes) so `refresh` can patch backlogs during cell
    // construction; `rebuild_views` below re-derives every field.
    fleet.views.clear();
    fleet.view_lane.clear();
    fleet.lane_slot.clear();
    fleet.lane_slot.resize(n, u32::MAX);
    for r in 0..n_init {
        fleet.lane_slot[r] = r as u32;
        fleet.view_lane.push(r as u32);
        fleet.views.push(ReplicaView {
            gpu: prep.lane_gpus[r],
            backlog: 0,
            window_p99_ratio: 0.0,
            resident_be: 0,
            healthy: true,
        });
    }
    fleet.cal.reset(n, prep.cal_width_us, CAL_SLOTS);

    for (r, jobs) in jobs_on.iter().enumerate() {
        let policy = match cfg.system {
            SystemKind::Sgdrc => {
                let mut pcfg = cfg.sgdrc.clone();
                if cfg.controller.adaptive_ch_be {
                    pcfg.ch_be = ch_be_for(cfg.sgdrc.ch_be, jobs.len());
                }
                PolicySlot::Sgdrc(Sgdrc::new(&prep.deps[r].spec, pcfg))
            }
            SystemKind::SgdrcStatic => PolicySlot::Sgdrc(Sgdrc::new(
                &prep.deps[r].spec,
                SgdrcConfig {
                    static_partition: true,
                    ..Default::default()
                },
            )),
            other => PolicySlot::Boxed(other.make(&prep.deps[r].spec)),
        };
        let mut sim = ReplicaSim::prepare(&prep.scenarios[r], &mut ctx.sims[r]);
        // Park every BE task not initially placed here *before* the first
        // dispatch, so the opening launches match the placement.
        for (b, &model) in prep.fleet_models.iter().enumerate() {
            let resident = jobs.iter().any(|&k| cfg.be_jobs[k] == model);
            sim.state_mut().set_be_active(b, resident);
        }
        let store = std::mem::take(&mut ctx.stores[r]);
        let mut cell = Box::new(LaneCell {
            sim,
            policy,
            seen_done: store.seen_done,
            win_hist: store.win_hist,
            cum_hist: LatencyHistogram::new(),
            slo_met: 0,
            routed: 0,
            done_by_task: vec![0; n_ls],
            met_by_task: vec![0; n_ls],
        });
        cell.seen_done.clear();
        cell.seen_done.resize(n_ls, 0);
        cell.win_hist.reset();
        cell.begin();
        fleet.cells.push(cell);
        fleet.refresh(r);
    }

    // --- fleet clock state -----------------------------------------------
    let order = &prep.order;
    let mut arrivals = match &prep.trace {
        Some(trace) => ArrivalSource::Batch {
            merged: trace.merged(),
            next: 0,
        },
        None => ArrivalSource::Stream(ArrivalStream::new(
            &cfg.trace,
            n_ls,
            cfg.horizon_us,
            cfg.seed,
        )),
    };
    let mut migrations: Vec<Migration> = Vec::new();
    let mut busy = std::mem::take(&mut ctx.busy);
    let mut hints = std::mem::take(&mut ctx.hints);
    let mut due = std::mem::take(&mut ctx.due);
    let mut dests = std::mem::take(&mut ctx.dests);
    let chaos_on = cfg.chaos.is_some();
    let elastic_on = cfg.elastic.is_some();
    let mut rt = ChaosRt::new(cfg.chaos.as_ref(), n, cfg.be_jobs.len(), n_ls);
    let mut ert = ElasticRt::new(cfg.elastic.as_ref(), n, n_init);
    let mut trt = TierRt::new(cfg.tiers.as_ref(), n_ls, &rt.retry);
    fleet.rebuild_views(&jobs_on, &rt, 0.0);

    let period = cfg.controller.period_us;
    let mut next_tick = if period > 0.0 { period } else { f64::INFINITY };
    let mut arrivals_injected = 0u64;
    let mut arrivals_by_task = vec![0u64; n_ls];

    // The flight recorder and clock profiler. Disabled (`off`) it is one
    // predictable branch per record call and allocates nothing; enabled,
    // every allocation happens here (rings at capacity, series at the
    // expected tick count) so the epoch path stays allocation-free
    // either way (`tests/cluster_alloc.rs`).
    let mut tel = match &cfg.telemetry {
        Some(tcfg) => {
            let expected_ticks = if period > 0.0 {
                (cfg.horizon_us / period) as usize
            } else {
                0
            };
            TelemetryRt::new(tcfg, n, trt.n_tiers(), expected_ticks)
        }
        None => TelemetryRt::off(),
    };
    let run_t0 = tel.clk();

    loop {
        let arrival = arrivals.peek();
        let t_arr = arrival.map_or(f64::INFINITY, |a| a.at_us);
        let t_fault = rt.next_fault_at();
        let t_retry = rt.next_retry_at();
        let t_scale = ert.next_ready_us;
        // Decision-point priority at equal instants is fixed — fault,
        // then provisioning completion, then controller tick, then
        // retry re-dispatch, then arrival — so both clock schedules
        // interleave identically. Without a fault plan or elastic
        // config `t_fault`/`t_retry`/`t_scale` are infinite and every
        // condition reduces exactly to the pre-chaos clock.
        let fault_due = t_fault <= t_scale
            && t_fault <= t_arr
            && t_fault <= next_tick
            && t_fault <= t_retry
            && t_fault <= cfg.horizon_us;
        if fault_due {
            let f = rt.timeline[rt.next_fault];
            rt.next_fault += 1;
            quiesce(
                &mut fleet,
                &mut busy,
                &mut hints,
                order,
                pool_par,
                cfg.horizon_us,
                Some(f.at_us),
                &mut tel,
            );
            if !fleet.use_cal {
                // The serial arm's quiesce maintains no mirrors; fault
                // handling reads the dense backlogs (drain victims, BE
                // landing sites), so sweep them current at this rare
                // instant — the pre-SoA clock's own O(replicas) walk.
                for r in 0..n {
                    fleet.refresh(r);
                }
            }
            apply_fault(
                cfg,
                &f,
                &prep.deps,
                &prep.fleet_models,
                &mut jobs_on,
                &mut fleet,
                &mut migrations,
                &mut rt,
                &trt,
                &mut ert,
                &mut tel,
            );
            tel.sync_logs(&migrations, &ert.events);
            // Faults restructure everything a view reads — aliveness,
            // residency, drained backlogs — so the incremental snapshot
            // re-bases here. O(replicas), but fault instants are rare.
            if fleet.use_cal {
                fleet.rebuild_views(&jobs_on, &rt, f.at_us);
            }
            continue;
        }
        let scale_due = t_scale <= next_tick
            && t_scale <= t_retry
            && t_scale <= t_arr
            && t_scale <= cfg.horizon_us;
        if scale_due {
            // A provisioning lane finished its warm-up delay: quiesce
            // the fleet to that instant and flip the lane routable.
            quiesce(
                &mut fleet,
                &mut busy,
                &mut hints,
                order,
                pool_par,
                cfg.horizon_us,
                Some(t_scale),
                &mut tel,
            );
            if !fleet.use_cal {
                // Activation re-homes homeless BE jobs off the dense
                // backlog mirrors, which the serial quiesce leaves
                // stale; sweep them current at this rare instant.
                for r in 0..n {
                    fleet.refresh(r);
                }
            }
            rt.last_decision_us = t_scale;
            activate_ready(
                cfg,
                prep,
                t_scale,
                &mut fleet,
                &mut jobs_on,
                &mut rt,
                &mut ert,
            );
            tel.sync_logs(&migrations, &ert.events);
            // Activation grows the routable set, so the compact views
            // re-base; O(replicas) but activation instants are rare.
            if fleet.use_cal {
                fleet.rebuild_views(&jobs_on, &rt, t_scale);
            }
            continue;
        }
        let tick_due = next_tick < t_arr && next_tick <= t_retry && next_tick < cfg.horizon_us;
        if tick_due {
            // Quiesce the fleet up to the tick — one epoch, every busy
            // replica in parallel — then drain and rebalance in
            // canonical replica order.
            quiesce(
                &mut fleet,
                &mut busy,
                &mut hints,
                order,
                pool_par,
                cfg.horizon_us,
                Some(next_tick),
                &mut tel,
            );
            let tick_t0 = tel.clk();
            if !fleet.use_cal {
                // Rebalance and degradation read the dense backlogs;
                // the serial quiesce left them stale (see above).
                for r in 0..n {
                    fleet.refresh(r);
                }
            }
            rt.last_decision_us = next_tick;
            let mut window_done = 0u64;
            for r in 0..n {
                let cell = &mut fleet.cells[r];
                cell.drain(&prep.slos[r], &trt.soft, cfg.streaming, r as u32, &mut tel);
                window_done += cell.win_hist.count();
                fleet.ratio[r] = if cell.win_hist.is_empty() {
                    0.0
                } else {
                    cell.win_hist.percentile(99.0)
                };
                cell.win_hist.reset();
            }
            if tel.is_on() {
                // Sample the registry and record per-lane verdicts off
                // the cells themselves (not the mirrors), so the sampled
                // values are schedule-independent by construction.
                let sample_t0 = tel.clk();
                tel.begin_tick(next_tick);
                for (r, jobs) in jobs_on.iter().enumerate().take(n) {
                    let st = fleet.cells[r].sim.state();
                    let backlog = st.ls_backlog() as u32;
                    let inflight = st.ls_inflight() as u32;
                    let resident_be = jobs.len() as u32;
                    let ratio = fleet.ratio[r];
                    tel.sample_lane(
                        r,
                        f64::from(backlog),
                        ratio,
                        f64::from(inflight),
                        f64::from(resident_be),
                    );
                    tel.record(
                        next_tick,
                        r as u32,
                        EventKind::TickVerdict {
                            window_p99_ratio: ratio,
                            backlog,
                            inflight,
                            resident_be,
                        },
                    );
                }
                let mut warm = 0u32;
                let mut active = 0u32;
                let mut provisioning = 0u32;
                for s in &ert.state {
                    match s {
                        LaneState::Warm => warm += 1,
                        LaneState::Active => active += 1,
                        LaneState::Provisioning => provisioning += 1,
                        LaneState::Draining | LaneState::Retired => {}
                    }
                }
                tel.sample_fleet(
                    f64::from(warm),
                    rt.retry_q.len() as f64,
                    f64::from(active),
                    f64::from(provisioning),
                );
                // Per-tier series: queued + in-lane backlog, cumulative
                // weighted on-SLO completions, cumulative refusals.
                // Read off the cells (schedule-independent), one pass
                // per tier — skipped entirely without a tier config so
                // the telemetry overhead gate is untouched.
                if trt.enabled {
                    for rank in 0..trt.n_tiers() {
                        let mut backlog = trt.queues[rank].len() as f64;
                        let mut met_w = 0.0;
                        let mut refused = 0.0;
                        for task in 0..n_ls {
                            if trt.rank[task] as usize != rank {
                                continue;
                            }
                            refused += (trt.refused_overload_by_task[task]
                                + trt.refused_queue_full_by_task[task])
                                as f64;
                            for cell in &fleet.cells {
                                backlog += cell.sim.state().ls_backlog_of(task) as f64;
                                met_w += cell.met_by_task[task] as f64 * trt.weight[task];
                            }
                        }
                        tel.sample_tier(rank, backlog, met_w, refused);
                    }
                }
                tel.prof.telemetry_ns += TelemetryRt::lap(sample_t0);
            }
            if elastic_on {
                // Capacity decisions run before rebalance/degradation so
                // the migration controller sees the post-scaling
                // membership at this same tick.
                elastic_step(
                    cfg,
                    prep,
                    next_tick,
                    &mut fleet,
                    &mut jobs_on,
                    &mut migrations,
                    &mut rt,
                    &trt,
                    &mut ert,
                    &mut tel,
                    arrivals_injected,
                    window_done,
                );
            }
            controller_rebalance(
                cfg,
                next_tick,
                &prep.deps,
                &prep.fleet_models,
                &mut jobs_on,
                &mut fleet,
                &mut migrations,
                &rt.job_shed,
                &mut dests,
            );
            if trt.enabled {
                // Tiered brownout replaces the legacy single-threshold
                // path — it runs every tick (overload needs no fault
                // plan: diurnal peaks and autoscaler lag qualify).
                brownout(
                    cfg,
                    next_tick,
                    n_ls,
                    &prep.fleet_models,
                    &mut jobs_on,
                    &mut fleet,
                    &mut rt,
                    &mut trt,
                    &mut tel,
                );
            } else if chaos_on {
                degrade(
                    cfg,
                    next_tick,
                    n_ls,
                    &prep.fleet_models,
                    &mut jobs_on,
                    &mut fleet,
                    &mut rt,
                    &mut tel,
                );
            }
            tel.sync_logs(&migrations, &ert.events);
            // Ticks move the two slow view fields (windowed ratio, BE
            // residency via rebalance/degrade), so the incremental
            // snapshot re-bases here — the tick already walked every
            // lane to drain completions, so this adds no complexity
            // class.
            if fleet.use_cal {
                fleet.rebuild_views(&jobs_on, &rt, next_tick);
            }
            // Re-admit queued tiers the receding ladder just released —
            // after the view rebuild so routing sees this tick's state.
            if trt.enabled {
                tier_flush(
                    next_tick, router, &mut fleet, &jobs_on, &mut rt, &mut trt, &mut tel,
                );
            }
            tel.prof.tick_ns += TelemetryRt::lap(tick_t0);
            next_tick += period;
            continue;
        }
        let retry_due = t_retry <= t_arr && t_retry <= cfg.horizon_us;
        if retry_due {
            quiesce(
                &mut fleet,
                &mut busy,
                &mut hints,
                order,
                pool_par,
                cfg.horizon_us,
                Some(t_retry),
                &mut tel,
            );
            rt.last_decision_us = t_retry;
            process_retries(
                t_retry, router, &mut fleet, &jobs_on, &mut due, &mut rt, &trt, &mut tel,
            );
            continue;
        }
        if !(arrival.is_some() && t_arr <= cfg.horizon_us) {
            break;
        }
        let a = arrivals.pop().expect("checked");
        arrivals_injected += 1;
        arrivals_by_task[a.task as usize] += 1;
        // Quiesce every replica up to the arrival so the router sees a
        // consistent instant; replicas are independent, so neither the
        // serial order nor the parallel schedule matters (the
        // determinism tests permute both).
        quiesce(
            &mut fleet,
            &mut busy,
            &mut hints,
            order,
            pool_par,
            cfg.horizon_us,
            Some(a.at_us),
            &mut tel,
        );
        let route_t0 = tel.clk();
        rt.last_decision_us = a.at_us;
        // The calendar clock routes against the incremental views — an
        // O(1) touch-up of dead lanes' health (a no-op while the fleet
        // is whole) instead of the serial reference's O(replicas)
        // rebuild — checked against a fresh rebuild under
        // debug_assertions.
        if fleet.use_cal {
            fleet.patch_health(&rt, a.at_us);
            #[cfg(debug_assertions)]
            fleet.assert_views_current(&jobs_on, &rt, a.at_us);
        } else {
            fleet.rebuild_views(&jobs_on, &rt, a.at_us);
        }
        // Admission control runs before routing: the decision is a pure
        // function of the brownout level (moved only at ticks) and the
        // tier queue's occupancy, so it is identical under both clocks.
        // Without a tier config every arrival admits and this is one
        // predictable branch.
        match trt.admit(a.task as usize) {
            Admission::Admit => {
                trt.admitted_by_task[a.task as usize] += 1;
            }
            Admission::Queue => {
                let task = a.task as usize;
                trt.queued_by_task[task] += 1;
                trt.queues[trt.rank[task] as usize].push_back((a.task, a.at_us));
                tel.prof.route_ns += TelemetryRt::lap(route_t0);
                continue;
            }
            Admission::Refuse(reason) => {
                let task = a.task as usize;
                match reason {
                    RefusalReason::Overload => trt.refused_overload_by_task[task] += 1,
                    RefusalReason::QueueFull => trt.refused_queue_full_by_task[task] += 1,
                }
                if tel.is_on() {
                    tel.record(
                        a.at_us,
                        FLEET_TRACK,
                        EventKind::Refused {
                            task: a.task,
                            tier: trt.tier_id_of[task],
                            reason,
                        },
                    );
                }
                tel.prof.route_ns += TelemetryRt::lap(route_t0);
                continue;
            }
        }
        let any_healthy = if fleet.use_cal {
            fleet.n_healthy > 0
        } else {
            fleet.views.iter().any(|v| v.healthy)
        };
        let no_target = fleet.views.is_empty();
        if no_target || (chaos_on && !any_healthy) {
            // Whole fleet unhealthy (or every lane drained away):
            // the request parks in the retry queue instead of being
            // forced onto a dead replica.
            let queued = rt.requeue(
                a.task as usize,
                a.at_us,
                a.at_us,
                None,
                trt.max_retries_for(a.task as usize),
            );
            if tel.is_on() {
                tel.record(
                    a.at_us,
                    FLEET_TRACK,
                    EventKind::Requeued {
                        task: a.task,
                        cause: RequeueCause::NoHealthy,
                    },
                );
                if !queued {
                    tel.record(
                        a.at_us,
                        FLEET_TRACK,
                        EventKind::TimeoutDropped { task: a.task },
                    );
                }
            }
            tel.prof.route_ns += TelemetryRt::lap(route_t0);
            continue;
        }
        let slot = if trt.enabled {
            router.route_with_tier(
                &fleet.views,
                a.task as usize,
                trt.rank[a.task as usize],
                a.at_us,
            )
        } else {
            router.route(&fleet.views, a.task as usize, a.at_us)
        };
        debug_assert!(
            slot < fleet.views.len(),
            "router picked slot {slot} of {}",
            fleet.views.len()
        );
        let target = fleet.view_lane[slot] as usize;
        if fleet.alive[target] {
            fleet.mutate(target, |cell| cell.inject(a.task as usize, a.at_us));
            if tel.is_on() {
                tel.record(a.at_us, target as u32, EventKind::Routed { task: a.task });
            }
        } else {
            // Routed at a dead replica still inside its heartbeat
            // window — the crash has not aged out yet, so the request
            // bounces into the retry path like a failed delivery.
            let queued = rt.requeue(
                a.task as usize,
                a.at_us,
                a.at_us,
                Some(target),
                trt.max_retries_for(a.task as usize),
            );
            if tel.is_on() {
                tel.record(
                    a.at_us,
                    target as u32,
                    EventKind::Requeued {
                        task: a.task,
                        cause: RequeueCause::DeadRoute,
                    },
                );
                if !queued {
                    tel.record(
                        a.at_us,
                        target as u32,
                        EventKind::TimeoutDropped { task: a.task },
                    );
                }
            }
        }
        tel.prof.route_ns += TelemetryRt::lap(route_t0);
    }
    // Drain: no further arrivals, faults, retries or ticks — run every
    // surviving replica out to the horizon.
    quiesce(
        &mut fleet,
        &mut busy,
        &mut hints,
        order,
        pool_par,
        cfg.horizon_us,
        None,
        &mut tel,
    );
    for r in 0..n {
        fleet.cells[r].drain(&prep.slos[r], &trt.soft, cfg.streaming, r as u32, &mut tel);
    }
    tel.sync_logs(&migrations, &ert.events);
    // Read the cells, not the mirrors — the serial arm's quiesce leaves
    // mirrors stale by design. Requests parked in tier admission queues
    // are in flight: arrived, neither completed nor dropped.
    let in_flight_at_end = fleet
        .cells
        .iter()
        .map(|c| c.sim.state().ls_backlog() as u64)
        .sum::<u64>()
        + rt.retry_q.len() as u64
        + trt.queued_total() as u64;
    // Per-service in-flight split for the tier conservation ledgers:
    // in-lane residue + retry-queue entries + admission-queue entries.
    let mut in_flight_by_task = vec![0u64; n_ls];
    if trt.enabled {
        for c in &fleet.cells {
            for (task, slot) in in_flight_by_task.iter_mut().enumerate() {
                *slot += c.sim.state().ls_backlog_of(task) as u64;
            }
        }
        for e in &rt.retry_q {
            in_flight_by_task[e.task] += 1;
        }
        for q in &trt.queues {
            for &(task, _) in q {
                in_flight_by_task[task as usize] += 1;
            }
        }
    }

    // --- aggregate --------------------------------------------------------
    // Close the billing stint for every lane still serving at the
    // horizon; retired lanes already billed up to their retire instant.
    for r in 0..n {
        if matches!(ert.state[r], LaneState::Active | LaneState::Draining) {
            ert.active_us[r] += cfg.horizon_us - ert.activated_at[r];
        }
    }
    let replica_seconds = ert.active_us.iter().sum::<f64>() / 1e6;
    tel.prof.total_ns = TelemetryRt::lap(run_t0);
    let telemetry = tel.finish();
    let mut result = ClusterResult {
        replicas: Vec::with_capacity(n),
        fleet_hist: LatencyHistogram::new(),
        requests: 0,
        slo_met: 0,
        goodput_hz: 0.0,
        be_completed: 0,
        be_preemptions: 0,
        engine_events: 0,
        migrations,
        arrivals_injected,
        requeued: rt.requeued,
        retries: rt.retries,
        timeout_drops: rt.timeout_drops,
        ls_shed: rt.ls_shed,
        be_shed: rt.be_shed,
        in_flight_at_end,
        faults_injected: rt.faults_injected,
        faults_recovered: rt.faults_recovered,
        redispatch_hist: rt.redispatch_hist,
        retained_completions: 0,
        replica_seconds,
        scale_events: ert.events,
        warm_hits: ert.warm_hits,
        warm_misses: ert.warm_misses,
        provision_delay_total_us: ert.provision_delay_total_us,
        drains_started: ert.drains_started,
        drains_completed: ert.drains_completed,
        drain_requeued: ert.drain_requeued,
        replacements: ert.replacements,
        refused_arrivals: rt.refused,
        refused_admission: trt
            .refused_overload_by_task
            .iter()
            .chain(&trt.refused_queue_full_by_task)
            .sum(),
        arrivals_by_task,
        completed_by_task: vec![0; n_ls],
        slo_met_by_task: vec![0; n_ls],
        weighted_goodput_hz: 0.0,
        tier_outcomes: Vec::new(),
        telemetry,
    };
    for (r, cell) in fleet.cells.drain(..).enumerate() {
        let LaneCell {
            sim,
            policy: _,
            seen_done,
            mut win_hist,
            cum_hist,
            slo_met,
            routed,
            done_by_task,
            met_by_task,
        } = *cell;
        for t in 0..n_ls {
            result.completed_by_task[t] += done_by_task[t];
            result.slo_met_by_task[t] += met_by_task[t];
        }
        let mut stats = sim.finish(&mut ctx.sims[r]);
        result.retained_completions += stats
            .ls_completed
            .iter()
            .map(|v| v.len() as u64)
            .sum::<u64>();
        if cfg.streaming {
            // Hand the (already drained, already cleared) completion
            // buffers back to the context for the next run; the summary
            // keeps the exact scalar counters with empty logs.
            let donor = RunStats {
                ls_completed: std::mem::take(&mut stats.ls_completed),
                ..Default::default()
            };
            ctx.sims[r].recycle(donor);
            stats.ls_completed = vec![Vec::new(); n_ls];
        }
        win_hist.reset();
        ctx.stores[r] = LaneStore {
            seen_done,
            win_hist,
        };
        let hist = cum_hist;
        let requests = hist.count();
        result.fleet_hist.merge(&hist);
        result.requests += requests;
        result.slo_met += slo_met;
        result.be_completed += stats.be_completed.iter().sum::<u64>();
        result.be_preemptions += stats.be_preemptions;
        result.engine_events += stats.engine_events;
        result.replicas.push(ReplicaSummary {
            gpu: prep.lane_gpus[r],
            routed,
            requests,
            slo_met,
            hist,
            seed: cell_seed(cfg.seed, r as u64),
            stats,
            active_us: ert.active_us[r],
            requeued: rt.lane_requeued[r],
            retries: rt.lane_retries[r],
        });
    }
    result.goodput_hz = result.slo_met as f64 / (cfg.horizon_us / 1e6);
    // Weighted goodput: tier-weight × on-SLO (soft-deadline) completions
    // per second. Without a tier config every weight is 1 and every soft
    // deadline infinite, so this equals `goodput_hz` exactly.
    let horizon_s = cfg.horizon_us / 1e6;
    result.weighted_goodput_hz = result
        .slo_met_by_task
        .iter()
        .zip(&trt.weight)
        .map(|(&met, &w)| met as f64 * w)
        .sum::<f64>()
        / horizon_s;
    if trt.enabled {
        for rank in 0..trt.n_tiers() {
            let mut o = TierOutcome {
                tier: trt.tier_ids[rank],
                class: trt.tier_class[rank],
                weight: trt.tier_weight[rank],
                arrivals: 0,
                admitted: 0,
                queued: 0,
                refused_overload: 0,
                refused_queue_full: 0,
                shed: 0,
                timeout_drops: 0,
                completed: 0,
                slo_met: 0,
                in_flight_at_end: 0,
                weighted_goodput_hz: 0.0,
            };
            for (task, &in_flight) in in_flight_by_task.iter().enumerate() {
                if trt.rank[task] as usize != rank {
                    continue;
                }
                o.arrivals += result.arrivals_by_task[task];
                o.admitted += trt.admitted_by_task[task];
                o.queued += trt.queued_by_task[task];
                o.refused_overload += trt.refused_overload_by_task[task];
                o.refused_queue_full += trt.refused_queue_full_by_task[task];
                o.shed += rt.shed_by_task[task];
                o.timeout_drops += rt.drops_by_task[task];
                o.completed += result.completed_by_task[task];
                o.slo_met += result.slo_met_by_task[task];
                o.in_flight_at_end += in_flight;
            }
            o.weighted_goodput_hz = o.slo_met as f64 * o.weight / horizon_s;
            result.tier_outcomes.push(o);
        }
    }

    // Return the reusable storage to the context.
    ctx.next_at = fleet.next_at;
    ctx.backlog = fleet.backlog;
    ctx.ratio = fleet.ratio;
    ctx.alive = fleet.alive;
    ctx.cal = fleet.cal;
    ctx.views = fleet.views;
    ctx.advancing = fleet.advancing;
    ctx.routable = fleet.routable;
    ctx.view_lane = fleet.view_lane;
    ctx.lane_slot = fleet.lane_slot;
    ctx.busy = busy;
    ctx.hints = hints;
    ctx.due = due;
    ctx.dests = dests;
    result
}
