//! Multi-GPU fleet simulator: SLO-aware request routing + dynamic BE
//! placement across spatially-shared replicas.
//!
//! The paper's evaluation stops at one GPU, but its deployment target is
//! cloud inference serving — fleets of GPUs, each spatially shared
//! between LS services and BE jobs, behind a request router. This module
//! builds that layer on the per-GPU machinery the workspace already has:
//!
//! * every **replica** is one [`ReplicaSim`] — the exact fast serving
//!   loop (engine + policy + queues), run through a reusable
//!   [`SimContext`] so repeated fleet runs are allocation-free in steady
//!   state. A 1-replica fleet is *bit-identical* to a single-GPU
//!   [`sgdrc_core::serving::run`] (enforced by `tests/cluster.rs`);
//! * a **router** consumes one merged cluster-wide arrival stream and
//!   dispatches each LS request to a replica via a pluggable
//!   [`RoutingPolicy`] — round-robin, join-shortest-backlog over the
//!   O(1) `ls_backlog` counters, or SLO-aware power-of-two-choices;
//! * a **fleet controller** ticks on a fixed period, reads each
//!   replica's *windowed* p99-to-SLO ratio from a per-replica
//!   [`LatencyHistogram`], and migrates BE jobs off breaching replicas
//!   onto underloaded ones — parking a job raises the eviction flag on
//!   its running kernel (the §7.1 preempt path) and, optionally,
//!   retunes the destination's `Ch_BE` via [`Sgdrc::reconfigure`];
//! * replicas are **heterogeneous** ([`Deployment::cached`] per
//!   [`GpuModel`]) and fully independent between router decisions, so
//!   the cluster clock can interleave their event loops in *any* order
//!   — or run them **in parallel**: the default [`ClockKind::Parallel`]
//!   epoch clock advances every busy replica concurrently on the
//!   persistent work-stealing pool between decision points, and results
//!   are bit-identical for every replica iteration order, worker count
//!   and clock kind (enforced by `tests/cluster.rs` and
//!   `tests/cluster_parallel.rs`, mirroring the sweep's chunking
//!   invariance). Seeds derive via splitmix64 ([`cell_seed`]) like the
//!   sweep's;
//! * per-replica latency sketches **merge** into fleet-wide percentiles
//!   without re-sorting — the same [`LatencyHistogram`] path the sweep's
//!   per-slice output uses.

use crate::metrics::{slo_for, LatencyHistogram};
use crate::runner::Deployment;
use crate::sweep::{cell_seed, splitmix64};
use crate::trace::{per_service_traces, TraceConfig};
use crate::SystemKind;
use dnn::CompileOptions;
use gpu_spec::GpuModel;
use rayon::prelude::*;
use sgdrc_core::serving::{ArrivalTrace, Policy, ReplicaSim, RunStats, Scenario, SimContext, Task};
use sgdrc_core::{Sgdrc, SgdrcConfig};
use std::sync::Arc;

/// Fleet-controller tunables.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Rebalance tick period (µs); 0 disables the controller entirely
    /// (no windowed-p99 snapshots, no migrations).
    pub period_us: f64,
    /// A replica whose windowed p99/SLO ratio exceeds this is overloaded
    /// — a migration source (1.0 = the SLO itself).
    pub breach_ratio: f64,
    /// A replica may receive BE work only while its windowed ratio stays
    /// below this.
    pub headroom_ratio: f64,
    /// Retune `Ch_BE` through [`Sgdrc::reconfigure`] whenever a
    /// migration changes a replica's resident-BE count (SGDRC replicas
    /// only): more resident BE jobs → a proportionally larger BE channel
    /// subset, capped at half the channels.
    pub adaptive_ch_be: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            period_us: 100_000.0,
            breach_ratio: 1.0,
            headroom_ratio: 0.75,
            adaptive_ch_be: false,
        }
    }
}

/// One fleet scenario: replicas, system, trace shape and BE placement.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One GPU model per replica — heterogeneous fleets mix models.
    pub gpus: Vec<GpuModel>,
    /// The sharing system every replica runs.
    pub system: SystemKind,
    /// Per-LS-service arrival shape of the *cluster-wide* stream (scale
    /// its mean with the fleet size; the router splits it).
    pub trace: TraceConfig,
    pub horizon_us: f64,
    pub ls_instances: usize,
    /// Base seed: the arrival stream and the p2c router chain derive
    /// from it via splitmix64.
    pub seed: u64,
    /// Fleet BE jobs, one entry per job naming its BE model index.
    /// Initial placement is round-robin over replicas (skipping replicas
    /// already hosting that model — at most one instance of a model per
    /// replica).
    pub be_jobs: Vec<usize>,
    pub controller: ControllerConfig,
    /// Policy tuning for SGDRC replicas.
    pub sgdrc: SgdrcConfig,
    pub compile: CompileOptions,
    /// Replica iteration order used by the serial cluster clock when it
    /// quiesces the fleet (empty = index order). Results are invariant
    /// to it — the knob exists so the determinism test can *prove* that
    /// rather than assume it. The parallel clock ignores it: placement
    /// on pool workers is scheduling, not semantics.
    pub advance_order: Vec<usize>,
    /// Which fleet-clock schedule drives the run (results identical).
    pub clock: ClockKind,
}

impl ClusterConfig {
    /// A fleet of the given replicas under one system, with Apollo-like
    /// per-service load, one BE job per replica rotating through the BE
    /// models, and the controller on at its default period.
    pub fn new(gpus: Vec<GpuModel>, system: SystemKind) -> Self {
        let be_zoo = dnn::zoo::ModelId::be_models().len();
        let be_jobs = (0..gpus.len()).map(|i| i % be_zoo).collect();
        Self {
            gpus,
            system,
            trace: TraceConfig::apollo_like(),
            horizon_us: 2e6,
            ls_instances: 4,
            seed: 0xF1EE7,
            be_jobs,
            controller: ControllerConfig::default(),
            sgdrc: SgdrcConfig::default(),
            compile: CompileOptions::default(),
            advance_order: Vec::new(),
            clock: ClockKind::default(),
        }
    }
}

/// What a [`RoutingPolicy`] sees of each replica at an arrival instant,
/// always in replica-index order.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaView {
    pub gpu: GpuModel,
    /// LS requests admitted or waiting on this replica (O(1) counter).
    pub backlog: usize,
    /// The replica's windowed p99-to-SLO ratio as of the last controller
    /// tick (0 until the first tick, or with the controller off).
    pub window_p99_ratio: f64,
    /// BE jobs currently resident.
    pub resident_be: usize,
}

/// Picks a replica for each LS request. Implementations must be
/// deterministic functions of the views (index order) and their own
/// state — never of fleet-internal iteration order.
pub trait RoutingPolicy {
    fn name(&self) -> &'static str;
    /// `task` is the LS service the request belongs to; `at_us` its
    /// arrival time. Returns a replica index `< views.len()`.
    fn route(&mut self, views: &[ReplicaView], task: usize, at_us: f64) -> usize;
}

/// Blind rotation over replicas.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        let r = self.next % views.len();
        self.next = self.next.wrapping_add(1);
        r
    }
}

/// Join-shortest-backlog: the replica with the fewest pending+in-flight
/// LS requests (ties → lowest index). Reads only the O(1) backlog
/// counters.
#[derive(Debug, Default)]
pub struct JoinShortestBacklog;

impl RoutingPolicy for JoinShortestBacklog {
    fn name(&self) -> &'static str {
        "shortest_backlog"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        views
            .iter()
            .enumerate()
            .min_by_key(|(i, v)| (v.backlog, *i))
            .expect("non-empty fleet")
            .0
    }
}

/// SLO-aware power-of-two-choices: sample two replicas from a
/// deterministic splitmix64 chain, prefer the one not breaching its SLO
/// window, then the shorter backlog, then the lower index. O(1) per
/// request regardless of fleet size.
#[derive(Debug)]
pub struct SloAwarePowerOfTwo {
    state: u64,
}

impl SloAwarePowerOfTwo {
    pub fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed ^ 0x70C0_2C40),
        }
    }

    fn draw(&mut self, n: usize) -> usize {
        self.state = splitmix64(self.state);
        (self.state >> 32) as usize % n
    }
}

impl RoutingPolicy for SloAwarePowerOfTwo {
    fn name(&self) -> &'static str {
        "p2c_slo"
    }

    fn route(&mut self, views: &[ReplicaView], _task: usize, _at_us: f64) -> usize {
        let n = views.len();
        let i = self.draw(n);
        let j = self.draw(n);
        let key = |r: usize| (views[r].window_p99_ratio > 1.0, views[r].backlog, r);
        if key(i) <= key(j) {
            i
        } else {
            j
        }
    }
}

/// The built-in routing policies, for benches sweeping all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    RoundRobin,
    ShortestBacklog,
    P2cSlo,
}

impl RouterKind {
    pub fn all() -> [RouterKind; 3] {
        [
            RouterKind::RoundRobin,
            RouterKind::ShortestBacklog,
            RouterKind::P2cSlo,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round_robin",
            RouterKind::ShortestBacklog => "shortest_backlog",
            RouterKind::P2cSlo => "p2c_slo",
        }
    }

    /// Instantiates the policy (the p2c chain seeds from `seed`).
    pub fn make(self, seed: u64) -> Box<dyn RoutingPolicy> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::ShortestBacklog => Box::new(JoinShortestBacklog),
            RouterKind::P2cSlo => Box::new(SloAwarePowerOfTwo::new(seed)),
        }
    }
}

/// One BE-job migration performed by the fleet controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    pub at_us: f64,
    /// Index into [`ClusterConfig::be_jobs`].
    pub job: usize,
    /// The job's BE model index.
    pub model: usize,
    pub from: usize,
    pub to: usize,
}

/// Per-replica outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSummary {
    pub gpu: GpuModel,
    /// Requests the router sent here.
    pub routed: u64,
    /// Requests completed here.
    pub requests: u64,
    /// Completions that met their (replica-local) SLO.
    pub slo_met: u64,
    /// Every completed latency (µs) — merges into the fleet sketch.
    pub hist: LatencyHistogram,
    /// The replica's derived seed (`cell_seed(cluster seed, replica)`),
    /// for downstream per-replica derivations.
    pub seed: u64,
    /// The full per-GPU statistics, exactly as a single-GPU run would
    /// have produced them.
    pub stats: RunStats,
}

/// Aggregate fleet outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResult {
    pub replicas: Vec<ReplicaSummary>,
    /// All completed latencies fleet-wide, merged from the per-replica
    /// sketches in index order (no re-sorting).
    pub fleet_hist: LatencyHistogram,
    pub requests: u64,
    pub slo_met: u64,
    /// SLO-meeting completions per second, fleet-wide.
    pub goodput_hz: f64,
    pub be_completed: u64,
    pub be_preemptions: u64,
    pub engine_events: u64,
    /// Every BE migration the controller performed, in order.
    pub migrations: Vec<Migration>,
}

impl ClusterResult {
    /// Fleet-wide percentile from the merged sketch (NaN when no request
    /// completed).
    pub fn fleet_percentile(&self, p: f64) -> f64 {
        self.fleet_hist.percentile(p)
    }

    /// Fraction of completions that met their SLO.
    pub fn slo_attainment(&self) -> f64 {
        self.slo_met as f64 / self.requests.max(1) as f64
    }
}

/// Adaptive `Ch_BE`: one resident job keeps the configured base; each
/// additional job widens the BE channel subset proportionally, capped at
/// half the channels.
fn ch_be_for(base: f64, resident: usize) -> f64 {
    if resident <= 1 {
        base
    } else {
        (base * resident as f64).min(0.5)
    }
}

/// A replica's policy. SGDRC variants stay concrete so the controller
/// can [`reconfigure`](Sgdrc::reconfigure) them in place; baselines are
/// boxed trait objects.
enum PolicySlot {
    Sgdrc(Sgdrc),
    Boxed(Box<dyn Policy>),
}

impl PolicySlot {
    fn as_dyn(&mut self) -> &mut dyn Policy {
        match self {
            PolicySlot::Sgdrc(p) => p,
            PolicySlot::Boxed(p) => p.as_mut(),
        }
    }

    fn as_dyn_ref(&self) -> &dyn Policy {
        match self {
            PolicySlot::Sgdrc(p) => p,
            PolicySlot::Boxed(p) => p.as_ref(),
        }
    }
}

/// How the fleet clock schedules replica advances between decision
/// points (router arrivals, controller ticks). Results are bit-identical
/// across every variant — enforced by `tests/cluster_parallel.rs` — so
/// the choice is purely about wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockKind {
    /// The epoch-parallel clock: replicas with pending work before the
    /// epoch boundary advance concurrently on the persistent
    /// work-stealing pool (one flat batch per epoch), idle replicas are
    /// skipped without a dispatch, and per-replica events and histogram
    /// deltas merge in canonical replica order afterwards. Falls back
    /// to the serial schedule automatically when the pool has a single
    /// worker or the fleet a single replica.
    #[default]
    Parallel,
    /// The reference serial clock: every replica advances in
    /// [`ClusterConfig::advance_order`], one after another, exactly as
    /// the pre-parallel fleet simulator did. Kept as the equivalence
    /// oracle the parallel clock is tested against.
    Serial,
}

/// One replica's full per-run state: the resumable simulation, its
/// policy, and every piece of bookkeeping the coordinator previously
/// kept in parallel vectors. Bundling them is what lets an epoch
/// advance ship a replica to a pool worker as one `&mut Lane` — the
/// sketches, RNG-free cursors and SLO tables ride along, so a worker
/// never touches shared mutable state.
struct Lane<'s> {
    sim: ReplicaSim<'s>,
    policy: PolicySlot,
    /// Per-LS-service cursor into `stats.ls_completed` (drained so far).
    seen_done: Vec<usize>,
    /// Replica-local SLOs per LS service (slower GPUs get looser SLOs).
    slos: Vec<f64>,
    /// Latency/SLO ratios since the last controller tick.
    win_hist: LatencyHistogram,
    /// Every completed latency of this replica (µs).
    cum_hist: LatencyHistogram,
    slo_met: u64,
    /// Windowed p99/SLO ratio as of the last controller tick.
    last_ratio: f64,
    /// Requests the router sent here.
    routed: u64,
}

impl Lane<'_> {
    fn advance_to(&mut self, until: Option<f64>) {
        self.sim.advance(self.policy.as_dyn(), until);
    }

    fn dispatch(&mut self) {
        self.sim.dispatch(self.policy.as_dyn());
    }

    fn inject(&mut self, task: usize, at_us: f64) {
        self.sim.inject_arrival(self.policy.as_dyn(), task, at_us);
        self.routed += 1;
    }

    /// Would `advance(until)` process anything at all? Mirrors
    /// [`ReplicaSim::next_pending_at`]'s no-op guarantee: an epoch
    /// boundary at `t` only consumes work strictly before `t`, the
    /// final drain consumes work up to and including the horizon.
    fn has_work(&self, until: Option<f64>) -> bool {
        let Some(at) = self.sim.next_pending_at(self.policy.as_dyn_ref()) else {
            return false;
        };
        match until {
            Some(t) => at < t,
            None => at <= self.sim.state().scenario.horizon_us,
        }
    }

    /// Records completions since the last drain into the windowed and
    /// cumulative sketches. Lane-local — safe at any point between
    /// advances, on any thread.
    fn drain(&mut self) {
        let stats = &self.sim.state().stats;
        for t in 0..self.slos.len() {
            let done = &stats.ls_completed[t];
            for req in &done[self.seen_done[t]..] {
                let lat = req.latency_us();
                self.cum_hist.record(lat);
                self.win_hist.record(lat / self.slos[t]);
                if lat <= self.slos[t] {
                    self.slo_met += 1;
                }
            }
            self.seen_done[t] = done.len();
        }
    }
}

/// Quiesces the fleet up to an epoch boundary (`until = Some(t)`) or out
/// to the horizon (`None`). The parallel schedule skips lanes whose next
/// pending work lies beyond the boundary — for those, `advance` is a
/// proven no-op — and fans the rest out as **one** pool batch per epoch
/// (`for_each` over the busy lanes): the pool block-partitions the
/// lanes across its deques and steal-on-empty balances whatever skew
/// the epoch has (one replica with a burst of events, seven idle), so
/// a recursive `join` split would only re-buy that balancing at an
/// extra batch submission per split. The serial schedule replays the
/// reference clock: every lane, in `order`.
fn quiesce(lanes: &mut [Lane<'_>], order: &[usize], parallel: bool, until: Option<f64>) {
    if parallel {
        let busy: Vec<&mut Lane> = lanes.iter_mut().filter(|l| l.has_work(until)).collect();
        match busy.len() {
            0 => {}
            1 => {
                for lane in busy {
                    lane.advance_to(until);
                }
            }
            _ => busy.into_par_iter().for_each(|lane| lane.advance_to(until)),
        }
    } else {
        for &r in order {
            lanes[r].advance_to(until);
        }
    }
}

/// [`run_cluster_in`] with fresh per-replica contexts.
pub fn run_cluster(cfg: &ClusterConfig, router: &mut dyn RoutingPolicy) -> ClusterResult {
    run_cluster_in(cfg, router, &mut Vec::new())
}

/// Runs one fleet scenario to the horizon.
///
/// `ctxs` holds one reusable [`SimContext`] per replica (grown on
/// demand); passing the same vector across runs makes repeated fleet
/// simulations — a bench sweeping systems × routers, a scaling curve —
/// reuse every engine, queue and statistics allocation, exactly like the
/// sweep's per-chunk contexts.
pub fn run_cluster_in(
    cfg: &ClusterConfig,
    router: &mut dyn RoutingPolicy,
    ctxs: &mut Vec<SimContext>,
) -> ClusterResult {
    let n = cfg.gpus.len();
    assert!(n > 0, "a fleet needs at least one replica");
    if ctxs.len() < n {
        ctxs.resize_with(n, SimContext::new);
    }

    // --- deployments & fleet BE task sets --------------------------------
    let deps: Vec<Arc<Deployment>> = cfg
        .gpus
        .iter()
        .map(|&g| Deployment::cached_with_options(g, cfg.compile))
        .collect();
    let n_ls = deps[0].ls_tasks.len();
    for (r, dep) in deps.iter().enumerate() {
        assert_eq!(
            dep.ls_tasks.len(),
            n_ls,
            "replica {r}: every replica must deploy the same LS services"
        );
        assert!(
            cfg.system.supported_on(&dep.spec),
            "{} is not supported on replica {r} ({})",
            cfg.system.name(),
            dep.spec.name
        );
    }

    // The distinct BE models the fleet runs, ascending — every replica's
    // scenario lists exactly these tasks, and placement toggles their
    // activity.
    let fleet_models: Vec<usize> = {
        let mut m = cfg.be_jobs.clone();
        m.sort_unstable();
        m.dedup();
        m
    };
    // One BE task set per distinct GPU model, shared by its replicas.
    let mut be_sets: Vec<(GpuModel, Arc<[Task]>)> = Vec::new();
    for (r, &gpu) in cfg.gpus.iter().enumerate() {
        if !be_sets.iter().any(|(g, _)| *g == gpu) {
            let set: Arc<[Task]> = fleet_models
                .iter()
                .map(|&m| deps[r].be_tasks[m].clone())
                .collect();
            be_sets.push((gpu, set));
        }
    }
    let be_set_of = |gpu: GpuModel| -> Arc<[Task]> {
        Arc::clone(
            &be_sets
                .iter()
                .find(|(g, _)| *g == gpu)
                .expect("built above")
                .1,
        )
    };

    // --- initial BE placement --------------------------------------------
    // Job j starts on replica j mod n, scanning forward past replicas
    // that already host its model (≤ 1 instance of a model per replica).
    let mut jobs_on: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, &model) in cfg.be_jobs.iter().enumerate() {
        let host = (0..n)
            .map(|off| (j + off) % n)
            .find(|&r| !jobs_on[r].iter().any(|&k| cfg.be_jobs[k] == model))
            .unwrap_or_else(|| panic!("BE model {model} has more jobs than replicas"));
        jobs_on[host].push(j);
    }

    // --- the cluster-wide arrival stream ---------------------------------
    let trace = ArrivalTrace::new(per_service_traces(
        &cfg.trace,
        n_ls,
        cfg.horizon_us,
        cfg.seed,
    ));
    let merged = trace.merged();

    // --- replica scenarios, policies, lanes ------------------------------
    let empty_arrivals = Arc::new(ArrivalTrace::default());
    let scenarios: Vec<Scenario> = (0..n)
        .map(|r| Scenario {
            spec: deps[r].spec.clone(),
            ls: Arc::clone(&deps[r].ls_tasks),
            be: be_set_of(cfg.gpus[r]),
            ls_instances: cfg.ls_instances,
            arrivals: Arc::clone(&empty_arrivals),
            horizon_us: cfg.horizon_us,
        })
        .collect();
    let mut lanes: Vec<Lane> = Vec::with_capacity(n);
    for (r, scenario) in scenarios.iter().enumerate() {
        let policy = match cfg.system {
            SystemKind::Sgdrc => {
                let mut pcfg = cfg.sgdrc.clone();
                if cfg.controller.adaptive_ch_be {
                    pcfg.ch_be = ch_be_for(cfg.sgdrc.ch_be, jobs_on[r].len());
                }
                PolicySlot::Sgdrc(Sgdrc::new(&deps[r].spec, pcfg))
            }
            SystemKind::SgdrcStatic => PolicySlot::Sgdrc(Sgdrc::new(
                &deps[r].spec,
                SgdrcConfig {
                    static_partition: true,
                    ..Default::default()
                },
            )),
            other => PolicySlot::Boxed(other.make(&deps[r].spec)),
        };
        let mut sim = ReplicaSim::prepare(scenario, &mut ctxs[r]);
        // Park every BE task not initially placed here *before* the first
        // dispatch, so the opening launches match the placement.
        for (b, &model) in fleet_models.iter().enumerate() {
            let resident = jobs_on[r].iter().any(|&k| cfg.be_jobs[k] == model);
            sim.state_mut().set_be_active(b, resident);
        }
        // Per-replica SLOs (replica-local: a slower GPU has a looser
        // SLO, §9.2's n × isolated-p99 with n = LS services + 1 BE
        // slot).
        let services = deps[r].ls_tasks.len() + 1;
        let slos: Vec<f64> = deps[r]
            .ls_tasks
            .iter()
            .map(|t| slo_for(t.profile.isolated_e2e_us, services))
            .collect();
        let mut lane = Lane {
            sim,
            policy,
            seen_done: vec![0; n_ls],
            slos,
            win_hist: LatencyHistogram::new(),
            cum_hist: LatencyHistogram::new(),
            slo_met: 0,
            last_ratio: 0.0,
            routed: 0,
        };
        lane.sim.begin(lane.policy.as_dyn());
        lanes.push(lane);
    }

    // --- fleet clock state -----------------------------------------------
    let order: Vec<usize> = if cfg.advance_order.is_empty() {
        (0..n).collect()
    } else {
        assert_eq!(
            cfg.advance_order.len(),
            n,
            "advance_order must permute 0..n"
        );
        let mut seen = vec![false; n];
        for &r in &cfg.advance_order {
            assert!(r < n && !seen[r], "advance_order must permute 0..n");
            seen[r] = true;
        }
        cfg.advance_order.clone()
    };
    // The epoch-parallel clock degenerates to the serial schedule when
    // there is nothing to overlap: a 1-replica fleet, or a pool with a
    // single participant (the 1-CPU default — where querying the pool
    // is the only cost this run pays for the parallel machinery).
    let parallel = cfg.clock == ClockKind::Parallel && n > 1 && rayon::current_pool_workers() > 1;
    let mut migrations: Vec<Migration> = Vec::new();
    let mut views: Vec<ReplicaView> = Vec::with_capacity(n);

    let period = cfg.controller.period_us;
    let mut next_tick = if period > 0.0 { period } else { f64::INFINITY };
    let mut next_arrival = 0usize;

    loop {
        let arrival = merged.get(next_arrival);
        let t_arr = arrival.map_or(f64::INFINITY, |a| a.at_us);
        let tick_due = next_tick < t_arr && next_tick < cfg.horizon_us;
        let arrival_due = arrival.is_some() && t_arr <= cfg.horizon_us;
        if tick_due {
            // Quiesce the fleet up to the tick — one epoch, every busy
            // replica in parallel — then drain and rebalance in
            // canonical replica order.
            quiesce(&mut lanes, &order, parallel, Some(next_tick));
            for lane in &mut lanes {
                lane.drain();
                lane.last_ratio = if lane.win_hist.is_empty() {
                    0.0
                } else {
                    lane.win_hist.percentile(99.0)
                };
                lane.win_hist.reset();
            }
            controller_rebalance(
                cfg,
                next_tick,
                &deps,
                &fleet_models,
                &mut jobs_on,
                &mut lanes,
                &mut migrations,
            );
            next_tick += period;
            continue;
        }
        if !arrival_due {
            break;
        }
        let a = *arrival.expect("checked");
        // Quiesce every replica up to the arrival so the router sees a
        // consistent instant; replicas are independent, so neither the
        // serial order nor the parallel schedule matters (the
        // determinism tests permute both).
        quiesce(&mut lanes, &order, parallel, Some(a.at_us));
        views.clear();
        for (r, lane) in lanes.iter().enumerate() {
            views.push(ReplicaView {
                gpu: cfg.gpus[r],
                backlog: lane.sim.state().ls_backlog(),
                window_p99_ratio: lane.last_ratio,
                resident_be: jobs_on[r].len(),
            });
        }
        let target = router.route(&views, a.task as usize, a.at_us);
        assert!(target < n, "router picked replica {target} of {n}");
        lanes[target].inject(a.task as usize, a.at_us);
        next_arrival += 1;
    }
    // Drain: no further arrivals or ticks — run every replica out to the
    // horizon.
    quiesce(&mut lanes, &order, parallel, None);
    for lane in &mut lanes {
        lane.drain();
    }

    // --- aggregate --------------------------------------------------------
    let mut result = ClusterResult {
        replicas: Vec::with_capacity(n),
        fleet_hist: LatencyHistogram::new(),
        requests: 0,
        slo_met: 0,
        goodput_hz: 0.0,
        be_completed: 0,
        be_preemptions: 0,
        engine_events: 0,
        migrations,
    };
    for (r, lane) in lanes.into_iter().enumerate() {
        let stats = lane.sim.finish(&mut ctxs[r]);
        let hist = lane.cum_hist;
        let requests = hist.count();
        result.fleet_hist.merge(&hist);
        result.requests += requests;
        result.slo_met += lane.slo_met;
        result.be_completed += stats.be_completed.iter().sum::<u64>();
        result.be_preemptions += stats.be_preemptions;
        result.engine_events += stats.engine_events;
        result.replicas.push(ReplicaSummary {
            gpu: cfg.gpus[r],
            routed: lane.routed,
            requests,
            slo_met: lane.slo_met,
            hist,
            seed: cell_seed(cfg.seed, r as u64),
            stats,
        });
    }
    result.goodput_hz = result.slo_met as f64 / (cfg.horizon_us / 1e6);
    result
}

/// One controller tick's migration decision: move one BE job from the
/// worst SLO-breaching replica onto the most underloaded replica that
/// can host it. Scans run in replica-index order, so the decision is
/// independent of the fleet clock's schedule (serial order or parallel
/// placement alike).
fn controller_rebalance(
    cfg: &ClusterConfig,
    at_us: f64,
    deps: &[Arc<Deployment>],
    fleet_models: &[usize],
    jobs_on: &mut [Vec<usize>],
    lanes: &mut [Lane],
    migrations: &mut Vec<Migration>,
) {
    let n = jobs_on.len();
    // Source: the worst breaching replica that has BE work to shed.
    let src = (0..n)
        .filter(|&r| lanes[r].last_ratio > cfg.controller.breach_ratio && !jobs_on[r].is_empty())
        .max_by(|&a, &b| {
            lanes[a]
                .last_ratio
                .total_cmp(&lanes[b].last_ratio)
                .then(b.cmp(&a)) // ties → lower index
        });
    let Some(src) = src else { return };
    // Destinations with headroom, best (ratio, backlog) first.
    let mut dests: Vec<usize> = (0..n)
        .filter(|&r| r != src && lanes[r].last_ratio < cfg.controller.headroom_ratio)
        .collect();
    dests.sort_by(|&a, &b| {
        lanes[a]
            .last_ratio
            .total_cmp(&lanes[b].last_ratio)
            .then(
                lanes[a]
                    .sim
                    .state()
                    .ls_backlog()
                    .cmp(&lanes[b].sim.state().ls_backlog()),
            )
            .then(a.cmp(&b))
    });
    for dst in dests {
        // First job of the source whose model the destination lacks.
        let movable = jobs_on[src].iter().copied().find(|&j| {
            let model = cfg.be_jobs[j];
            !jobs_on[dst].iter().any(|&k| cfg.be_jobs[k] == model)
        });
        let Some(job) = movable else { continue };
        let model = cfg.be_jobs[job];
        let b = fleet_models
            .iter()
            .position(|&m| m == model)
            .expect("job model is a fleet model");
        // Park on the source: stop future launches, evict the running
        // kernel if it is this task's (§7.1 eviction flag).
        let st = lanes[src].sim.state_mut();
        st.set_be_active(b, false);
        if st.be_launch.map(|l| l.task) == Some(b) {
            st.preempt_be();
        }
        // Resume on the destination.
        lanes[dst].sim.state_mut().set_be_active(b, true);
        let pos = jobs_on[src]
            .iter()
            .position(|&k| k == job)
            .expect("present");
        jobs_on[src].remove(pos);
        jobs_on[dst].push(job);
        // Optionally retune Ch_BE on both ends (dynamic SGDRC only —
        // the static baseline keeps its fixed split).
        if cfg.controller.adaptive_ch_be && cfg.system == SystemKind::Sgdrc {
            for r in [src, dst] {
                if let PolicySlot::Sgdrc(p) = &mut lanes[r].policy {
                    let pcfg = SgdrcConfig {
                        ch_be: ch_be_for(cfg.sgdrc.ch_be, jobs_on[r].len()),
                        ..cfg.sgdrc.clone()
                    };
                    p.reconfigure(&deps[r].spec, pcfg);
                }
            }
        }
        // Let both policies react immediately (launch the migrated job /
        // expand onto freed resources).
        lanes[src].dispatch();
        lanes[dst].dispatch();
        migrations.push(Migration {
            at_us,
            job,
            model,
            from: src,
            to: dst,
        });
        return; // one migration per tick
    }
}
