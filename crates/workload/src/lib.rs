//! # workload — traces, metrics and the end-to-end experiment runner
//!
//! The §9 evaluation harness: Apollo-like bursty request traces
//! ([`trace`]), SLO/latency/throughput metrics ([`metrics`]) and the
//! Fig. 17 runner that deploys the Tab. 3 zoo against every system
//! ([`runner`]).

pub mod metrics;
pub mod runner;
pub mod trace;

pub use metrics::{ls_metrics, percentile, slo_for, LsMetrics, SystemResult};
pub use runner::{run_cell, run_system, Deployment, EndToEndConfig, Load, SystemKind};
pub use trace::{generate, per_service_traces, TraceConfig};
