//! # workload — traces, metrics and the end-to-end experiment runner
//!
//! The §9 evaluation harness: Apollo-like bursty request traces
//! ([`trace`]), SLO/latency/throughput metrics plus the mergeable
//! latency-histogram sketch ([`metrics`]), the Fig. 17 runner that
//! deploys the Tab. 3 zoo against every system ([`runner`]), and the
//! cluster-scale short-cell sweep engine ([`sweep`]).

pub mod metrics;
pub mod runner;
pub mod sweep;
pub mod trace;

pub use metrics::{ls_metrics, percentile, slo_for, LatencyHistogram, LsMetrics, SystemResult};
pub use runner::{run_cell, run_system, Deployment, EndToEndConfig, Load, SystemKind};
pub use sweep::{
    cell_seed, naive_cell_summary, run_sweep, CellSpec, CellSummary, SweepGrid, SweepOptions,
    SweepResult,
};
pub use trace::{generate, per_service_traces, TraceConfig};
