//! # workload — traces, metrics and the end-to-end experiment runner
//!
//! The §9 evaluation harness: Apollo-like bursty/diurnal request traces
//! ([`trace`]), SLO/latency/throughput metrics plus the mergeable
//! latency-histogram sketch ([`metrics`]), the Fig. 17 runner that
//! deploys the Tab. 3 zoo against every system ([`runner`]), the
//! cluster-scale short-cell sweep engine ([`sweep`]), the multi-GPU
//! fleet simulator with SLO-aware routing and dynamic BE placement
//! ([`cluster`]), deterministic fault injection with
//! requeue-on-crash resilience ([`chaos`]), warm-pool autoscaling
//! with SLO-breach draining and crash replacement ([`elastic`]), and
//! the deterministic flight recorder / metrics registry / clock
//! profiler for postmortem observability ([`telemetry`]), and tiered
//! SLO classes with admission control, brownout degradation and
//! deadline-aware retry budgets ([`tiers`]).

pub mod calendar;
pub mod chaos;
pub mod cluster;
pub mod elastic;
pub mod metrics;
pub mod runner;
pub mod sweep;
pub mod telemetry;
pub mod tiers;
pub mod trace;

pub use calendar::EventCalendar;
pub use chaos::{DegradationConfig, FaultEvent, FaultKind, FaultPlan, RetryConfig};
pub use cluster::{
    run_cluster, run_cluster_in, run_cluster_prepared, ClockKind, ClusterConfig, ClusterCtx,
    ClusterResult, ControllerConfig, JoinShortestBacklog, PreparedCluster, ReplicaView, RoundRobin,
    RouterKind, RoutingPolicy, SloAwarePowerOfTwo,
};
pub use elastic::{
    ElasticConfig, FleetSignals, HoldPolicy, ScaleCause, ScaleEvent, ScaleEventKind, ScalingPolicy,
    ScalingPolicyKind, ThresholdPolicy, WarmPoolConfig,
};
pub use metrics::{ls_metrics, percentile, slo_for, LatencyHistogram, LsMetrics, SystemResult};
pub use runner::{run_cell, run_system, Deployment, EndToEndConfig, Load, SystemKind};
pub use sweep::{
    cell_seed, naive_cell_summary, run_sweep, CellSpec, CellSummary, SliceHist, SweepGrid,
    SweepOptions, SweepResult,
};
pub use telemetry::{
    ClockProfile, EventKind, FlightEvent, MetricSeries, RefusalReason, RequeueCause,
    TelemetryConfig, TelemetryResult, FLEET_TRACK,
};
pub use tiers::{AdmissionClass, TierConfig, TierOutcome, TiersConfig};
pub use trace::{generate, per_service_traces, ArrivalGen, ArrivalStream, TraceConfig};
