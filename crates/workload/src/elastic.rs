//! # elastic — warm-pool autoscaling and self-healing fleet membership
//!
//! The capacity layer on top of the fleet clock: a [`ScalingPolicy`]
//! reads fleet-wide windowed signals ([`FleetSignals`]) at every
//! controller tick and returns a desired Active-replica count. The
//! cluster runtime turns the delta into lane lifecycle transitions —
//! scale-up draws lanes from a pre-declared warm pool behind an
//! explicit seeded provisioning delay (cold-start is ≈ a pointer bump
//! thanks to the memoized `Deployment::cached`, but real fleets pay an
//! allocation latency, so we model it like mtop's DRA
//! allocation/deallocation timing), scale-down and SLO-breach draining
//! quiesce a lane with cursor-preserving BE evacuation and LS requeue
//! through the chaos retry machinery, and crash replacement provisions
//! a warm lane once a dead replica stays dead past a confirmation
//! window.
//!
//! Everything here is plain deterministic data: policies are pure
//! functions of the signals, provisioning jitter comes from a
//! splitmix64 chain on the run seed, and every membership change is a
//! clock decision point ordered `fault < scale < tick < retry <
//! arrival` — so serial and parallel clocks stay bit-identical under
//! any interleaving of scaling and fault events.

use gpu_spec::GpuModel;

use crate::sweep::splitmix64;

/// The reserve of pre-provisioned lanes scale-up and crash replacement
/// draw from. Warm lanes are fully prepared at config time (scenarios,
/// policies, BE sets) but start frozen: not routable, not advancing,
/// zero simulation cost until activated.
#[derive(Debug, Clone)]
pub struct WarmPoolConfig {
    /// GPU model per warm lane; the pool size is `gpus.len()`.
    pub gpus: Vec<GpuModel>,
    /// Mean delay between a provisioning decision and the lane going
    /// routable (µs). Models DRA-style allocation latency.
    pub provision_delay_us: f64,
    /// Relative jitter on the delay, in `[0, 1)`: each provisioning
    /// draw is `delay * (1 - jitter + 2*jitter*u)` for a seeded
    /// uniform `u`.
    pub provision_jitter: f64,
}

impl WarmPoolConfig {
    pub fn new(gpus: Vec<GpuModel>) -> Self {
        WarmPoolConfig {
            gpus,
            provision_delay_us: 50_000.0,
            provision_jitter: 0.2,
        }
    }
}

/// Fleet-wide windowed signals handed to [`ScalingPolicy::desired_replicas`]
/// at each controller tick. All latency/goodput figures cover the tick
/// window just closed, not the whole run.
#[derive(Debug, Clone, Copy)]
pub struct FleetSignals {
    /// Tick instant (µs).
    pub at_us: f64,
    /// Lanes currently Active (routable members).
    pub active: usize,
    /// Active lanes that are alive and heartbeat-fresh.
    pub healthy_active: usize,
    /// Lanes mid-provisioning (decided, not yet routable).
    pub provisioning: usize,
    /// Warm lanes still available to draw from.
    pub warm_available: usize,
    /// Worst per-lane windowed p99/SLO ratio across healthy Active
    /// lanes (0.0 when no lane completed a request this window).
    pub window_p99_ratio: f64,
    /// LS completions across the fleet in this window.
    pub window_completions: u64,
    /// Arrivals injected across the fleet in this window.
    pub window_arrivals: u64,
    /// Total queued LS requests across Active lanes, per Active lane.
    pub backlog_per_active: f64,
}

impl FleetSignals {
    /// Whether the fleet is under measured overload at this tick: the
    /// per-active backlog exceeds `enter_backlog`, or any healthy lane
    /// breached its windowed p99/SLO budget. This is the same
    /// observation the tiered admission controller's brownout ladder
    /// escalates on (`TiersConfig::enter_backlog`), exposed here so
    /// scaling policies can react to the exact signal that is about to
    /// start browning out low tiers.
    pub fn overload_pressure(&self, enter_backlog: usize) -> bool {
        self.backlog_per_active > enter_backlog as f64 || self.window_p99_ratio > 1.0
    }
}

/// Why a scaling action fired — recorded on the [`ScaleEvent`] so the
/// bench can attribute membership churn to load, SLO pressure, or
/// self-healing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleCause {
    /// Threshold policy asked for more/less capacity.
    Load,
    /// Sustained SLO breach drained the worst lane.
    SloBreach,
    /// A confirmed-dead lane was replaced from the warm pool.
    CrashReplace,
}

/// A membership transition, timestamped and lane-attributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleEventKind {
    /// A warm lane started provisioning; routable at `ready_at_us`.
    Provision { cause: ScaleCause, ready_at_us: f64 },
    /// A provisioning lane finished its delay and joined the routable set.
    Activate,
    /// An Active lane stopped accepting traffic and began quiescing.
    DrainStart { cause: ScaleCause },
    /// A crash aborted an in-flight provisioning; the lane returned to Warm.
    CancelProvision,
    /// A draining (or confirmed-dead) lane left the fleet for good.
    Retire,
}

/// One entry in [`ClusterResult::scale_events`](crate::cluster::ClusterResult::scale_events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    pub at_us: f64,
    pub replica: usize,
    pub kind: ScaleEventKind,
}

/// A capacity policy: pure function of the windowed fleet signals to a
/// desired Active-lane count. The runtime clamps the answer to
/// `[min_replicas, max_replicas]`, applies cooldowns, and turns the
/// delta into provision/drain actions. Implementations must be
/// deterministic — a learned elasticity agent plugs in here later.
pub trait ScalingPolicy: Send {
    fn name(&self) -> &'static str;
    /// Desired number of Active lanes. `signals.active + signals.provisioning`
    /// is the capacity already committed.
    fn desired_replicas(&self, signals: &FleetSignals) -> usize;
}

/// Never changes capacity — the no-op policy used for bit-identity
/// baselines (min == max == initial must reproduce the pre-elastic
/// simulator exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldPolicy;

impl ScalingPolicy for HoldPolicy {
    fn name(&self) -> &'static str {
        "hold"
    }
    fn desired_replicas(&self, signals: &FleetSignals) -> usize {
        signals.active + signals.provisioning
    }
}

/// Threshold rules: scale up by `step` when the windowed p99/SLO ratio
/// or the per-lane backlog crosses the up thresholds, scale down by
/// `step` when both sit below the down thresholds. Asymmetric
/// hysteresis (`down_* < up_*`) plus the runtime cooldowns keep the
/// fleet from flapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPolicy {
    /// Scale up when windowed p99/SLO exceeds this (1.0 = at the SLO).
    pub up_ratio: f64,
    /// Scale down only when windowed p99/SLO is below this.
    pub down_ratio: f64,
    /// Scale up when mean LS backlog per Active lane exceeds this.
    pub up_backlog: f64,
    /// Scale down only when mean LS backlog per Active lane is below this.
    pub down_backlog: f64,
    /// Lanes added/removed per decision.
    pub step: usize,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy {
            up_ratio: 1.0,
            down_ratio: 0.55,
            up_backlog: 12.0,
            down_backlog: 3.0,
            step: 1,
        }
    }
}

impl ScalingPolicy for ThresholdPolicy {
    fn name(&self) -> &'static str {
        "threshold"
    }
    fn desired_replicas(&self, s: &FleetSignals) -> usize {
        let committed = s.active + s.provisioning;
        let pressed = s.window_p99_ratio > self.up_ratio || s.backlog_per_active > self.up_backlog;
        let idle = s.window_p99_ratio < self.down_ratio
            && s.backlog_per_active < self.down_backlog
            && s.window_completions > 0;
        if pressed {
            committed + self.step
        } else if idle {
            committed.saturating_sub(self.step)
        } else {
            committed
        }
    }
}

/// Config-level policy selector (the trait object is built per run so
/// [`ElasticConfig`] stays `Clone`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingPolicyKind {
    Hold,
    Threshold(ThresholdPolicy),
}

impl ScalingPolicyKind {
    pub fn make(&self) -> Box<dyn ScalingPolicy> {
        match self {
            ScalingPolicyKind::Hold => Box::new(HoldPolicy),
            ScalingPolicyKind::Threshold(p) => Box::new(*p),
        }
    }
    pub fn name(&self) -> &'static str {
        match self {
            ScalingPolicyKind::Hold => "hold",
            ScalingPolicyKind::Threshold(_) => "threshold",
        }
    }
}

/// Elastic-fleet configuration: the warm pool, the policy, the bounds
/// and cooldowns, and the self-healing knobs.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// The reserve lanes scale-up and replacement draw from.
    pub warm_pool: WarmPoolConfig,
    /// Capacity policy evaluated at every controller tick.
    pub policy: ScalingPolicyKind,
    /// Never drain below this many Active lanes.
    pub min_replicas: usize,
    /// Never provision above this many Active + provisioning lanes.
    pub max_replicas: usize,
    /// Minimum µs between successive scale-up decisions.
    pub up_cooldown_us: f64,
    /// Minimum µs between successive scale-down decisions.
    pub down_cooldown_us: f64,
    /// Drain the worst Active lane (replacing it from the warm pool
    /// when one is available) after this many consecutive ticks with
    /// its windowed p99/SLO ratio above `breach_drain_ratio`.
    /// `0` disables breach draining.
    pub breach_drain_ticks: u32,
    /// Windowed p99/SLO ratio a lane must exceed to count as breached.
    pub breach_drain_ratio: f64,
    /// Replace a dead Active lane from the warm pool once it has been
    /// dead this long (µs). `f64::INFINITY` disables replacement.
    pub replace_after_us: f64,
}

impl ElasticConfig {
    pub fn new(warm_pool: WarmPoolConfig, policy: ScalingPolicyKind) -> Self {
        ElasticConfig {
            warm_pool,
            policy,
            min_replicas: 1,
            max_replicas: usize::MAX,
            up_cooldown_us: 0.0,
            down_cooldown_us: 0.0,
            breach_drain_ticks: 0,
            breach_drain_ratio: 1.5,
            replace_after_us: f64::INFINITY,
        }
    }

    /// Validate against the fleet shape: `initial` is the configured
    /// lane count, `total` includes warm-pool lanes. Panics with a
    /// descriptive message on nonsense (mirrors `ClusterConfig::prepare`
    /// validation style).
    pub fn validate(&self, initial: usize, total: usize) {
        assert!(self.min_replicas >= 1, "elastic: min_replicas must be >= 1");
        assert!(
            self.min_replicas <= initial,
            "elastic: min_replicas ({}) exceeds the initial fleet size ({initial})",
            self.min_replicas
        );
        assert!(
            self.max_replicas >= initial,
            "elastic: max_replicas ({}) is below the initial fleet size ({initial}); \
             start smaller or raise the bound",
            self.max_replicas
        );
        let max_eff = self.max_replicas.min(total);
        assert!(
            max_eff >= self.min_replicas,
            "elastic: max_replicas clamps below min_replicas"
        );
        assert!(
            self.warm_pool.provision_delay_us >= 0.0,
            "elastic: provision_delay_us must be >= 0"
        );
        assert!(
            (0.0..1.0).contains(&self.warm_pool.provision_jitter),
            "elastic: provision_jitter must be in [0, 1)"
        );
        assert!(
            self.breach_drain_ratio > 0.0,
            "elastic: breach_drain_ratio must be > 0"
        );
        assert!(
            self.replace_after_us >= 0.0,
            "elastic: replace_after_us must be >= 0 (use INFINITY to disable)"
        );
    }

    /// True when the config can never change membership: no warm lanes
    /// and bounds pinned to the initial size. Used to keep the static
    /// fast path bit-identical.
    pub fn is_static(&self, initial: usize) -> bool {
        self.warm_pool.gpus.is_empty()
            && self.min_replicas == initial
            && self.max_replicas == initial
            && self.breach_drain_ticks == 0
            && self.replace_after_us.is_infinite()
    }
}

/// Seeded provisioning-delay draw: deterministic per (run seed, draw
/// index), independent of clock kind and worker count.
pub(crate) fn provision_delay(cfg: &WarmPoolConfig, seed: u64, draw: u64) -> f64 {
    let j = cfg.provision_jitter;
    if j == 0.0 || cfg.provision_delay_us == 0.0 {
        return cfg.provision_delay_us;
    }
    let bits = splitmix64(seed ^ splitmix64(0x00E1_A571C ^ draw));
    let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
    cfg.provision_delay_us * (1.0 - j + 2.0 * j * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> FleetSignals {
        FleetSignals {
            at_us: 0.0,
            active: 4,
            healthy_active: 4,
            provisioning: 0,
            warm_available: 2,
            window_p99_ratio: 0.8,
            window_completions: 100,
            window_arrivals: 100,
            backlog_per_active: 5.0,
        }
    }

    #[test]
    fn hold_never_moves() {
        let mut s = sig();
        s.window_p99_ratio = 10.0;
        assert_eq!(HoldPolicy.desired_replicas(&s), 4);
        s.provisioning = 2;
        assert_eq!(HoldPolicy.desired_replicas(&s), 6);
    }

    #[test]
    fn threshold_scales_on_pressure_and_idles_down() {
        let p = ThresholdPolicy::default();
        let mut s = sig();
        assert_eq!(p.desired_replicas(&s), 4, "in the hysteresis band");
        s.window_p99_ratio = 1.2;
        assert_eq!(p.desired_replicas(&s), 5, "ratio pressure scales up");
        s.window_p99_ratio = 0.8;
        s.backlog_per_active = 20.0;
        assert_eq!(p.desired_replicas(&s), 5, "backlog pressure scales up");
        s.backlog_per_active = 1.0;
        s.window_p99_ratio = 0.2;
        assert_eq!(p.desired_replicas(&s), 3, "idle window scales down");
        s.window_completions = 0;
        assert_eq!(p.desired_replicas(&s), 4, "empty window holds");
    }

    #[test]
    fn provision_delay_is_deterministic_and_bounded() {
        let cfg = WarmPoolConfig::new(vec![]);
        let a = provision_delay(&cfg, 42, 0);
        let b = provision_delay(&cfg, 42, 0);
        assert_eq!(a, b);
        assert_ne!(a, provision_delay(&cfg, 42, 1));
        for draw in 0..64 {
            let d = provision_delay(&cfg, 7, draw);
            let (lo, hi) = (
                cfg.provision_delay_us * (1.0 - cfg.provision_jitter),
                cfg.provision_delay_us * (1.0 + cfg.provision_jitter),
            );
            assert!(d >= lo && d <= hi, "draw {draw} out of bounds: {d}");
        }
        let flat = WarmPoolConfig {
            provision_jitter: 0.0,
            ..WarmPoolConfig::new(vec![])
        };
        assert_eq!(provision_delay(&flat, 1, 0), flat.provision_delay_us);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mk = || ElasticConfig::new(WarmPoolConfig::new(vec![]), ScalingPolicyKind::Hold);
        mk().validate(4, 4);
        let r = std::panic::catch_unwind(|| {
            let mut e = mk();
            e.min_replicas = 5;
            e.validate(4, 4);
        });
        assert!(r.is_err(), "min above initial must be rejected");
        let r = std::panic::catch_unwind(|| {
            let mut e = mk();
            e.warm_pool.provision_jitter = 1.0;
            e.validate(4, 4);
        });
        assert!(r.is_err(), "jitter of 1.0 must be rejected");
    }

    #[test]
    fn static_detection() {
        let mut e = ElasticConfig::new(WarmPoolConfig::new(vec![]), ScalingPolicyKind::Hold);
        e.min_replicas = 4;
        e.max_replicas = 4;
        assert!(e.is_static(4));
        e.replace_after_us = 1.0;
        assert!(!e.is_static(4));
    }
}
