//! # tiers — per-service SLO tiers, admission classes, and the
//! brownout ladder configuration
//!
//! SGDRC's premise is protecting latency-sensitive work from co-located
//! interference, but a fleet under real overload (crash, thermal
//! throttle, diurnal peak, autoscaler lag) also has to decide what
//! *not* to run. This module promotes SLO tiers to first-class fleet
//! config: every LS service carries a [`TierConfig`] (tier id, goodput
//! weight, soft/hard deadline, [`AdmissionClass`], retry budget), and
//! the cluster runtime threads the tier map through admission, routing,
//! degradation and retry:
//!
//! * **Admission control** — at every arrival the router decision point
//!   consults the brownout level (a hysteresis state machine updated at
//!   controller ticks from the same per-alive-backlog / windowed
//!   p99-pressure observation the autoscaler reads). Under overload,
//!   lower tiers are first *queued* in bounded per-tier queues, then
//!   *refused* outright, with the reason recorded in telemetry.
//! * **Brownout ladder** — `degrade()` becomes a tier-ordered state
//!   machine: park BE → queue the lowest tier → shed it → queue the
//!   next tier → … Recovery steps back down one level per calm window
//!   (hysteresis), re-admitting tiers in reverse order.
//! * **Deadline-aware retries** — each tier carries its own max-retry
//!   budget and a hard deadline measured from *original* arrival;
//!   doomed redispatches are dropped instead of burning survivor
//!   capacity.
//! * **Weighted goodput** — Σ tier-weight × on-SLO completions, the
//!   figure of merit tiered admission is judged on.
//!
//! With `ClusterConfig::tiers == None` nothing here runs: the arrival
//! fast path, the legacy degradation thresholds and the retry rules are
//! bit-identical to the tier-blind simulator.

/// How the admission controller may treat a tier's arrivals under
/// overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionClass {
    /// Never queued, never refused: the brownout ladder skips this tier
    /// entirely (tier-1 / paying traffic).
    Guaranteed,
    /// Queued and ultimately refused under deep overload, after every
    /// `BestEffort` tier has been browned out.
    Burstable,
    /// First to brown out: queued, then refused, before any `Burstable`
    /// tier is touched.
    BestEffort,
}

impl AdmissionClass {
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionClass::Guaranteed => "guaranteed",
            AdmissionClass::Burstable => "burstable",
            AdmissionClass::BestEffort => "best_effort",
        }
    }

    /// Brownout precedence: higher sheds earlier. `Guaranteed` is
    /// exempt (never on the ladder).
    pub(crate) fn brown_severity(&self) -> u32 {
        match self {
            AdmissionClass::Guaranteed => 0,
            AdmissionClass::Burstable => 1,
            AdmissionClass::BestEffort => 2,
        }
    }
}

/// Per-LS-service tier attachment. `tiers[task]` configures LS service
/// `task`; services sharing a tier id form one admission/brownout unit
/// and must agree on weight and class (deadlines and retry budgets may
/// differ per service).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierConfig {
    /// Tier id; lower is higher priority (tier 1 = most protected).
    /// Ids need not be contiguous — ordering is what matters.
    pub tier: u32,
    /// Weight of one on-SLO completion of this service in the fleet's
    /// weighted goodput. Must be finite and > 0.
    pub weight: f64,
    /// Soft deadline (µs) from original arrival: a completion counts
    /// toward weighted goodput only if it met the replica SLO *and*
    /// finished within this bound. `INFINITY` = replica SLO only.
    pub soft_deadline_us: f64,
    /// Hard deadline (µs) from original arrival: a request that cannot
    /// complete by this point is dropped from the retry queue (and from
    /// the tier admission queue) instead of being redispatched.
    pub hard_deadline_us: f64,
    /// Overload treatment class.
    pub class: AdmissionClass,
    /// Per-tier retry budget: a request is dropped once it has been
    /// redispatched this many times. Replaces the fleet-wide
    /// `RetryConfig::max_retries` for this service when tiers are on.
    pub max_retries: u32,
}

impl TierConfig {
    /// A protected tier-1 service: never browned out, generous budget.
    pub fn guaranteed(weight: f64) -> Self {
        TierConfig {
            tier: 1,
            weight,
            soft_deadline_us: f64::INFINITY,
            hard_deadline_us: 250_000.0,
            class: AdmissionClass::Guaranteed,
            max_retries: 4,
        }
    }

    /// A mid-tier burstable service.
    pub fn burstable(tier: u32, weight: f64) -> Self {
        TierConfig {
            tier,
            weight,
            soft_deadline_us: f64::INFINITY,
            hard_deadline_us: 250_000.0,
            class: AdmissionClass::Burstable,
            max_retries: 2,
        }
    }

    /// A best-effort tier: first to queue, first to shed, no retries.
    pub fn best_effort(tier: u32, weight: f64) -> Self {
        TierConfig {
            tier,
            weight,
            soft_deadline_us: f64::INFINITY,
            hard_deadline_us: 250_000.0,
            class: AdmissionClass::BestEffort,
            max_retries: 0,
        }
    }
}

/// Fleet-level tiered-SLO configuration attached to
/// `ClusterConfig::tiers`. `None` keeps the tier-blind simulator
/// bit-identical to previous behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct TiersConfig {
    /// One entry per LS service, indexed by task id.
    pub tiers: Vec<TierConfig>,
    /// Capacity of each browned-out tier's bounded admission queue.
    /// A queued arrival is dispatched once the ladder steps back below
    /// the tier's queue level, or dropped when its hard deadline
    /// passes; at capacity further arrivals are refused (`QueueFull`).
    pub queue_capacity: usize,
    /// Per-alive-lane LS backlog above which the ladder escalates one
    /// level per controller tick.
    pub enter_backlog: usize,
    /// Per-alive-lane LS backlog at or below which (absent SLO
    /// pressure) a tick counts as calm. Must be ≤ `enter_backlog`
    /// (hysteresis band).
    pub exit_backlog: usize,
    /// Consecutive calm ticks required before the ladder de-escalates
    /// one level (re-admitting tiers in reverse brownout order).
    pub hold_ticks: u32,
    /// Budget of pending requests actively shed per tick from the most
    /// backlogged routable lane while a tier sits at its shed level.
    pub shed_per_tick: usize,
}

impl TiersConfig {
    /// Tiered defaults over an explicit per-service tier map.
    pub fn new(tiers: Vec<TierConfig>) -> Self {
        TiersConfig {
            tiers,
            queue_capacity: 256,
            enter_backlog: 24,
            exit_backlog: 8,
            hold_ticks: 2,
            shed_per_tick: 32,
        }
    }

    /// An inert tier config: every service in one `Guaranteed` tier of
    /// weight 1 with the given retry budget/deadline, ladder thresholds
    /// unreachable. Runs configured with this produce results equal to
    /// `tiers: None` up to the tier-only report fields — the equality
    /// the `cluster_tiers` suite proves.
    pub fn inert(n_ls: usize, max_retries: u32, hard_deadline_us: f64) -> Self {
        let mut cfg = TiersConfig::new(vec![
            TierConfig {
                tier: 1,
                weight: 1.0,
                soft_deadline_us: f64::INFINITY,
                hard_deadline_us,
                class: AdmissionClass::Guaranteed,
                max_retries,
            };
            n_ls
        ]);
        cfg.enter_backlog = usize::MAX;
        cfg.exit_backlog = usize::MAX;
        cfg
    }

    /// Distinct tier ids in priority order (ascending id).
    pub fn tier_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.tiers.iter().map(|t| t.tier).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Validate against the fleet's LS service count. Panics with a
    /// descriptive message on nonsense (mirrors `ElasticConfig::validate`
    /// style, called from `ClusterConfig::prepare`).
    pub fn validate(&self, n_ls: usize) {
        assert_eq!(
            self.tiers.len(),
            n_ls,
            "tiers: {} TierConfig entries for {n_ls} LS services — one per service, by task id",
            self.tiers.len()
        );
        assert!(
            self.queue_capacity >= 1,
            "tiers: queue_capacity must be >= 1"
        );
        assert!(
            self.exit_backlog <= self.enter_backlog,
            "tiers: exit_backlog ({}) must not exceed enter_backlog ({}) — \
             the hysteresis band would be inverted",
            self.exit_backlog,
            self.enter_backlog
        );
        for (task, t) in self.tiers.iter().enumerate() {
            assert!(
                t.weight.is_finite() && t.weight > 0.0,
                "tiers: service {task} weight must be finite and > 0 (got {})",
                t.weight
            );
            assert!(
                t.soft_deadline_us > 0.0,
                "tiers: service {task} soft_deadline_us must be > 0"
            );
            assert!(
                t.hard_deadline_us > 0.0,
                "tiers: service {task} hard_deadline_us must be > 0"
            );
            // `soft == INFINITY` is the "replica SLO only" sentinel and
            // is valid against any hard deadline.
            assert!(
                t.soft_deadline_us <= t.hard_deadline_us || t.soft_deadline_us.is_infinite(),
                "tiers: service {task} soft deadline ({}) exceeds its hard deadline ({}) — \
                 completions past the hard deadline were already dropped",
                t.soft_deadline_us,
                t.hard_deadline_us
            );
        }
        // Services sharing a tier id form one brownout unit: weight and
        // class must agree or per-tier attribution becomes ambiguous.
        for id in self.tier_ids() {
            let members: Vec<&TierConfig> = self.tiers.iter().filter(|t| t.tier == id).collect();
            let first = members[0];
            for m in &members {
                assert!(
                    m.weight == first.weight && m.class == first.class,
                    "tiers: services sharing tier id {id} must agree on weight and class"
                );
            }
        }
    }
}

/// One tier's end-of-run ledger in
/// [`ClusterResult::tier_outcomes`](crate::cluster::ClusterResult::tier_outcomes),
/// aggregated over the tier's member services. The per-tier
/// conservation invariant holds exactly:
/// `arrivals == completed + timeout_drops + shed + refused + in_flight_at_end`.
#[derive(Debug, Clone, PartialEq)]
pub struct TierOutcome {
    /// Tier id (ascending across the vec).
    pub tier: u32,
    /// Admission class shared by the tier's services.
    pub class: AdmissionClass,
    /// Goodput weight shared by the tier's services.
    pub weight: f64,
    /// Arrivals injected for this tier's services.
    pub arrivals: u64,
    /// Arrivals admitted straight into a lane (or the retry queue when
    /// no lane was healthy) at arrival time.
    pub admitted: u64,
    /// Arrivals parked in the tier's bounded admission queue.
    pub queued: u64,
    /// Arrivals refused because the tier sat at its shed level.
    pub refused_overload: u64,
    /// Arrivals refused because the tier's admission queue was full.
    pub refused_queue_full: u64,
    /// Pending requests dropped by brownout shedding (plus legacy-path
    /// sheds attributed to the tier's services).
    pub shed: u64,
    /// Requests dropped on deadline/retry exhaustion (retry queue and
    /// admission-queue expiry combined).
    pub timeout_drops: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completions that met the replica SLO and the tier's soft
    /// deadline.
    pub slo_met: u64,
    /// Requests still queued/in-flight (lanes, retry queue, admission
    /// queue) at the horizon.
    pub in_flight_at_end: u64,
    /// `weight × slo_met / horizon_seconds`.
    pub weighted_goodput_hz: f64,
}

impl TierOutcome {
    /// Total refusals (overload + queue-full).
    pub fn refused(&self) -> u64 {
        self.refused_overload + self.refused_queue_full
    }

    /// The per-tier conservation identity; panics with the ledger on
    /// violation (test hook).
    pub fn assert_conserved(&self) {
        assert_eq!(
            self.arrivals,
            self.completed
                + self.timeout_drops
                + self.shed
                + self.refused()
                + self.in_flight_at_end,
            "tier {} conservation: arrivals {} != completed {} + drops {} + shed {} \
             + refused {} + in-flight {}",
            self.tier,
            self.arrivals,
            self.completed,
            self.timeout_drops,
            self.shed,
            self.refused(),
            self.in_flight_at_end,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tier() -> TiersConfig {
        TiersConfig::new(vec![
            TierConfig::guaranteed(8.0),
            TierConfig::burstable(2, 3.0),
            TierConfig::best_effort(3, 1.0),
        ])
    }

    #[test]
    fn validate_accepts_sane_config() {
        three_tier().validate(3);
        TiersConfig::inert(5, 4, 250_000.0).validate(5);
    }

    #[test]
    fn tier_ids_sorted_and_deduped() {
        let mut cfg = three_tier();
        cfg.tiers.push(TierConfig::best_effort(3, 1.0));
        assert_eq!(cfg.tier_ids(), vec![1, 2, 3]);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let wrong_len = std::panic::catch_unwind(|| three_tier().validate(2));
        assert!(wrong_len.is_err(), "length mismatch must be rejected");

        let bad_weight = std::panic::catch_unwind(|| {
            let mut cfg = three_tier();
            cfg.tiers[0].weight = 0.0;
            cfg.validate(3);
        });
        assert!(bad_weight.is_err(), "zero weight must be rejected");

        let inverted = std::panic::catch_unwind(|| {
            let mut cfg = three_tier();
            cfg.enter_backlog = 4;
            cfg.exit_backlog = 10;
            cfg.validate(3);
        });
        assert!(inverted.is_err(), "inverted hysteresis must be rejected");

        let split_tier = std::panic::catch_unwind(|| {
            let mut cfg = three_tier();
            cfg.tiers[2].tier = 2; // joins tier 2 with a different weight
            cfg.validate(3);
        });
        assert!(
            split_tier.is_err(),
            "services sharing a tier id must agree on weight/class"
        );

        let deadline = std::panic::catch_unwind(|| {
            let mut cfg = three_tier();
            cfg.tiers[1].soft_deadline_us = 1e6;
            cfg.tiers[1].hard_deadline_us = 1e5;
            cfg.validate(3);
        });
        assert!(deadline.is_err(), "soft > hard deadline must be rejected");
    }

    #[test]
    fn conservation_hook_fires() {
        let mut o = TierOutcome {
            tier: 1,
            class: AdmissionClass::Guaranteed,
            weight: 1.0,
            arrivals: 10,
            admitted: 8,
            queued: 0,
            refused_overload: 1,
            refused_queue_full: 1,
            shed: 2,
            timeout_drops: 1,
            completed: 4,
            slo_met: 3,
            in_flight_at_end: 1,
            weighted_goodput_hz: 0.0,
        };
        o.assert_conserved();
        o.arrivals = 11;
        assert!(std::panic::catch_unwind(move || o.assert_conserved()).is_err());
    }
}
