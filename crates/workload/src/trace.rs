//! Request trace generation (paper §9.2).
//!
//! LS clients "send requests by replaying Baidu's Apollo trace", a
//! real-time autonomous-driving inference trace with strong periodic
//! bursts. The trace itself is proprietary; this generator reproduces its
//! load shape: a non-homogeneous Poisson process whose rate alternates
//! between a base level and periodic bursts (sensor frames fan out to
//! several DNNs at once). The paper's two scenarios scale the same trace:
//! *heavy* replays it as-is, *light* halves the average rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trace shape parameters.
///
/// Two superimposed modulations on a Poisson base rate:
///
/// * **bursts** — a square wave (`burst_factor`× the base rate for
///   `burst_duty` of every `burst_period_s` cycle), the Apollo trace's
///   sensor-frame grouping;
/// * **diurnal swing** — a sinusoid scaling the whole profile by
///   `1 ± diurnal_depth` over `diurnal_period_s`, the day/night load
///   shape a fleet sees. Depth 0 (the default everywhere, including
///   [`apollo_like`](Self::apollo_like)) disables it and reproduces the
///   pre-diurnal generator byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Long-run average request rate, Hz (of the un-swung profile).
    pub mean_rate_hz: f64,
    /// Peak-to-mean rate ratio during bursts.
    pub burst_factor: f64,
    /// Burst cycle period, seconds.
    pub burst_period_s: f64,
    /// Fraction of each cycle spent in the burst.
    pub burst_duty: f64,
    /// Amplitude of the diurnal sinusoid in `[0, 1)`: the instantaneous
    /// rate swings between `(1 - depth)` and `(1 + depth)` times the
    /// burst profile. 0 disables the modulation entirely.
    pub diurnal_depth: f64,
    /// Diurnal cycle period, seconds (only meaningful with a non-zero
    /// depth; pick it comparable to the simulated horizon so a run sees
    /// the swing).
    pub diurnal_period_s: f64,
}

impl TraceConfig {
    /// The Apollo-like default per LS service: 55 req/s average with 1.8×
    /// bursts every 700 ms (≈ sensor frame grouping). Eight LS services at
    /// this rate put the GPU's LS path at ~45% mean utilization with
    /// bursts approaching saturation — the operating point where the
    /// paper's heavy scenario differentiates the sharing systems without
    /// driving every queue to divergence.
    pub fn apollo_like() -> Self {
        Self {
            mean_rate_hz: 55.0,
            burst_factor: 1.8,
            burst_period_s: 0.7,
            burst_duty: 0.3,
            diurnal_depth: 0.0,
            diurnal_period_s: 60.0,
        }
    }

    /// Scales the average rate (×0.5 = the paper's light scenario).
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            mean_rate_hz: self.mean_rate_hz * factor,
            ..self
        }
    }

    /// Replaces the burst shape — the trace-shape sensitivity knob for
    /// sweeps (`factor` 1 or `duty` 0 flattens the trace into a plain
    /// Poisson process).
    pub fn with_bursts(self, factor: f64, duty: f64) -> Self {
        debug_assert!(factor >= 1.0 && (0.0..=1.0).contains(&duty));
        Self {
            burst_factor: factor,
            burst_duty: duty,
            ..self
        }
    }

    /// Adds a diurnal swing of the given amplitude (`0 ≤ depth < 1`) and
    /// period. `depth` 0 turns it back off.
    pub fn with_diurnal(self, depth: f64, period_s: f64) -> Self {
        debug_assert!((0.0..1.0).contains(&depth) && period_s > 0.0);
        Self {
            diurnal_depth: depth,
            diurnal_period_s: period_s,
            ..self
        }
    }

    /// Instantaneous rate at time `t_us`.
    pub fn rate_at(&self, t_us: f64) -> f64 {
        let period_us = self.burst_period_s * 1e6;
        let phase = (t_us % period_us) / period_us;
        // Solve base rate so the long-run mean matches `mean_rate_hz`:
        // mean = base × (1 - duty) + base × factor × duty.
        let base =
            self.mean_rate_hz / (1.0 - self.burst_duty + self.burst_factor * self.burst_duty);
        let bursty = if phase < self.burst_duty {
            base * self.burst_factor
        } else {
            base
        };
        // Skipped entirely at depth 0 so the pre-diurnal arrival streams
        // stay byte-identical (no `sin` rounding in the thinning ratio).
        if self.diurnal_depth == 0.0 {
            return bursty;
        }
        let diurnal_phase = t_us / (self.diurnal_period_s * 1e6);
        bursty * (1.0 + self.diurnal_depth * (diurnal_phase * std::f64::consts::TAU).sin())
    }

    /// The largest instantaneous rate the profile can reach — the
    /// homogeneous rate [`generate`] thins from.
    fn peak_rate_hz(&self) -> f64 {
        let peak = self.rate_at(0.0).max(self.mean_rate_hz * self.burst_factor);
        if self.diurnal_depth == 0.0 {
            peak
        } else {
            peak * (1.0 + self.diurnal_depth)
        }
    }
}

/// Generates arrival times (µs, sorted) over `[0, horizon_us)` by thinning
/// a homogeneous Poisson process at the peak rate.
pub fn generate(cfg: &TraceConfig, horizon_us: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let peak_hz = cfg.peak_rate_hz();
    let mut t = 0.0f64;
    let mut out = Vec::new();
    loop {
        // Exponential inter-arrival at the peak rate.
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -u.ln() / peak_hz * 1e6;
        if t >= horizon_us {
            break;
        }
        // Thin to the instantaneous rate.
        if rng.gen_range(0.0..1.0) < cfg.rate_at(t) / peak_hz {
            out.push(t);
        }
    }
    out
}

/// Phase-shifted traces for several LS services (each service replays the
/// trace with its own offset and seed, as independent clients would).
pub fn per_service_traces(
    cfg: &TraceConfig,
    services: usize,
    horizon_us: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    (0..services)
        .map(|s| generate(cfg, horizon_us, seed.wrapping_add(s as u64 * 0x9E37)))
        .collect()
}

/// [`per_service_traces`] wrapped in the shareable [`ArrivalTrace`]: the
/// per-task lists stay the source of truth, and the serving loop's merged
/// stream is derived once per trace instead of once per scenario.
pub fn arrival_trace(
    cfg: &TraceConfig,
    services: usize,
    horizon_us: f64,
    seed: u64,
) -> sgdrc_core::serving::ArrivalTrace {
    sgdrc_core::serving::ArrivalTrace::new(per_service_traces(cfg, services, horizon_us, seed))
}

/// Stateful single-service generator producing the **exact** arrival
/// sequence of [`generate`] — same RNG draws in the same order, same
/// thinning — one value at a time, without materializing the whole
/// trace. This is the streaming long-horizon mode's arrival source: a
/// tens-of-millions-request horizon costs O(1) memory per service
/// instead of a multi-GiB `Vec<f64>` per task.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    cfg: TraceConfig,
    rng: StdRng,
    peak_hz: f64,
    horizon_us: f64,
    t: f64,
    next: Option<f64>,
}

impl ArrivalGen {
    /// Starts the stream [`generate`]`(cfg, horizon_us, seed)` would
    /// batch-produce.
    pub fn new(cfg: &TraceConfig, horizon_us: f64, seed: u64) -> Self {
        let mut gen = Self {
            cfg: *cfg,
            rng: StdRng::seed_from_u64(seed),
            peak_hz: cfg.peak_rate_hz(),
            horizon_us,
            t: 0.0,
            next: None,
        };
        gen.advance();
        gen
    }

    // The loop body is a statement-for-statement transcription of
    // `generate`'s: any divergence would break the stream==batch
    // equivalence the streaming cluster mode's bit-identity rests on.
    fn advance(&mut self) {
        loop {
            let u: f64 = self.rng.gen_range(1e-12..1.0);
            self.t += -u.ln() / self.peak_hz * 1e6;
            if self.t >= self.horizon_us {
                self.next = None;
                return;
            }
            if self.rng.gen_range(0.0..1.0) < self.cfg.rate_at(self.t) / self.peak_hz {
                self.next = Some(self.t);
                return;
            }
        }
    }

    /// The next pending arrival time (µs), `None` once past the horizon.
    pub fn peek(&self) -> Option<f64> {
        self.next
    }

    /// Consumes and returns the next arrival time.
    pub fn pop(&mut self) -> Option<f64> {
        let v = self.next;
        if v.is_some() {
            self.advance();
        }
        v
    }
}

/// Streaming k-way merge over per-service [`ArrivalGen`]s, yielding the
/// exact `(at_us, task)`-ordered sequence `ArrivalTrace::merged` would
/// produce for [`per_service_traces`] with the same parameters (same
/// per-service seed offsets). Equivalence holds because each service's
/// times are strictly increasing, so the stable sort the batch path
/// applies reduces to min-selection with a lowest-task tie-break.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    gens: Vec<ArrivalGen>,
}

impl ArrivalStream {
    /// One generator per service, seeded like [`per_service_traces`].
    pub fn new(cfg: &TraceConfig, services: usize, horizon_us: f64, seed: u64) -> Self {
        Self {
            gens: (0..services)
                .map(|s| ArrivalGen::new(cfg, horizon_us, seed.wrapping_add(s as u64 * 0x9E37)))
                .collect(),
        }
    }

    /// The earliest pending arrival without consuming it. Linear over
    /// services — the fleet runs a handful of LS services, not
    /// thousands.
    pub fn peek(&self) -> Option<sgdrc_core::serving::Arrival> {
        let mut best: Option<sgdrc_core::serving::Arrival> = None;
        for (task, gen) in self.gens.iter().enumerate() {
            if let Some(at) = gen.peek() {
                let better = match &best {
                    None => true,
                    Some(b) => at < b.at_us,
                };
                if better {
                    best = Some(sgdrc_core::serving::Arrival {
                        task: task as u32,
                        at_us: at,
                    });
                }
            }
        }
        best
    }

    /// Consumes and returns the earliest pending arrival.
    pub fn pop(&mut self) -> Option<sgdrc_core::serving::Arrival> {
        let head = self.peek()?;
        self.gens[head.task as usize].pop();
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_is_respected() {
        let cfg = TraceConfig::apollo_like();
        let horizon = 30e6; // 30 s
        let arrivals = generate(&cfg, horizon, 1);
        let rate = arrivals.len() as f64 / (horizon / 1e6);
        assert!(
            (rate - cfg.mean_rate_hz).abs() / cfg.mean_rate_hz < 0.1,
            "measured {rate} Hz vs {} Hz",
            cfg.mean_rate_hz
        );
    }

    #[test]
    fn scaling_halves_the_load() {
        let cfg = TraceConfig::apollo_like();
        let light = cfg.scaled(0.5);
        let heavy_n = generate(&cfg, 20e6, 2).len();
        let light_n = generate(&light, 20e6, 2).len();
        let ratio = light_n as f64 / heavy_n as f64;
        assert!((ratio - 0.5).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let arrivals = generate(&TraceConfig::apollo_like(), 5e6, 3);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| (0.0..5e6).contains(&t)));
    }

    #[test]
    fn trace_is_bursty() {
        // The coefficient of variation of arrivals-per-100ms must exceed a
        // homogeneous Poisson process's.
        let cfg = TraceConfig::apollo_like();
        let arrivals = generate(&cfg, 30e6, 4);
        let bin_us = 100_000.0;
        let bins = (30e6 / bin_us) as usize;
        let mut counts = vec![0.0f64; bins];
        for &a in &arrivals {
            counts[(a / bin_us) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / bins as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
        // Poisson would give var ≈ mean; bursts inflate it.
        assert!(var > mean * 1.25, "var {var} vs mean {mean}");
    }

    #[test]
    fn per_service_traces_are_distinct() {
        let traces = per_service_traces(&TraceConfig::apollo_like(), 3, 5e6, 7);
        assert_eq!(traces.len(), 3);
        assert_ne!(traces[0], traces[1]);
        assert_ne!(traces[1], traces[2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&TraceConfig::apollo_like(), 5e6, 42);
        let b = generate(&TraceConfig::apollo_like(), 5e6, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_depth_diurnal_is_byte_identical_to_base() {
        // `with_diurnal(0, …)` must not perturb a single arrival: the
        // generator takes the exact pre-diurnal code path (same RNG
        // draws, same thinning ratios) whenever the depth is zero.
        let base = TraceConfig::apollo_like();
        let zeroed = base.with_diurnal(0.0, 3.0);
        for seed in [1u64, 42, 0xA110C] {
            assert_eq!(generate(&base, 5e6, seed), generate(&zeroed, 5e6, seed));
        }
    }

    #[test]
    fn diurnal_swing_moves_load_between_half_periods() {
        // Depth 0.5 over a 4 s period: the first half-period (sin > 0)
        // must carry visibly more arrivals than the second.
        let cfg = TraceConfig::apollo_like().with_diurnal(0.5, 4.0);
        let arrivals = generate(&cfg, 4e6, 9);
        let first_half = arrivals.iter().filter(|&&t| t < 2e6).count() as f64;
        let second_half = arrivals.len() as f64 - first_half;
        assert!(
            first_half > second_half * 1.4,
            "peak half {first_half} vs trough half {second_half}"
        );
        // The long-run mean is preserved (the sinusoid integrates to 0).
        let long = generate(&cfg, 40e6, 9);
        let rate = long.len() as f64 / 40.0;
        assert!(
            (rate - cfg.mean_rate_hz).abs() / cfg.mean_rate_hz < 0.1,
            "measured {rate} Hz vs {} Hz",
            cfg.mean_rate_hz
        );
    }

    /// The streaming generator must replay [`generate`]'s sequence
    /// value-for-value — bitwise, not approximately — across trace
    /// shapes, including the diurnal branch.
    #[test]
    fn streaming_gen_matches_batch_generate() {
        let shapes = [
            TraceConfig::apollo_like(),
            TraceConfig::apollo_like().with_bursts(2.2, 0.25),
            TraceConfig::apollo_like().with_diurnal(0.35, 3.0),
        ];
        for cfg in &shapes {
            for seed in [1u64, 42, 0xF1EE7] {
                let batch = generate(cfg, 3e6, seed);
                let mut gen = ArrivalGen::new(cfg, 3e6, seed);
                let mut streamed = Vec::new();
                while let Some(t) = gen.pop() {
                    streamed.push(t);
                }
                assert_eq!(streamed, batch, "shape {cfg:?} seed {seed}");
                assert!(gen.peek().is_none());
            }
        }
    }

    /// The k-way merged stream must reproduce the batch path's merged
    /// arrival order exactly: same times, same task tags, same
    /// tie-break.
    #[test]
    fn arrival_stream_matches_merged_trace() {
        let cfg = TraceConfig::apollo_like().with_bursts(2.2, 0.25);
        for seed in [7u64, 0xF1EE7] {
            let trace = arrival_trace(&cfg, 4, 2e6, seed);
            let mut stream = ArrivalStream::new(&cfg, 4, 2e6, seed);
            let mut streamed = Vec::new();
            while let Some(a) = stream.pop() {
                streamed.push(a);
            }
            assert_eq!(streamed.as_slice(), trace.merged(), "seed {seed}");
        }
    }

    #[test]
    fn burst_knobs_reshape_the_trace() {
        // Flattening the bursts (factor 1) yields a plain Poisson
        // process: variance ≈ mean per 100 ms bin.
        let flat = TraceConfig::apollo_like().with_bursts(1.0, 0.0);
        let arrivals = generate(&flat, 30e6, 4);
        let bin_us = 100_000.0;
        let bins = (30e6 / bin_us) as usize;
        let mut counts = vec![0.0f64; bins];
        for &a in &arrivals {
            counts[(a / bin_us) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / bins as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
        assert!(
            var < mean * 1.25,
            "flattened trace still bursty: var {var} vs mean {mean}"
        );
        // Sharper bursts raise the peak rate.
        let sharp = TraceConfig::apollo_like().with_bursts(3.0, 0.1);
        assert!(sharp.rate_at(0.0) > TraceConfig::apollo_like().rate_at(0.0) * 1.5);
    }
}
