//! Deterministic fault injection for the fleet simulator.
//!
//! A [`FaultPlan`] is a replayable scenario spec: a sorted list of
//! [`FaultEvent`]s (replica crashes, transient stalls, stragglers,
//! thermal throttling — each with an optional recovery), plus the
//! retry/timeout policy the router applies to requests orphaned by a
//! crash and the graceful-degradation thresholds the fleet controller
//! enforces while capacity is below demand.
//!
//! Everything is data: the same plan against the same
//! [`ClusterConfig`](crate::cluster::ClusterConfig) produces bit-identical
//! [`ClusterResult`](crate::cluster::ClusterResult)s under the serial and
//! the parallel fleet clock, any `advance_order` and any pool worker
//! count (enforced by `tests/cluster_chaos.rs`). Plans either come from
//! [`FaultPlan::generate`] (a seeded splitmix64 chain — the bench's
//! chaos section records the seed so any run can be replayed from its
//! JSON) or are built by hand from [`FaultEvent`] constructors.

use crate::sweep::splitmix64;

/// What kind of fault strikes a replica.
///
/// The three slowdown kinds share one mechanism — the replica's engine
/// clock is scaled by [`FaultEvent::factor`] for
/// [`FaultEvent::duration_us`] — and differ only in the regime they
/// model (and the factor/duration ranges [`FaultPlan::generate`] draws
/// for them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The replica dies: every queued and in-flight LS request is drained
    /// back to the router for re-dispatch, running kernels vanish without
    /// completion or preemption events, and resident BE jobs migrate to
    /// survivors (cursor-preserving). A finite duration schedules the
    /// recovery; `INFINITY` is a permanent loss.
    Crash,
    /// A near-total transient stall (driver hang, ECC scrub): clocks at a
    /// few percent of nominal.
    Stall,
    /// A straggler phase (noisy neighbour, PCIe contention): clocks at a
    /// fraction of nominal.
    Straggle,
    /// Thermal throttling: moderately reduced clocks; on SGDRC replicas
    /// the policy is additionally re-targeted at the thermally scaled
    /// `GpuSpec` via `Sgdrc::reconfigure`.
    Throttle,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
            FaultKind::Straggle => "straggle",
            FaultKind::Throttle => "throttle",
        }
    }
}

/// One scheduled fault: which replica, when, what, for how long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes (µs into the run).
    pub at_us: f64,
    pub replica: usize,
    pub kind: FaultKind,
    /// Clock scale while the fault is active (ignored for crashes).
    pub factor: f64,
    /// How long the fault lasts; `INFINITY` = never recovers.
    pub duration_us: f64,
}

impl FaultEvent {
    /// A crash with a scheduled recovery after `duration_us`
    /// (`INFINITY` = permanent).
    pub fn crash(replica: usize, at_us: f64, duration_us: f64) -> Self {
        Self {
            at_us,
            replica,
            kind: FaultKind::Crash,
            factor: 0.0,
            duration_us,
        }
    }

    /// A transient slowdown of the given kind: clocks scale by `factor`
    /// (in `(0, 1]`) for `duration_us`.
    pub fn slowdown(
        kind: FaultKind,
        replica: usize,
        at_us: f64,
        factor: f64,
        duration_us: f64,
    ) -> Self {
        debug_assert!(kind != FaultKind::Crash, "use FaultEvent::crash");
        debug_assert!(factor > 0.0 && factor <= 1.0);
        Self {
            at_us,
            replica,
            kind,
            factor,
            duration_us,
        }
    }
}

/// How the router treats requests orphaned by a crash (and arrivals that
/// find no healthy replica).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryConfig {
    /// Base re-dispatch delay; attempt `k` waits `k × backoff_us` (linear
    /// backoff, so the schedule stays replayable arithmetic).
    pub backoff_us: f64,
    /// Re-dispatch attempts before the request is given up as dropped.
    /// 0 = drop-on-crash (the bench's ablation arm).
    pub max_retries: u32,
    /// A request older than this (measured from its *original* arrival)
    /// is dropped instead of re-dispatched — it has long since blown its
    /// SLO and only adds load.
    pub timeout_us: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            backoff_us: 2_000.0,
            max_retries: 4,
            timeout_us: 250_000.0,
        }
    }
}

/// Graceful-degradation thresholds the fleet controller applies while
/// capacity is below demand (evaluated every controller tick). BE work
/// is shed first; pending LS requests of the lowest-priority service go
/// only under sustained overload.
///
/// This is the tier-blind legacy path: with a
/// [`TiersConfig`](crate::tiers::TiersConfig) attached to the cluster
/// config it is replaced by the tier-ordered brownout ladder (park BE →
/// queue low tiers → shed low tiers, with hysteresis), which also runs
/// without a fault plan — overload needs no crash to matter.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationConfig {
    /// Shed BE: with at least one replica dead and either the mean
    /// per-alive backlog above this or any surviving replica's windowed
    /// p99 breaching its SLO, every resident BE job on the survivors is
    /// parked (eviction flag on running kernels, cursors preserved).
    /// Shed jobs resume once the fleet is whole, the backlog has halved
    /// below the threshold, and no survivor is breaching.
    pub shed_be_backlog: usize,
    /// Shed LS: with the mean per-alive backlog above this, the most
    /// backlogged survivor drops pending (never in-flight) requests of
    /// the lowest-priority LS service — highest task index first.
    pub shed_ls_backlog: usize,
    /// At most this many LS requests are shed per controller tick.
    pub ls_shed_per_tick: usize,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            shed_be_backlog: 48,
            shed_ls_backlog: 160,
            ls_shed_per_tick: 32,
        }
    }
}

/// A replayable fault scenario: events plus resilience policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The faults, sorted by `(at_us, replica)` ([`FaultPlan::new`]
    /// sorts; keep them sorted if edited in place).
    pub events: Vec<FaultEvent>,
    pub retry: RetryConfig,
    pub degradation: DegradationConfig,
    /// A replica whose last heartbeat is older than this is unhealthy in
    /// the router's [`ReplicaView`](crate::cluster::ReplicaView). Alive
    /// replicas heartbeat at every fleet-clock decision point, so only
    /// dead replicas age — but a freshly crashed one keeps looking
    /// healthy for up to this long, and requests routed at it in that
    /// window go through the retry path (which is the point: routers
    /// must not be told who died, they must observe staleness).
    pub heartbeat_timeout_us: f64,
}

impl FaultPlan {
    /// A plan from hand-built events and default resilience policy.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at_us.total_cmp(&b.at_us).then(a.replica.cmp(&b.replica)));
        Self {
            events,
            retry: RetryConfig::default(),
            degradation: DegradationConfig::default(),
            heartbeat_timeout_us: 10_000.0,
        }
    }

    /// An empty plan (no faults) — resilience machinery armed but idle;
    /// results are bit-identical to running without a plan.
    pub fn none() -> Self {
        Self::new(Vec::new())
    }

    /// Panics unless every event targets a lane below `n_lanes`
    /// (`n_init` configured + the rest warm). Out-of-range targets are
    /// config errors, not silent no-ops — warm-pool lanes are valid
    /// targets, so a plan can hit a replica mid-provisioning.
    pub fn validate_targets(&self, n_init: usize, n_lanes: usize) {
        for ev in &self.events {
            assert!(
                ev.replica < n_lanes,
                "fault plan targets replica {} but the fleet has only {} lanes \
                 ({} configured + {} warm); fault targets must name a valid lane",
                ev.replica,
                n_lanes,
                n_init,
                n_lanes - n_init
            );
        }
    }

    /// A seeded random plan: about `intensity` faults per replica drawn
    /// from a splitmix64 chain — crash/recovery pairs (a quarter of the
    /// crashes permanent), stalls, stragglers and throttles with
    /// kind-appropriate factor and duration ranges, strike times spread
    /// over the middle 85% of the horizon. Same `(seed, n_replicas,
    /// horizon_us, intensity)` → same plan, always.
    pub fn generate(seed: u64, n_replicas: usize, horizon_us: f64, intensity: f64) -> Self {
        fn next(z: &mut u64) -> u64 {
            *z = splitmix64(*z);
            *z
        }
        // 53-bit mantissa → uniform in [0, 1).
        fn unit(z: &mut u64) -> f64 {
            (next(z) >> 11) as f64 / (1u64 << 53) as f64
        }
        let mut z = splitmix64(seed ^ 0xC4A0_5FA1_7D1E_55ED);
        let n_events = ((intensity * n_replicas as f64).round() as usize).max(1);
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let replica = (next(&mut z) >> 32) as usize % n_replicas.max(1);
            let at_us = (0.05 + 0.85 * unit(&mut z)) * horizon_us;
            let kind = match next(&mut z) % 4 {
                0 => FaultKind::Crash,
                1 => FaultKind::Stall,
                2 => FaultKind::Straggle,
                _ => FaultKind::Throttle,
            };
            let ev = match kind {
                FaultKind::Crash => {
                    let permanent = next(&mut z).is_multiple_of(4);
                    let duration = if permanent {
                        f64::INFINITY
                    } else {
                        (0.08 + 0.17 * unit(&mut z)) * horizon_us
                    };
                    FaultEvent::crash(replica, at_us, duration)
                }
                FaultKind::Stall => FaultEvent::slowdown(
                    kind,
                    replica,
                    at_us,
                    0.02 + 0.08 * unit(&mut z),
                    (0.01 + 0.04 * unit(&mut z)) * horizon_us,
                ),
                FaultKind::Straggle => FaultEvent::slowdown(
                    kind,
                    replica,
                    at_us,
                    0.25 + 0.35 * unit(&mut z),
                    (0.05 + 0.20 * unit(&mut z)) * horizon_us,
                ),
                FaultKind::Throttle => FaultEvent::slowdown(
                    kind,
                    replica,
                    at_us,
                    0.50 + 0.40 * unit(&mut z),
                    (0.10 + 0.30 * unit(&mut z)) * horizon_us,
                ),
            };
            events.push(ev);
        }
        Self::new(events)
    }

    /// Expands the plan into the fleet clock's flat action timeline:
    /// every event contributes its onset, and every finite-duration
    /// event additionally contributes its recovery/restore action.
    /// Sorted by time (stable — equal-time actions keep onset-first,
    /// plan order); events naming replicas outside `0..n_replicas` are
    /// skipped.
    pub fn timeline(&self, n_replicas: usize) -> Vec<ScheduledFault> {
        let mut out = Vec::with_capacity(self.events.len() * 2);
        for ev in &self.events {
            if ev.replica >= n_replicas {
                continue;
            }
            let onset = match ev.kind {
                FaultKind::Crash => FaultOp::Crash,
                _ => FaultOp::SetScale(ev.factor),
            };
            out.push(ScheduledFault {
                at_us: ev.at_us,
                replica: ev.replica,
                op: onset,
                kind: ev.kind,
            });
            if ev.duration_us.is_finite() {
                let op = match ev.kind {
                    FaultKind::Crash => FaultOp::Recover,
                    _ => FaultOp::ClearScale,
                };
                out.push(ScheduledFault {
                    at_us: ev.at_us + ev.duration_us,
                    replica: ev.replica,
                    op,
                    kind: ev.kind,
                });
            }
        }
        out.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        out
    }
}

/// One action on the expanded fault timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOp {
    Crash,
    Recover,
    /// Scale the replica's engine clock (throttle/stall/straggle onset).
    SetScale(f64),
    /// Restore nominal clocks.
    ClearScale,
}

/// A timeline entry the fleet clock consumes as a decision point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    pub at_us: f64,
    pub replica: usize,
    pub op: FaultOp,
    /// The originating event's kind (for logging/attribution).
    pub kind: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let a = FaultPlan::generate(42, 4, 1e6, 1.5);
        let b = FaultPlan::generate(42, 4, 1e6, 1.5);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        assert!(a.events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(a.events.iter().all(|e| e.replica < 4));
        let c = FaultPlan::generate(43, 4, 1e6, 1.5);
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn timeline_pairs_onset_with_recovery() {
        let plan = FaultPlan::new(vec![
            FaultEvent::crash(1, 1_000.0, 5_000.0),
            FaultEvent::crash(0, 2_000.0, f64::INFINITY),
            FaultEvent::slowdown(FaultKind::Throttle, 2, 500.0, 0.5, 1_000.0),
        ]);
        let tl = plan.timeline(3);
        assert_eq!(tl.len(), 5, "permanent crash contributes no recovery");
        assert!(tl.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(tl[0].op, FaultOp::SetScale(0.5));
        assert_eq!(tl[1].op, FaultOp::Crash);
        assert_eq!(tl[2].op, FaultOp::ClearScale);
        assert_eq!(tl[3].op, FaultOp::Crash);
        assert_eq!(tl[4].op, FaultOp::Recover);
        assert_eq!(tl[4].replica, 1);
        // Out-of-range replicas are skipped, not a panic.
        assert_eq!(plan.timeline(1).len(), 1);
    }
}
