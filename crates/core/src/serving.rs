//! The serving substrate shared by SGDRC and every baseline policy.
//!
//! Mirrors the paper's online architecture (Fig. 6): LS requests arrive on
//! per-model queues (each LS model has several instances, §9.2), BE tasks
//! run closed-loop, and kernels from different tasks enter the LS / BE
//! kernel queues round-robin. At most one LS kernel and one BE kernel are
//! resident at any time (§4) — every evaluated system fits this structure;
//! only the *resource decisions* differ, which is what the [`Policy`]
//! trait captures.

use crate::profiler::ModelProfile;
use dnn::kernel::KernelDesc;
use dnn::zoo::Model;
use exec_sim::{
    ChannelSet, Engine, EngineEvent, LaunchConfig, LaunchId, PreparedKernel, RateMode, TpcMask,
};
use gpu_spec::GpuSpec;
use std::collections::VecDeque;

/// A deployed task: compiled model + offline profile.
#[derive(Debug, Clone)]
pub struct Task {
    pub model: Model,
    pub profile: ModelProfile,
    /// Launch-ready kernels (shared descriptor + precomputed performance
    /// invariants), parallel to `model.kernels`. Dispatching one costs an
    /// `Arc` bump — no descriptor copy, no invariant derivation.
    pub kernels: Vec<PreparedKernel>,
}

impl Task {
    pub fn new(model: Model, spec: &GpuSpec) -> Self {
        let profile = crate::profiler::profile_model(&model, spec);
        let kernels = model
            .kernels
            .iter()
            .map(|k| PreparedKernel::new(spec, k.clone()))
            .collect();
        Self {
            model,
            profile,
            kernels,
        }
    }
}

/// One end-to-end serving scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub spec: GpuSpec,
    pub ls: Vec<Task>,
    pub be: Vec<Task>,
    /// In-flight inference slots per LS model (§9.2: 4 instances).
    pub ls_instances: usize,
    /// Per-LS-task request arrival times (µs, sorted).
    pub arrivals: Vec<Vec<f64>>,
    /// Serving horizon (µs).
    pub horizon_us: f64,
}

/// A completed LS request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    pub arrival_us: f64,
    pub done_us: f64,
}

impl CompletedRequest {
    /// End-to-end latency including queueing delay (§9.2).
    pub fn latency_us(&self) -> f64 {
        self.done_us - self.arrival_us
    }
}

/// Result of one serving run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Completed requests per LS task.
    pub ls_completed: Vec<Vec<CompletedRequest>>,
    /// Whole inferences completed per BE task.
    pub be_completed: Vec<u64>,
    /// Time actually simulated (µs).
    pub horizon_us: f64,
    /// BE kernel preemptions observed.
    pub be_preemptions: u64,
    /// Engine events (kernel completions + preemptions) processed — the
    /// denominator for events/sec throughput measurements.
    pub engine_events: u64,
}

/// An in-flight inference.
#[derive(Debug, Clone, Copy)]
struct Inference {
    arrival_us: f64,
    cursor: usize,
}

/// A kernel currently on the GPU.
#[derive(Debug, Clone, Copy)]
pub struct ActiveLaunch {
    pub id: LaunchId,
    pub task: usize,
    pub kernel_idx: usize,
    pub mask: TpcMask,
    pub channels: ChannelSet,
}

/// Serving state visible to policies.
pub struct ServingState<'s> {
    pub scenario: &'s Scenario,
    pub engine: Engine,
    /// Arrived but not yet admitted requests, per LS task.
    pending: Vec<VecDeque<f64>>,
    /// Admitted inferences, per LS task (front is oldest).
    inflight: Vec<VecDeque<Inference>>,
    ls_rr: usize,
    be_rr: usize,
    /// Closed-loop BE inference cursor per BE task.
    be_cursor: Vec<usize>,
    pub ls_launch: Option<ActiveLaunch>,
    pub be_launch: Option<ActiveLaunch>,
    pub stats: RunStats,
}

impl<'s> ServingState<'s> {
    fn new(scenario: &'s Scenario) -> Self {
        Self {
            scenario,
            engine: Engine::new(scenario.spec.clone()),
            pending: vec![VecDeque::new(); scenario.ls.len()],
            inflight: vec![VecDeque::new(); scenario.ls.len()],
            ls_rr: 0,
            be_rr: 0,
            be_cursor: vec![0; scenario.be.len()],
            ls_launch: None,
            be_launch: None,
            stats: RunStats {
                ls_completed: vec![Vec::new(); scenario.ls.len()],
                be_completed: vec![0; scenario.be.len()],
                horizon_us: scenario.horizon_us,
                be_preemptions: 0,
                engine_events: 0,
            },
        }
    }

    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    pub fn spec(&self) -> &GpuSpec {
        &self.scenario.spec
    }

    /// Moves pending requests into free inference slots.
    fn admit(&mut self) {
        for t in 0..self.scenario.ls.len() {
            while self.inflight[t].len() < self.scenario.ls_instances {
                match self.pending[t].pop_front() {
                    Some(arrival) => self.inflight[t].push_back(Inference {
                        arrival_us: arrival,
                        cursor: 0,
                    }),
                    None => break,
                }
            }
        }
    }

    /// Number of LS requests admitted or waiting (queue pressure).
    pub fn ls_backlog(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum::<usize>()
            + self.inflight.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Is any LS kernel ready to launch?
    pub fn ls_ready(&self) -> bool {
        self.inflight.iter().any(|q| !q.is_empty())
    }

    /// Peeks the next LS kernel in round-robin order.
    pub fn peek_ls(&self) -> Option<(usize, usize)> {
        let n = self.scenario.ls.len();
        for off in 0..n {
            let t = (self.ls_rr + off) % n;
            if let Some(inf) = self.inflight[t].front() {
                return Some((t, inf.cursor));
            }
        }
        None
    }

    /// Upcoming LS kernels (for the tidal sliding window): the next kernel
    /// of every non-empty LS queue plus the successors of the head task.
    ///
    /// Fills a caller-owned buffer (cleared first) so policies invoking
    /// this on every dispatch reuse one allocation across the whole run.
    pub fn upcoming_ls_kernels_into(&self, window: usize, out: &mut Vec<(usize, usize)>) {
        out.clear();
        let n = self.scenario.ls.len();
        for off in 0..n {
            let t = (self.ls_rr + off) % n;
            if let Some(inf) = self.inflight[t].front() {
                let kernels = self.scenario.ls[t].model.kernels.len();
                for c in inf.cursor..kernels.min(inf.cursor + window) {
                    out.push((t, c));
                    if out.len() >= window {
                        return;
                    }
                }
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`upcoming_ls_kernels_into`](Self::upcoming_ls_kernels_into).
    pub fn upcoming_ls_kernels(&self, window: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(window);
        self.upcoming_ls_kernels_into(window, &mut out);
        out
    }

    /// Peeks the next BE kernel in round-robin order.
    pub fn peek_be(&self) -> Option<(usize, usize)> {
        if self.scenario.be.is_empty() {
            return None;
        }
        let t = self.be_rr % self.scenario.be.len();
        Some((t, self.be_cursor[t]))
    }

    pub fn ls_kernel(&self, task: usize, idx: usize) -> &KernelDesc {
        &self.scenario.ls[task].model.kernels[idx]
    }

    pub fn be_kernel(&self, task: usize, idx: usize) -> &KernelDesc {
        &self.scenario.be[task].model.kernels[idx]
    }

    /// Launches the peeked LS kernel with the given resources.
    pub fn launch_ls(&mut self, mask: TpcMask, channels: ChannelSet, thread_fraction: f64) {
        assert!(self.ls_launch.is_none(), "one LS kernel at a time");
        let (task, kernel_idx) = self.peek_ls().expect("no LS kernel ready");
        let kernel = &self.scenario.ls[task].kernels[kernel_idx];
        let id = self.engine.launch_prepared(
            kernel,
            &LaunchConfig {
                mask,
                channels,
                thread_fraction,
                preempt_poll_us: None,
            },
        );
        self.ls_launch = Some(ActiveLaunch {
            id,
            task,
            kernel_idx,
            mask,
            channels,
        });
    }

    /// Launches the peeked BE kernel with the given resources.
    pub fn launch_be(
        &mut self,
        mask: TpcMask,
        channels: ChannelSet,
        thread_fraction: f64,
        poll_us: f64,
    ) {
        assert!(self.be_launch.is_none(), "one BE kernel at a time");
        let (task, kernel_idx) = self.peek_be().expect("no BE task");
        let kernel = &self.scenario.be[task].kernels[kernel_idx];
        let id = self.engine.launch_prepared(
            kernel,
            &LaunchConfig {
                mask,
                channels,
                thread_fraction,
                preempt_poll_us: Some(poll_us),
            },
        );
        self.be_launch = Some(ActiveLaunch {
            id,
            task,
            kernel_idx,
            mask,
            channels,
        });
    }

    /// Raises the eviction flag on the running BE kernel (§7.1).
    pub fn preempt_be(&mut self) {
        if let Some(be) = self.be_launch {
            self.engine.raise_eviction_flag(be.id);
        }
    }

    /// Expands / moves the running BE kernel's resources in place —
    /// persistent-thread kernels pick up newly unmasked TPCs as their
    /// worker blocks cycle (Fig. 13b's elastic growth), and bimodal
    /// tensors switch mappings by pointer swap (§7.2).
    pub fn remask_be(&mut self, mask: TpcMask, channels: ChannelSet) {
        if let Some(be) = self.be_launch.as_mut() {
            if be.mask != mask || be.channels != channels {
                let id = be.id;
                be.mask = mask;
                be.channels = channels;
                self.engine.remask(id, mask, channels);
            }
        }
    }

    fn on_event(&mut self, ev: EngineEvent) {
        match ev {
            EngineEvent::Finished { id, at_us } => {
                if self.ls_launch.is_some_and(|l| l.id == id) {
                    let l = self.ls_launch.take().expect("checked");
                    let inf = self.inflight[l.task].front_mut().expect("inference exists");
                    inf.cursor += 1;
                    self.ls_rr = (l.task + 1) % self.scenario.ls.len().max(1);
                    if inf.cursor >= self.scenario.ls[l.task].model.kernels.len() {
                        let done = self.inflight[l.task].pop_front().expect("present");
                        self.stats.ls_completed[l.task].push(CompletedRequest {
                            arrival_us: done.arrival_us,
                            done_us: at_us,
                        });
                    }
                } else if self.be_launch.is_some_and(|l| l.id == id) {
                    let l = self.be_launch.take().expect("checked");
                    self.be_cursor[l.task] += 1;
                    if self.be_cursor[l.task] >= self.scenario.be[l.task].model.kernels.len() {
                        self.be_cursor[l.task] = 0;
                        self.stats.be_completed[l.task] += 1;
                        self.be_rr = (l.task + 1) % self.scenario.be.len().max(1);
                    }
                }
            }
            EngineEvent::Preempted { id, .. } => {
                if self.be_launch.is_some_and(|l| l.id == id) {
                    // Progress discarded; the same kernel will be
                    // relaunched (cursor unchanged).
                    self.be_launch = None;
                    self.stats.be_preemptions += 1;
                }
            }
        }
        self.admit();
    }
}

/// A GPU sharing policy: decides resources for LS / BE kernels.
pub trait Policy {
    fn name(&self) -> &'static str;

    /// Fill the GPU. Called whenever the state changes (arrival, kernel
    /// completion, preemption, timer).
    fn dispatch(&mut self, st: &mut ServingState);

    /// Reaction to a new LS request (e.g. SGDRC raises the eviction flag).
    fn on_ls_arrival(&mut self, st: &mut ServingState) {
        let _ = st;
    }

    /// Next policy-internal timer (absolute µs), e.g. TGS context-switch
    /// completion.
    fn next_timer(&self) -> Option<f64> {
        None
    }
}

/// Runs a scenario under a policy to the horizon; returns the statistics.
pub fn run(policy: &mut dyn Policy, scenario: &Scenario) -> RunStats {
    run_with_mode(policy, scenario, RateMode::Fast)
}

/// [`run`] with an explicit engine rate mode. `RateMode::Reference`
/// replays the seed engine's per-event behaviour (descriptor deep-clones,
/// allocating rate evaluation, no memoization) — the "before" arm of the
/// `BENCH_exec_sim` measurement.
pub fn run_with_mode(policy: &mut dyn Policy, scenario: &Scenario, mode: RateMode) -> RunStats {
    let mut st = ServingState::new(scenario);
    st.engine.set_rate_mode(mode);
    // Arrival iterators.
    let mut cursors = vec![0usize; scenario.arrivals.len()];
    let next_arrival = |cursors: &[usize]| -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (t, &c) in cursors.iter().enumerate() {
            if let Some(&at) = scenario.arrivals[t].get(c) {
                if best.is_none_or(|(_, b)| at < b) {
                    best = Some((t, at));
                }
            }
        }
        best
    };

    policy.dispatch(&mut st);
    loop {
        let arrival = next_arrival(&cursors);
        // Memoized inside the engine — the same value serves the min fold
        // below and the engine's own integration this iteration.
        let event = st.engine.next_event_at();
        // Stale (non-future) timers cannot make progress; drop them.
        let timer = policy.next_timer().filter(|&t| t > st.now() + 1e-9);
        // Earliest of the three candidate times, without materializing a
        // candidate list (this runs once per simulated event).
        let mut next = f64::INFINITY;
        if let Some((_, at)) = arrival {
            next = at;
        }
        if let Some(at) = event {
            next = next.min(at);
        }
        if let Some(at) = timer {
            next = next.min(at);
        }
        if next == f64::INFINITY {
            break; // idle with no arrivals left
        }
        if next > scenario.horizon_us {
            break;
        }
        // Arrival strictly first?
        if arrival.is_some_and(|(_, at)| at <= next + 1e-9)
            && event.is_none_or(|e| arrival.expect("checked").1 <= e)
        {
            let (t, at) = arrival.expect("checked");
            st.engine.advance_idle(at);
            cursors[t] += 1;
            st.pending[t].push_back(at);
            st.admit();
            policy.on_ls_arrival(&mut st);
        } else if event.is_some_and(|e| e <= next + 1e-9) {
            let ev = st.engine.step().expect("event was due");
            st.on_event(ev);
        } else {
            // Timer only.
            st.engine.advance_idle(next);
        }
        policy.dispatch(&mut st);
    }
    // Record the actually simulated time (the loop can end early when the
    // trace drains), not unconditionally the configured horizon.
    st.stats.horizon_us = st.now().min(scenario.horizon_us);
    st.stats.engine_events = st.engine.events_processed();
    st.stats
}
